//! Quickstart: simulate one workload on the paper's baseline system with
//! and without Hermes, and print the headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_sim::{system::run_one, SystemConfig};
use hermes_repro::hermes_trace::suite;

fn main() {
    // A pointer-chasing workload (`mcf`-like): the class of irregular,
    // off-chip-bound code Hermes targets.
    let spec = &suite::default_suite()[0];
    println!("workload: {} ({})", spec.name, spec.category);

    let warmup = 20_000;
    let instr = 100_000;

    // Table 4 baseline: Pythia prefetcher at the LLC, no Hermes.
    let baseline = run_one(SystemConfig::baseline_1c(), spec, warmup, instr);

    // Same system plus Hermes-O driven by POPET.
    let hermes = run_one(
        SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        spec,
        warmup,
        instr,
    );

    let b = &baseline.cores[0];
    let h = &hermes.cores[0];
    println!(
        "baseline (Pythia):        IPC {:.3}  LLC MPKI {:.1}",
        b.ipc(),
        b.llc_mpki()
    );
    println!(
        "Pythia + Hermes-O/POPET:  IPC {:.3}  speedup {:+.1}%",
        h.ipc(),
        (h.ipc() / b.ipc() - 1.0) * 100.0
    );
    println!(
        "POPET: accuracy {:.1}%  coverage {:.1}%  over {} loads",
        h.pred.accuracy() * 100.0,
        h.pred.coverage() * 100.0,
        h.pred.total()
    );
    println!(
        "main-memory requests: {} -> {} ({:+.1}%)",
        baseline.main_memory_requests(),
        hermes.main_memory_requests(),
        (hermes.main_memory_requests() as f64 / baseline.main_memory_requests() as f64 - 1.0)
            * 100.0
    );
}
