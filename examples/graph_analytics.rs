//! Graph-analytics scenario: the workload class the paper's Ligra suite
//! represents. CSR neighbour gathers are irregular and prefetch-hostile —
//! exactly where off-chip prediction pays — while the offsets/edge arrays
//! stream nicely for the prefetcher. This example runs BFS and PageRank
//! stand-ins across three systems and shows where each mechanism earns
//! its cycles.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_prefetch::PrefetcherKind;
use hermes_repro::hermes_sim::{system::run_one, SystemConfig};
use hermes_repro::hermes_trace::gen::graph::GraphKernel;
use hermes_repro::hermes_trace::suite::{Category, GenConfig, WorkloadSpec};

fn main() {
    let workloads = [
        WorkloadSpec::new(
            "bfs-1M",
            Category::Ligra,
            GenConfig::Diluted {
                inner: Box::new(GenConfig::Graph {
                    kernel: GraphKernel::Bfs,
                    vertices: 600_000,
                    avg_degree: 8,
                }),
                work: 8,
            },
            7,
        ),
        WorkloadSpec::new(
            "pagerank-1M",
            Category::Ligra,
            GenConfig::Diluted {
                inner: Box::new(GenConfig::Graph {
                    kernel: GraphKernel::PageRank,
                    vertices: 1_000_000,
                    avg_degree: 8,
                }),
                work: 8,
            },
            8,
        ),
        WorkloadSpec::new(
            "triangle-200k",
            Category::Ligra,
            GenConfig::Diluted {
                inner: Box::new(GenConfig::Graph {
                    kernel: GraphKernel::Triangle,
                    vertices: 200_000,
                    avg_degree: 12,
                }),
                work: 4,
            },
            44,
        ),
    ];

    println!(
        "{:12} {:>10} {:>10} {:>16} {:>12}",
        "kernel", "no-pf IPC", "Pythia", "Pythia+Hermes", "POPET acc"
    );
    for spec in &workloads {
        let nopf = run_one(
            SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
            spec,
            20_000,
            80_000,
        );
        let pythia = run_one(SystemConfig::baseline_1c(), spec, 20_000, 80_000);
        let combo = run_one(
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
            spec,
            20_000,
            80_000,
        );
        println!(
            "{:12} {:>10.3} {:>10.3} {:>16.3} {:>11.1}%",
            spec.name,
            nopf.cores[0].ipc(),
            pythia.cores[0].ipc(),
            combo.cores[0].ipc(),
            combo.cores[0].pred.accuracy() * 100.0,
        );
    }
    println!();
    println!("Reading the table: Hermes wins where the off-chip gathers are");
    println!("*predictable* (triangle's long intersection scans); on kernels whose");
    println!("per-vertex data sits right at the LLC boundary (borderline hit/miss),");
    println!("POPET's accuracy drops and the speculative traffic eats the gain —");
    println!("the same per-trace spread the paper's Fig. 13 shows, where Pythia");
    println!("wins 59 of 110 traces and Hermes the other 51.");
}
