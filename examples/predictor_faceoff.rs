//! Off-chip predictor face-off: POPET vs HMP vs TTP vs the Ideal oracle,
//! measured passively (no Hermes requests issued) on one streaming and one
//! irregular workload — the paper's Fig. 9 in miniature, plus the per-load
//! cost/benefit framing of Table 6.
//!
//! ```sh
//! cargo run --release --example predictor_faceoff
//! ```

use hermes_repro::hermes::{storage, HermesConfig, PredictorKind};
use hermes_repro::hermes_sim::{system::run_one, SystemConfig};
use hermes_repro::hermes_trace::suite;

fn main() {
    let suite = suite::default_suite();
    let picks = ["lbm-like", "canneal-like"];
    for name in picks {
        let spec = suite
            .iter()
            .find(|w| w.name == name)
            .expect("suite contains pick");
        println!("=== {} ===", spec.name);
        println!("{:8} {:>10} {:>10}", "pred", "accuracy", "coverage");
        for pred in [
            PredictorKind::Hmp,
            PredictorKind::Ttp,
            PredictorKind::Popet,
            PredictorKind::Ideal,
        ] {
            let cfg = SystemConfig::baseline_1c().with_hermes(HermesConfig::passive(pred));
            let r = run_one(cfg, spec, 20_000, 80_000);
            let p = r.cores[0].pred;
            println!(
                "{:8} {:>9.1}% {:>9.1}%",
                pred.label(),
                p.accuracy() * 100.0,
                p.coverage() * 100.0
            );
        }
        println!();
    }
    println!("Storage budgets (computed, Table 6):");
    for row in storage::table6_predictors() {
        println!("  {:34} {:>9.1} KB", row.structure, row.kb());
    }
}
