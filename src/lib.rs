//! Umbrella crate for the Hermes (MICRO 2022) reproduction workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); it re-exports the
//! member crates so examples and tests can use one import root.
//!
//! See the individual crates for the actual implementation:
//!
//! * [`hermes`] — POPET, HMP, TTP, and the Hermes controller (the paper's
//!   contribution).
//! * [`hermes_sim`] — the full-system simulator.
//! * [`hermes_trace`] — synthetic workload generators.
//! * [`hermes_cpu`], [`hermes_ooo`], [`hermes_cache`], [`hermes_dram`],
//!   [`hermes_vm`] — the substrate (legacy dependency-scheduled and
//!   cycle-driven out-of-order core models, caches, memory, TLBs).
//! * [`hermes_prefetch`] — the five baseline data prefetchers.
//! * [`hermes_exec`] — the parallel experiment-execution engine.
//! * [`hermes_probe`] — the default-off observability layer (lifecycle
//!   traces, interval timeline, latency histograms).

pub use hermes;
pub use hermes_cache;
pub use hermes_cpu;
pub use hermes_dram;
pub use hermes_exec;
pub use hermes_ooo;
pub use hermes_prefetch;
pub use hermes_probe;
pub use hermes_sim;
pub use hermes_trace;
pub use hermes_types;
pub use hermes_vm;
