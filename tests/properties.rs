//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary inputs, seeds, and configurations.

use proptest::prelude::*;

use hermes_repro::hermes::{LoadContext, OffChipPredictor, Popet, PredictionMeta};
use hermes_repro::hermes_cache::{CacheArray, CacheConfig, MshrTable, ReplacementKind};
use hermes_repro::hermes_dram::{DramConfig, MemoryController, ReqKind};
use hermes_repro::hermes_trace::suite;
use hermes_repro::hermes_types::{LineAddr, VirtAddr};
use hermes_repro::hermes_vm::{PageMap, HUGE_PAGE_BITS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never holds more lines than its capacity, and a line just
    /// filled is present until something evicts it.
    #[test]
    fn cache_occupancy_bounded(addrs in prop::collection::vec(0u64..10_000, 1..400)) {
        let cfg = CacheConfig::new("t", 64 * 64, 4, ReplacementKind::Lru, 8);
        let mut c = CacheArray::new(&cfg);
        for a in addrs {
            let line = LineAddr::new(a);
            if !c.access(line, 0).hit {
                c.fill(line, false, false, 0);
            }
            prop_assert!(c.occupancy() <= cfg.lines());
            prop_assert!(c.probe(line), "line lost immediately after fill");
        }
    }

    /// SHiP behaves like a legal replacement policy: fills never exceed
    /// capacity and evictions only report lines that were resident.
    #[test]
    fn ship_evictions_are_resident_lines(addrs in prop::collection::vec(0u64..2_000, 1..300)) {
        let cfg = CacheConfig::new("t", 32 * 64, 4, ReplacementKind::Ship, 8);
        let mut c = CacheArray::new(&cfg);
        let mut resident = std::collections::HashSet::new();
        for a in addrs {
            let line = LineAddr::new(a);
            if !c.access(line, (a % 64) as u16).hit && !resident.contains(&line) {
                if let Some(ev) = c.fill(line, false, false, (a % 64) as u16) {
                    prop_assert!(resident.remove(&ev.line), "evicted non-resident {:?}", ev.line);
                }
                resident.insert(line);
            }
        }
    }

    /// MSHR: merges never exceed capacity, and completion returns every
    /// registered waiter exactly once.
    #[test]
    fn mshr_waiters_conserved(ops in prop::collection::vec((0u64..16, 0u32..100), 1..200)) {
        let mut t: MshrTable<u32> = MshrTable::new(4);
        let mut expected: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for (line, w) in ops {
            let l = LineAddr::new(line);
            match t.allocate(l, w, false) {
                Ok(_) => expected.entry(line).or_default().push(w),
                Err(_) => { /* full: caller retries later */ }
            }
            prop_assert!(t.in_use() <= 4);
        }
        for (line, ws) in expected {
            let (got, _) = t.complete(LineAddr::new(line)).expect("entry present");
            prop_assert_eq!(got, ws);
        }
        prop_assert_eq!(t.in_use(), 0);
    }

    /// DRAM: completion time is bounded below by the minimum access
    /// latency, and later arrivals never complete before the data they
    /// merged with.
    #[test]
    fn dram_latency_lower_bound(lines in prop::collection::vec(0u64..4096, 1..100)) {
        let mut mc = MemoryController::new(DramConfig::single_core());
        let min = mc.min_read_latency();
        let mut now = 0;
        let mut done = Vec::new();
        for l in lines {
            now += 3;
            // Honour the controller contract: completions are drained
            // continuously (as the hierarchy does every cycle).
            mc.pop_completions(now, &mut done);
            let r = mc.enqueue_read(LineAddr::new(l), now, ReqKind::Demand);
            if !r.merged {
                prop_assert!(r.completes_at >= now + min,
                    "read finished faster than a row hit: {} < {}", r.completes_at - now, min);
            } else {
                prop_assert!(r.completes_at >= now, "merged into an already-completed read");
            }
        }
    }

    /// POPET: the cumulative weight is always within the theoretical
    /// range of the active features, and prediction is a pure function of
    /// it (Wσ ≥ τ_act).
    #[test]
    fn popet_weight_bounds(
        pcs in prop::collection::vec(0u64..1024, 1..300),
        outcomes in prop::collection::vec(any::<bool>(), 300),
    ) {
        let mut p = Popet::default();
        let n_features = 5i32;
        for (i, pc) in pcs.iter().enumerate() {
            let ctx = LoadContext::identity(0x400000 + pc * 4, VirtAddr::new(pc * 4096 + i as u64 * 8));
            let pred = p.predict(&ctx);
            let PredictionMeta::Popet { wsum, .. } = pred.meta else {
                prop_assert!(false, "wrong meta");
                unreachable!();
            };
            prop_assert!((wsum as i32) >= -16 * n_features && (wsum as i32) <= 15 * n_features);
            prop_assert_eq!(pred.go_offchip, (wsum as i32) >= p.config().tau_act);
            p.train(&ctx, &pred, outcomes[i % outcomes.len()]);
        }
    }

    /// Translation invariants, vm on and off, 4 KB and 2 MB pages:
    /// page offsets survive translation, the mapping is a pure function,
    /// cores see disjoint frames, and with 4 KB pages the vm subsystem's
    /// map is bit-identical to the historical free translation (so
    /// enabling vm changes timing, never data placement).
    #[test]
    fn translation_invariants(
        raw in any::<u64>(),
        core in 0usize..8,
        pm_sel in 0usize..3,
    ) {
        use hermes_repro::hermes_sim::translate::translate;
        let huge_pm = [0u32, 500, 1000][pm_sel];
        let v = VirtAddr::new(raw);
        let map = PageMap::new(huge_pm);
        let (p, huge) = map.translate(core, v);

        // Page-offset preservation: always at 4 KB granularity, and at
        // 2 MB granularity for huge pages.
        prop_assert_eq!(p.offset_in_page(), v.offset_in_page());
        if huge {
            let hmask = (1u64 << HUGE_PAGE_BITS) - 1;
            prop_assert_eq!(p.raw() & hmask, v.raw() & hmask);
        }

        // Determinism, and same page -> same frame.
        let (p2, huge2) = map.translate(core, v);
        prop_assert_eq!((p2, huge2), (p, huge));
        let sibling = VirtAddr::new(raw ^ (raw & 0xFFF) ^ 0x5A5);
        prop_assert_eq!(
            map.translate(core, sibling).0.page_number(),
            p.page_number()
        );

        // Per-core disjointness (distinct frames for all 8 cores) —
        // except in the shared region, where every core must see the
        // *same* frame (that aliasing is what the coherence layer
        // exists to police).
        let frames: std::collections::HashSet<u64> =
            (0..8).map(|c| map.translate(c, v).0.page_number()).collect();
        prop_assert_eq!(frames.len(), if v.is_shared() { 1 } else { 8 });

        // vm-off equivalence: the 4 KB formula is the historical one.
        if !huge {
            prop_assert_eq!(p, translate(core, v));
        }
    }

    /// Trace generators are deterministic and produce valid instructions
    /// (a register index never exceeds the register file).
    #[test]
    fn generators_deterministic_and_valid(which in 0usize..5, n in 100usize..500) {
        let specs = suite::smoke_suite();
        let spec = &specs[which];
        let mut a = spec.build();
        let mut b = spec.build();
        for _ in 0..n {
            let ia = a.next_instr();
            let ib = b.next_instr();
            prop_assert_eq!(ia, ib);
            for r in ia.src_regs.iter().flatten() {
                prop_assert!((*r as usize) < hermes_repro::hermes_trace::instr::NUM_REGS);
            }
            if let Some(d) = ia.dst_reg {
                prop_assert!((d as usize) < hermes_repro::hermes_trace::instr::NUM_REGS);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full-system runs complete and produce coherent counters for any
    /// smoke workload and any small window, translation subsystem on or
    /// off (and with either page size when on).
    #[test]
    fn system_runs_are_coherent(
        which in 0usize..5,
        instr in 5_000u64..15_000,
        vm in 0u32..3,
    ) {
        use hermes_repro::hermes::{HermesConfig, PredictorKind};
        use hermes_repro::hermes_sim::{system::run_one, SystemConfig};
        use hermes_repro::hermes_vm::VmConfig;
        let spec = &suite::smoke_suite()[which];
        let mut cfg = SystemConfig::baseline_1c()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        match vm {
            1 => cfg = cfg.with_vm(VmConfig::baseline()),
            2 => cfg = cfg.with_vm(VmConfig::baseline().with_huge_page_pm(500)),
            _ => {}
        }
        let r = run_one(cfg, spec, 1_000, instr);
        let c = &r.cores[0];
        prop_assert_eq!(c.instructions, instr);
        prop_assert!(c.cycles > 0);
        prop_assert!(c.ipc() > 0.0 && c.ipc() <= 6.0);
        prop_assert!(c.core.offchip_blocking + c.core.offchip_nonblocking == c.core.served_dram);
        prop_assert!(c.offchip_rate() >= 0.0 && c.offchip_rate() <= 1.0);
        prop_assert!(c.pred.accuracy() >= 0.0 && c.pred.accuracy() <= 1.0);
        prop_assert!(c.pred.coverage() >= 0.0 && c.pred.coverage() <= 1.0);
        // Translation counters are internally coherent.
        let h = &c.hier;
        prop_assert!(h.dtlb_misses <= h.dtlb_accesses);
        prop_assert!(h.stlb_misses <= h.dtlb_misses);
        // Same-page requests merge, so walks never exceed STLB misses —
        // modulo walks in flight across the warmup stat reset (those
        // complete inside the window without a counted miss).
        prop_assert!(h.walks_completed <= h.stlb_misses + 256);
        if vm == 0 {
            prop_assert_eq!(h.dtlb_accesses, 0);
        } else {
            prop_assert!(h.dtlb_accesses > 0);
        }
    }
}
