//! System-level tests for the out-of-order core model (`hermes-ooo`).
//!
//! Three invariants: selecting `CoreModel::Legacy` explicitly is
//! indistinguishable from the default (the pinned goldens in
//! `hier_equivalence.rs` freeze the default itself), idle-cycle
//! fast-forward is invisible in the statistics under `CoreModel::OoO`
//! on both single-core and coherent multi-core systems, and the OoO
//! model behaves like a real window end-to-end — Hermes still pays off,
//! and deeper ROBs buy measurable memory-level parallelism.

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_cache::CoherenceConfig;
use hermes_repro::hermes_cpu::{CoreModel, OooConfig};
use hermes_repro::hermes_sim::{system::run_one, RunStats, System, SystemConfig};
use hermes_repro::hermes_trace::suite;

/// Canonical rendering of every deterministic counter, including the
/// OoO-only ones (zero under the legacy model).
fn digest(r: &RunStats) -> String {
    let mut s = format!("total_cycles={}", r.total_cycles);
    for c in &r.cores {
        s.push_str(&format!(
            ";[{} cyc={} ret={} ld={} st={} br={} bm={} l1={} l2={} llc={} dram={} ob={} onb={} sco={} scl={} sso={} erc={} hreq={} tp={} fp={} fn={} tn={} robsum={} rsfull={} lsqfull={} fwd={} flush={}]",
            c.workload,
            c.cycles,
            c.instructions,
            c.core.loads,
            c.core.stores,
            c.core.branches,
            c.core.branch_mispredicts,
            c.core.served_l1,
            c.core.served_l2,
            c.core.served_llc,
            c.core.served_dram,
            c.core.offchip_blocking,
            c.core.offchip_nonblocking,
            c.core.stall_cycles_offchip,
            c.core.stall_cycles_onchip_load,
            c.core.stall_cycles_other,
            c.core.empty_rob_cycles,
            c.hier.hermes_requests,
            c.pred.tp,
            c.pred.fp,
            c.pred.fn_,
            c.pred.tn,
            c.core.rob_occupancy_sum,
            c.core.rs_full_stalls,
            c.core.lsq_full_stalls,
            c.core.forwarded_loads,
            c.core.flushes,
        ));
    }
    s.push_str(&format!(
        ";dram[rd={} rp={} rh={} w={} hit={} empty={} conf={}]",
        r.dram.reads_demand,
        r.dram.reads_prefetch,
        r.dram.reads_hermes,
        r.dram.writes,
        r.dram.row_hits,
        r.dram.row_empty,
        r.dram.row_conflicts,
    ));
    s
}

fn ooo(cfg: SystemConfig) -> SystemConfig {
    cfg.with_core_model(CoreModel::OoO(OooConfig::baseline()))
}

#[test]
fn explicit_legacy_model_matches_default() {
    let smoke = suite::smoke_suite();
    for spec in [&smoke[0], &smoke[1], &smoke[3]] {
        let implicit = run_one(SystemConfig::baseline_1c(), spec, 3_000, 8_000);
        let explicit = run_one(
            SystemConfig::baseline_1c().with_core_model(CoreModel::Legacy),
            spec,
            3_000,
            8_000,
        );
        assert_eq!(
            digest(&implicit),
            digest(&explicit),
            "explicit CoreModel::Legacy diverged from the default on {}",
            spec.name
        );
    }
}

#[test]
fn fast_forward_is_cycle_exact_under_ooo() {
    let smoke = suite::smoke_suite();
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("ooo-base", ooo(SystemConfig::baseline_1c())),
        (
            "ooo+hermes",
            ooo(SystemConfig::baseline_1c())
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ];
    for (name, cfg) in configs {
        for spec in [&smoke[0], &smoke[1], &smoke[3]] {
            let off = run_one(cfg.clone().with_fast_forward(false), spec, 3_000, 8_000);
            let on = run_one(cfg.clone().with_fast_forward(true), spec, 3_000, 8_000);
            assert_eq!(
                digest(&off),
                digest(&on),
                "fast-forward changed OoO results for {name}/{}",
                spec.name
            );
        }
    }
}

#[test]
fn fast_forward_is_cycle_exact_under_ooo_multicore_coherent() {
    let specs = suite::sharing_suite(500);
    for cores in [1usize, 4] {
        let cfg = |ff| {
            ooo(SystemConfig {
                cores,
                ..SystemConfig::baseline_1c()
            })
            .with_coherence(CoherenceConfig::baseline())
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
            .with_fast_forward(ff)
        };
        let off = System::new(cfg(false), &specs).run(2_000, 6_000);
        let on = System::new(cfg(true), &specs).run(2_000, 6_000);
        assert_eq!(
            digest(&off),
            digest(&on),
            "fast-forward changed coherent OoO results on {cores} cores"
        );
    }
}

#[test]
fn ooo_counters_populated_only_under_ooo() {
    let smoke = suite::smoke_suite();
    let legacy = run_one(SystemConfig::baseline_1c(), &smoke[1], 2_000, 6_000);
    let o = run_one(ooo(SystemConfig::baseline_1c()), &smoke[1], 2_000, 6_000);
    let lc = &legacy.cores[0].core;
    let oc = &o.cores[0].core;
    assert_eq!(
        lc.rob_occupancy_sum + lc.rs_full_stalls + lc.lsq_full_stalls + lc.forwarded_loads,
        0,
        "legacy model must never touch the OoO counters"
    );
    assert!(oc.rob_occupancy_sum > 0, "OoO run sampled no ROB occupancy");
    assert_eq!(o.cores[0].instructions, 6_000);
}

#[test]
fn ideal_hermes_speeds_up_chase_under_ooo() {
    // The headline claim survives the real window: firing the DRAM read
    // at dispatch still shortens the pointer chase when loads occupy
    // actual ROB/LSQ slots while in flight.
    let smoke = suite::smoke_suite();
    let base = run_one(ooo(SystemConfig::baseline_1c()), &smoke[0], 3_000, 8_000);
    let ideal = run_one(
        ooo(SystemConfig::baseline_1c()).with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
        &smoke[0],
        3_000,
        8_000,
    );
    assert!(
        ideal.total_cycles < base.total_cycles,
        "Ideal Hermes did not speed up smoke-chase under OoO: {} !< {}",
        ideal.total_cycles,
        base.total_cycles
    );
}

#[test]
fn deeper_rob_buys_mlp_under_ooo() {
    // pagerank has abundant independent loads; a 32-entry window cannot
    // keep enough of them in flight, a 512-entry window can. The legacy
    // model could not express this distinction at all.
    let smoke = suite::smoke_suite();
    let run_rob = |rob| {
        run_one(
            ooo(SystemConfig::baseline_1c().with_rob(rob)),
            &smoke[3],
            3_000,
            8_000,
        )
        .total_cycles
    };
    let (small, big) = (run_rob(32), run_rob(512));
    assert!(
        big < small,
        "512-entry ROB not faster than 32-entry on pagerank: {big} !< {small}"
    );
}
