//! Equivalence and export-validity tests for the hermes-probe
//! observability layer.
//!
//! The probe's contract is that it is *invisible*: attaching it to any
//! configuration must reproduce every deterministic counter bit-for-bit,
//! on single-core and multi-core coherent runs alike. The digests here
//! cover the core pipeline, predictor confusion, DRAM, vm, coherence,
//! and speculative-read counters — everything the simulator reports.

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_probe::{validate_json, LatClass, ProbeConfig};
use hermes_repro::hermes_sim::{system::run_one, RunStats, System, SystemConfig};
use hermes_repro::hermes_trace::suite;
use hermes_repro::hermes_vm::VmConfig;

/// Canonical rendering of every deterministic counter in a [`RunStats`],
/// including the vm, coherence, and spec-read counters the older golden
/// digests predate.
fn digest(r: &RunStats) -> String {
    let mut s = format!("total_cycles={}", r.total_cycles);
    for c in &r.cores {
        s.push_str(&format!(
            ";[{} cyc={} ret={} ld={} st={} l1={} l2={} llc={} dram={} sco={} scl={} hacc={} hmiss={} hreq={} pfi={} pfu={} ols={} ol={} tp={} fp={} fn={} tn={} da={} dm={} w={} wc={} cu={} ci={} cdf={} cbi={} sru={} srw={}]",
            c.workload,
            c.cycles,
            c.instructions,
            c.core.loads,
            c.core.stores,
            c.core.served_l1,
            c.core.served_l2,
            c.core.served_llc,
            c.core.served_dram,
            c.core.stall_cycles_offchip,
            c.core.stall_cycles_onchip_load,
            c.hier.llc_demand_accesses,
            c.hier.llc_demand_misses,
            c.hier.hermes_requests,
            c.hier.prefetches_issued,
            c.hier.prefetches_useful,
            c.hier.offchip_latency_sum,
            c.hier.offchip_loads,
            c.pred.tp,
            c.pred.fp,
            c.pred.fn_,
            c.pred.tn,
            c.hier.dtlb_accesses,
            c.hier.dtlb_misses,
            c.hier.walks_completed,
            c.hier.walk_cycles_sum,
            c.hier.coh_upgrades,
            c.hier.coh_invalidations,
            c.hier.coh_dirty_forwards,
            c.hier.coh_back_invalidations,
            c.hier.spec_reads_useful,
            c.hier.spec_reads_wasted,
        ));
    }
    s.push_str(&format!(
        ";dram[rd={} rp={} rh={} w={} hit={} conf={} merged={} dropped={}]",
        r.dram.reads_demand,
        r.dram.reads_prefetch,
        r.dram.reads_hermes,
        r.dram.writes,
        r.dram.row_hits,
        r.dram.row_conflicts,
        r.dram.demand_merged_into_hermes,
        r.dram.hermes_dropped,
    ));
    s
}

/// An intrusive probe configuration: dense sampling and a short interval
/// so every hook path fires many times within a smoke window.
fn dense_probe() -> ProbeConfig {
    ProbeConfig::baseline()
        .with_sample_period(4)
        .with_interval(1_500)
}

#[test]
fn probe_is_invisible_1core() {
    let smoke = suite::smoke_suite();
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("baseline", SystemConfig::baseline_1c()),
        (
            "hermes-o-popet",
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
        (
            "hermes+vm",
            SystemConfig::baseline_1c()
                .with_vm(VmConfig::baseline())
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ];
    for (name, cfg) in configs {
        for spec in [&smoke[0], &smoke[1]] {
            let off = run_one(cfg.clone(), spec, 3_000, 8_000);
            let on = run_one(cfg.clone().with_probe(dense_probe()), spec, 3_000, 8_000);
            assert_eq!(
                digest(&off),
                digest(&on),
                "probe perturbed {name}/{}",
                spec.name
            );
            assert!(off.probe.is_none(), "probe-off run must not carry a report");
            let report = on.probe.expect("probe-on run must carry a report");
            assert!(
                !report.intervals.is_empty(),
                "{name}/{}: empty interval timeline",
                spec.name
            );
        }
    }
}

#[test]
fn probe_is_invisible_4core_coherent() {
    use hermes_repro::hermes_cache::CoherenceConfig;
    let specs = suite::sharing_suite(500);
    let cfg = |probe: Option<ProbeConfig>| {
        let mut c = SystemConfig {
            cores: 4,
            ..SystemConfig::baseline_1c()
        }
        .with_coherence(CoherenceConfig::baseline())
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        if let Some(p) = probe {
            c = c.with_probe(p);
        }
        c
    };
    for spec in &specs {
        let off = System::new(cfg(None), std::slice::from_ref(spec)).run(2_000, 6_000);
        let on =
            System::new(cfg(Some(dense_probe())), std::slice::from_ref(spec)).run(2_000, 6_000);
        assert_eq!(
            digest(&off),
            digest(&on),
            "probe perturbed 4-core coherent run of {}",
            spec.name
        );
        // The run actually exercised coherence, so the equivalence above
        // covered the intervention hook too.
        let traffic: u64 = off
            .cores
            .iter()
            .map(|c| c.hier.coh_invalidations + c.hier.coh_dirty_forwards)
            .sum();
        assert!(traffic > 0, "{} generated no coherence traffic", spec.name);
        assert!(!on.probe.expect("report").traces.is_empty());
    }
}

#[test]
fn probe_exports_are_valid_and_complete() {
    let smoke = suite::smoke_suite();
    let cfg = SystemConfig::baseline_1c()
        .with_vm(VmConfig::baseline())
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
        .with_probe(dense_probe());
    let r = run_one(cfg, &smoke[0], 3_000, 8_000);
    let report = r.probe.expect("probe report");

    // Chrome trace: one JSON document, non-trivial, machine-valid.
    let trace = report.to_chrome_trace();
    validate_json(&trace).unwrap_or_else(|(off, msg)| {
        panic!("chrome trace invalid at byte {off}: {msg}");
    });
    assert!(!report.traces.is_empty(), "chase must sample some loads");
    assert!(trace.contains("\"predict\""), "missing prediction events");
    assert!(
        trace.starts_with("{\"traceEvents\": ["),
        "missing format marker"
    );

    // Interval timeline: >= 2 snapshots, each line is valid JSON.
    let jsonl = report.to_interval_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 2, "timeline has {} snapshots", lines.len());
    for (i, l) in lines.iter().enumerate() {
        validate_json(l).unwrap_or_else(|(off, msg)| {
            panic!("interval line {i} invalid at byte {off}: {msg}");
        });
    }

    // Latency histograms: the chase is off-chip bound, so the off-chip
    // class dominates, and every served load landed in exactly one class.
    let total: u64 = [LatClass::L1, LatClass::L2, LatClass::Llc, LatClass::Offchip]
        .iter()
        .map(|&c| report.lat_hist(c).count())
        .sum();
    let served: u64 = r.cores[0].core.served_l1
        + r.cores[0].core.served_l2
        + r.cores[0].core.served_llc
        + r.cores[0].core.served_dram;
    assert_eq!(total, served, "histograms must cover every served load");
    assert!(report.lat_hist(LatClass::Offchip).count() > 0);
    assert!(
        report.lat_hist(LatClass::Offchip).quantile_log2(0.5)
            > report.lat_hist(LatClass::L1).quantile_log2(0.5).max(1.0),
        "off-chip median latency must exceed L1's"
    );
    // The vm subsystem was on, so walks were timed.
    assert!(report.lat_walk.count() > 0, "no walk latency samples");
}

#[test]
fn probe_sampling_caps_trace_count() {
    let smoke = suite::smoke_suite();
    let capped = ProbeConfig::baseline()
        .with_sample_period(1)
        .with_max_trace_loads(10);
    let cfg = SystemConfig::baseline_1c()
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
        .with_probe(capped);
    let r = run_one(cfg, &smoke[0], 2_000, 6_000);
    let report = r.probe.expect("probe report");
    assert_eq!(
        report.traces.len(),
        10,
        "trace cap must bound memory, sampling period 1 must fill it"
    );
    // Histograms are not sampled: they still cover every served load.
    let total: u64 = [LatClass::L1, LatClass::L2, LatClass::Llc, LatClass::Offchip]
        .iter()
        .map(|&c| report.lat_hist(c).count())
        .sum();
    assert!(total > 10, "histograms must not be capped with the traces");
}
