//! Coherence regression and invariant tests.
//!
//! Covers the directory-MESI layer end to end — protocol state
//! transitions, the stable-state invariants (single writer, inclusive
//! directory), equivalence guarantees (`coherence: None` untouched,
//! single-core `Some` ≡ `None`, fast-forward invisibility) — plus the
//! writeback-path training fix: a dirty victim written back *into* the
//! LLC is not a fill returning to any core and must not train TTP.

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_cache::{
    CacheConfig, CoherenceConfig, LevelConfig, Mesi, ReplacementKind,
};
use hermes_repro::hermes_cpu::{LoadIssue, MemoryPort, StoreIssue};
use hermes_repro::hermes_prefetch::PrefetcherKind;
use hermes_repro::hermes_sim::hierarchy::Hierarchy;
use hermes_repro::hermes_sim::translate::translate;
use hermes_repro::hermes_sim::{system::run_one, RunStats, System, SystemConfig};
use hermes_repro::hermes_trace::suite;
use hermes_repro::hermes_types::{Cycle, LineAddr, VirtAddr, SHARED_BASE};

/// Canonical rendering of every deterministic counter in a [`RunStats`],
/// coherence counters included.
fn digest(r: &RunStats) -> String {
    let mut s = format!("total_cycles={}", r.total_cycles);
    for c in &r.cores {
        s.push_str(&format!(
            ";[{} cyc={} ret={} ld={} st={} l1={} l2={} llc={} dram={} sco={} hacc={} hmiss={} hreq={} pfi={} pfu={} l1a={} l2a={} ols={} ol={} tp={} fp={} fn={} tn={} cup={} cinv={} cfwd={} cback={} su={} sw={}]",
            c.workload,
            c.cycles,
            c.instructions,
            c.core.loads,
            c.core.stores,
            c.core.served_l1,
            c.core.served_l2,
            c.core.served_llc,
            c.core.served_dram,
            c.core.stall_cycles_offchip,
            c.hier.llc_demand_accesses,
            c.hier.llc_demand_misses,
            c.hier.hermes_requests,
            c.hier.prefetches_issued,
            c.hier.prefetches_useful,
            c.hier.l1_accesses,
            c.hier.l2_accesses,
            c.hier.offchip_latency_sum,
            c.hier.offchip_loads,
            c.pred.tp,
            c.pred.fp,
            c.pred.fn_,
            c.pred.tn,
            c.hier.coh_upgrades,
            c.hier.coh_invalidations,
            c.hier.coh_dirty_forwards,
            c.hier.coh_back_invalidations,
            c.hier.spec_reads_useful,
            c.hier.spec_reads_wasted,
        ));
    }
    s.push_str(&format!(
        ";dram[rd={} rp={} rh={} w={} merged={} dropped={}]",
        r.dram.reads_demand,
        r.dram.reads_prefetch,
        r.dram.reads_hermes,
        r.dram.writes,
        r.dram.demand_merged_into_hermes,
        r.dram.hermes_dropped,
    ));
    s
}

/// Ticks the hierarchy until it is fully quiescent (no events, retries,
/// DRAM reads, walks, or outstanding MSHRs); returns the quiescent cycle.
fn quiesce(h: &mut Hierarchy, mut now: Cycle) -> Cycle {
    let mut buf = Vec::new();
    for _ in 0..2_000_000 {
        let at = h.next_event_at();
        if at == Cycle::MAX {
            if h.mshrs_in_flight() == 0 && h.walks_in_flight() == 0 {
                return now;
            }
            panic!("stranded state: MSHRs in flight with no pending event");
        }
        now = now.max(at) + 1;
        h.tick(now);
        h.drain_finished(&mut buf);
    }
    panic!("hierarchy failed to quiesce");
}

fn coherent_cfg(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        ..SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None)
    }
    .with_coherence(CoherenceConfig::baseline())
}

fn shared_vaddr(i: u64) -> VirtAddr {
    VirtAddr::new(SHARED_BASE + i * 64)
}

/// The physical line a shared virtual address maps to (identical for
/// every core by construction).
fn shared_line(i: u64) -> LineAddr {
    translate(0, shared_vaddr(i)).line()
}

fn load(core: usize, token: u64, vaddr: VirtAddr) -> LoadIssue {
    LoadIssue {
        core,
        token,
        pc: 0x400_100 + core as u64 * 4,
        vaddr,
    }
}

fn store(core: usize, vaddr: VirtAddr) -> StoreIssue {
    StoreIssue {
        core,
        pc: 0x400_200 + core as u64 * 4,
        vaddr,
    }
}

/// Stable-state MESI invariants over a set of candidate lines: a
/// Modified copy is the only private copy, the sharer directory is a
/// superset of the private holders, and private copies imply shared-
/// level residency (inclusion).
fn check_invariants(h: &Hierarchy, cores: usize, lines: &[LineAddr]) {
    for &line in lines {
        let holders: Vec<usize> = (0..cores).filter(|&c| h.privately_held(c, line)).collect();
        let modified: Vec<usize> = holders
            .iter()
            .copied()
            .filter(|&c| h.mesi_state(c, line) == Mesi::Modified)
            .collect();
        if !modified.is_empty() {
            assert_eq!(
                holders.len(),
                1,
                "{line:?}: Modified copy on core {} must be the only copy (holders {holders:?})",
                modified[0]
            );
        }
        let dir = h.directory_sharers(line);
        for &c in &holders {
            assert!(
                dir & (1 << c) != 0,
                "{line:?}: directory {dir:#b} misses holder {c}"
            );
            assert!(
                h.llc_holds(line),
                "{line:?}: private copy on core {c} without an LLC entry (inclusion broken)"
            );
        }
    }
}

#[test]
fn mesi_protocol_transitions() {
    let mut h = Hierarchy::new(coherent_cfg(2));
    let v = shared_vaddr(0);
    let line = shared_line(0);

    // Cold load by core 0: Exclusive.
    h.issue_load(load(0, 0, v), 0);
    let mut now = quiesce(&mut h, 0);
    assert_eq!(h.mesi_state(0, line), Mesi::Exclusive);
    assert_eq!(h.directory_sharers(line), 0b01);

    // Load by core 1: both Shared.
    h.issue_load(load(1, 0, v), now);
    now = quiesce(&mut h, now);
    assert_eq!(h.mesi_state(0, line), Mesi::Shared);
    assert_eq!(h.mesi_state(1, line), Mesi::Shared);
    assert_eq!(h.directory_sharers(line), 0b11);

    // Store by core 0: upgrade invalidates core 1; core 0 Modified.
    h.issue_store(store(0, v), now);
    now = quiesce(&mut h, now);
    assert_eq!(h.mesi_state(0, line), Mesi::Modified);
    assert_eq!(h.mesi_state(1, line), Mesi::Invalid);
    assert_eq!(h.directory_sharers(line), 0b01);
    let s = h.core_stats();
    assert_eq!(
        s[0].coh_upgrades, 1,
        "store on a Shared line pays an upgrade"
    );
    assert_eq!(s[0].coh_invalidations, 1, "core 1's copy was killed");

    // Load by core 1: dirty intervention downgrades core 0 to Shared.
    h.issue_load(load(1, 1, v), now);
    now = quiesce(&mut h, now);
    assert_eq!(h.mesi_state(0, line), Mesi::Shared);
    assert_eq!(h.mesi_state(1, line), Mesi::Shared);
    let s = h.core_stats();
    assert_eq!(
        s[1].coh_dirty_forwards, 1,
        "read of a Modified line forwards"
    );

    // Store by core 1 while core 0 shares: the mirror upgrade.
    h.issue_store(store(1, v), now);
    quiesce(&mut h, now);
    assert_eq!(h.mesi_state(1, line), Mesi::Modified);
    assert_eq!(h.mesi_state(0, line), Mesi::Invalid);
    check_invariants(&h, 2, &[line]);
}

#[test]
fn store_miss_rfo_invalidates_remote_copies() {
    let mut h = Hierarchy::new(coherent_cfg(2));
    let v = shared_vaddr(7);
    let line = shared_line(7);
    // Core 1 reads the line; core 0 then store-misses it (write-allocate
    // RFO): core 1 must lose its copy with no separate upgrade.
    h.issue_load(load(1, 0, v), 0);
    let now = quiesce(&mut h, 0);
    assert_eq!(h.mesi_state(1, line), Mesi::Exclusive);
    h.issue_store(store(0, v), now);
    quiesce(&mut h, now);
    assert_eq!(h.mesi_state(0, line), Mesi::Modified);
    assert_eq!(h.mesi_state(1, line), Mesi::Invalid);
    let s = h.core_stats();
    assert_eq!(s[0].coh_upgrades, 0, "an RFO is not a hit-upgrade");
    assert_eq!(s[0].coh_invalidations, 1);
    check_invariants(&h, 2, &[line]);
}

#[test]
fn upgrade_losing_the_race_redoes_the_store() {
    // Two cores store the same Shared line back to back: whichever
    // upgrade resolves second finds its copy gone and must re-execute
    // the store instead of dirtying a stale line. The end state is a
    // single Modified owner either way.
    let mut h = Hierarchy::new(coherent_cfg(2));
    let v = shared_vaddr(3);
    let line = shared_line(3);
    h.issue_load(load(0, 0, v), 0);
    let now = quiesce(&mut h, 0);
    h.issue_load(load(1, 0, v), now);
    let now = quiesce(&mut h, now);
    assert_eq!(h.directory_sharers(line), 0b11);
    // Same-cycle racing stores.
    h.issue_store(store(0, v), now);
    h.issue_store(store(1, v), now);
    quiesce(&mut h, now);
    let m: Vec<usize> = (0..2)
        .filter(|&c| h.mesi_state(c, line) == Mesi::Modified)
        .collect();
    assert_eq!(m.len(), 1, "exactly one winner must own the line");
    check_invariants(&h, 2, &[line]);
    let s = h.core_stats();
    assert_eq!(s[0].coh_upgrades + s[1].coh_upgrades, 2);
}

#[test]
fn back_to_back_stores_share_one_upgrade_transaction() {
    // Two stores to the same Shared line inside the directory round trip
    // are one logical write-permission transaction: the second is
    // subsumed by the in-flight upgrade, not double-counted.
    let mut h = Hierarchy::new(coherent_cfg(2));
    let v = shared_vaddr(5);
    h.issue_load(load(0, 0, v), 0);
    let now = quiesce(&mut h, 0);
    h.issue_load(load(1, 0, v), now);
    let now = quiesce(&mut h, now);
    h.issue_store(store(0, v), now);
    h.issue_store(store(0, v), now + 2); // within the 24-cycle round trip
    quiesce(&mut h, now);
    assert_eq!(h.mesi_state(0, shared_line(5)), Mesi::Modified);
    assert_eq!(
        h.core_stats()[0].coh_upgrades,
        1,
        "the second store must ride the first store's upgrade"
    );
}

#[test]
fn store_served_from_own_mid_level_still_pays_the_upgrade() {
    // A store that misses the L1 but hits the core's own private L2 on a
    // Shared line never visited the directory on its data path: the
    // write permission still costs the upgrade round trip and must be
    // counted (and must kill the remote copy).
    let mut h = Hierarchy::new(coherent_cfg(2));
    let v = shared_vaddr(9);
    let line = shared_line(9);
    h.issue_load(load(0, 0, v), 0);
    let mut now = quiesce(&mut h, 0);
    h.issue_load(load(1, 0, v), now);
    now = quiesce(&mut h, now);
    assert_eq!(h.mesi_state(0, line), Mesi::Shared);

    // Evict the line from core 0's L1 only: the baseline L1 is 64 sets x
    // 12 ways and the L2 1024 sets x 20 ways, so 12 extra lines in the
    // same L1 set land in 12 different L2 sets and leave the L2 copy
    // resident.
    for (token, cand) in (1u64..)
        .map(|i| VirtAddr::new(0x1100_0000_0000 + i * 64))
        .filter(|&cand| translate(0, cand).line().raw() % 64 == line.raw() % 64)
        .take(14)
        .enumerate()
    {
        h.issue_load(load(0, token as u64 + 1, cand), now);
        now = quiesce(&mut h, now);
    }
    // The L2 copy must have survived (privately_held scans L1 and L2).
    assert!(
        h.privately_held(0, line),
        "L2 copy should survive the L1-set flood"
    );

    let upgrades_before = h.core_stats()[0].coh_upgrades;
    h.issue_store(store(0, v), now);
    quiesce(&mut h, now);
    assert_eq!(
        h.core_stats()[0].coh_upgrades,
        upgrades_before + 1,
        "an own-L2 store hit on a Shared line must pay the upgrade"
    );
    assert_eq!(h.mesi_state(0, line), Mesi::Modified);
    assert_eq!(h.mesi_state(1, line), Mesi::Invalid);
    check_invariants(&h, 2, &[line]);
}

#[test]
fn mesi_invariants_hold_under_random_sharing() {
    // Pseudo-random loads/stores from 4 cores over a small set of shared
    // lines (plus per-core private traffic), invariants checked at
    // quiescent points throughout.
    for seed in [1u64, 7, 42] {
        let cores = 4;
        let mut h = Hierarchy::new(coherent_cfg(cores));
        let lines: Vec<LineAddr> = (0..24).map(shared_line).collect();
        let mut x = seed;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        let mut now = 0;
        let mut tokens = vec![0u64; cores];
        for step in 0..600 {
            let r = rng();
            let core = (r % cores as u64) as usize;
            let li = (r >> 8) % 24;
            let v = if (r >> 20) % 5 == 0 {
                // Occasional private access mixed in.
                VirtAddr::new(0x1000_0000_0000 + (li + core as u64 * 64) * 64)
            } else {
                shared_vaddr(li)
            };
            if (r >> 16) % 3 == 0 {
                h.issue_store(store(core, v), now);
            } else {
                h.issue_load(load(core, tokens[core], v), now);
                tokens[core] += 1;
            }
            now += 1 + (r % 7);
            h.tick(now);
            if step % 50 == 49 {
                now = quiesce(&mut h, now);
                check_invariants(&h, cores, &lines);
            }
        }
        quiesce(&mut h, now);
        check_invariants(&h, cores, &lines);
        let total_inv: u64 = h.core_stats().iter().map(|s| s.coh_invalidations).sum();
        assert!(
            total_inv > 0,
            "seed {seed}: contended stores never invalidated anything"
        );
    }
}

#[test]
fn writeback_into_llc_does_not_train_ttp() {
    // Satellite bugfix regression: a dirty victim written back into the
    // LLC used to re-enter TTP via the fill-notification path, as if the
    // writeback were a demand fill returning to the core — teaching TTP
    // that an evicted (off-chip) line was on-chip.
    //
    // Tiny 2-level topology with the LLC *narrower* than the L1 (8 vs 4
    // sets), so lines can conflict in the LLC set while living in a
    // different L1 set: L1 8 sets x 2 ways, LLC 4 sets x 2 ways.
    let cfg = SystemConfig {
        cores: 1,
        ..SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None)
    }
    .with_levels(vec![
        LevelConfig::private(
            CacheConfig::new("L1D", 16 * 64, 2, ReplacementKind::Lru, 16).with_latency(5),
        ),
        LevelConfig::shared(
            CacheConfig::new("LLC", 8 * 64, 2, ReplacementKind::Lru, 32).with_latency(40),
        ),
    ])
    .with_hermes(HermesConfig::passive(PredictorKind::Ttp));
    let mut h = Hierarchy::new(cfg);

    // Conflicting vaddrs sharing the target's LLC set (line % 4) but NOT
    // its L1 set (line % 8) — they evict the LLC copy while the dirty L1
    // copy survives.
    let target = VirtAddr::new(0x5000_0000);
    let tline = translate(0, target).line();
    let conflicts: Vec<VirtAddr> = (1u64..)
        .map(|i| VirtAddr::new(0x5000_0000 + i * 64))
        .filter(|&v| {
            let l = translate(0, v).line();
            l.raw() % 4 == tline.raw() % 4 && l.raw() % 8 != tline.raw() % 8
        })
        .take(8)
        .collect();

    // Dirty the target in the L1 (store write-allocates), filling the
    // LLC on the way; TTP tracks it.
    h.issue_store(store(0, target), 0);
    let mut now = quiesce(&mut h, 0);
    assert_eq!(h.ttp_tracks(0, tline), Some(true));

    // Conflicting loads evict the target from the LLC (TTP forgets it —
    // the correct eviction notification) while the dirty copy still
    // sits untouched in its L1 set.
    for (i, &v) in conflicts.iter().enumerate() {
        h.issue_load(load(0, i as u64, v), now);
        now = quiesce(&mut h, now);
        if !h.llc_holds(tline) {
            break;
        }
    }
    assert!(
        !h.llc_holds(tline) && h.privately_held(0, tline),
        "setup must strand a dirty L1 line without an LLC copy"
    );
    assert_eq!(
        h.ttp_tracks(0, tline),
        Some(false),
        "LLC eviction must have removed the line from TTP"
    );

    // Now evict the dirty line from the L1: the writeback re-fills the
    // LLC. TTP must NOT see that as a fill returning to the core.
    let mut next_token = 100;
    for i in 1u64.. {
        let v = VirtAddr::new(0x6000_0000 + i * 64);
        let l = translate(0, v).line();
        if l.raw() % 8 != tline.raw() % 8 {
            continue;
        }
        h.issue_load(load(0, next_token, v), now);
        next_token += 1;
        now = quiesce(&mut h, now);
        if !h.privately_held(0, tline) {
            break;
        }
    }
    assert!(
        h.llc_holds(tline),
        "the dirty victim must have been written back into the LLC"
    );
    assert_eq!(
        h.ttp_tracks(0, tline),
        Some(false),
        "a writeback-initiated LLC fill must not train TTP"
    );
}

/// Issues `n` off-chip loads from one fixed PC (distinct cold pages,
/// identical in-page offset so every POPET feature hits the same weight
/// entries), quiescing after each, until the perceptron predicts
/// off-chip for that PC.
fn warm_popet_positive(
    h: &mut Hierarchy,
    pc: u64,
    n: u64,
    first_token: u64,
    mut now: Cycle,
) -> Cycle {
    for k in 0..n {
        let v = VirtAddr::new(0x2000_0000_0000 + k * 0x1000);
        h.issue_load(
            LoadIssue {
                core: 0,
                token: first_token + k,
                pc,
                vaddr: v,
            },
            now,
        );
        now = quiesce(h, now);
    }
    now
}

#[test]
fn dirty_intervention_served_load_trains_as_onchip() {
    // The tentpole's training-label half: a load whose data is forwarded
    // out of a remote Modified copy resolves *on-chip* — it must never
    // reach the predictor as an off-chip outcome.
    let cfg = coherent_cfg(2)
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet).with_coh_features());
    let mut h = Hierarchy::new(cfg);
    let v = shared_vaddr(0);
    let line = shared_line(0);

    // Core 0 takes the line Modified; core 1 then loads it through a
    // dirty intervention.
    h.issue_store(store(0, v), 0);
    let now = quiesce(&mut h, 0);
    assert_eq!(h.mesi_state(0, line), Mesi::Modified);
    h.issue_load(load(1, 0, v), now);
    quiesce(&mut h, now);
    assert_eq!(
        h.core_stats()[1].coh_dirty_forwards,
        1,
        "setup: intervention"
    );

    let p = h.predictor_stats()[1];
    assert_eq!(p.total(), 1, "exactly one resolved load on core 1");
    assert_eq!(
        (p.tp, p.fn_),
        (0, 0),
        "an intervention-served load must train as on-chip (got tp={} fn={})",
        p.tp,
        p.fn_
    );
}

#[test]
fn filter_vetoes_spec_read_for_remote_modified_line() {
    // The filter's hard-veto half: once a remote store has taken the
    // line Modified, a predicted-off-chip re-read must not launch its
    // speculative DRAM read — the data provably lives on-chip. The same
    // sequence without the filter fires the read and wastes it.
    let pc = 0x777_000;
    let run = |filter: bool| {
        let mut hermes = HermesConfig::hermes_o(PredictorKind::Popet).with_coh_features();
        if filter {
            hermes = hermes.with_filter();
        }
        let mut h = Hierarchy::new(coherent_cfg(2).with_hermes(hermes));

        // Make POPET predict off-chip for this PC (and, with the filter
        // on, let the PC earn an open gate through useful reads).
        let mut now = warm_popet_positive(&mut h, pc, 32, 0, 0);

        // Core 0 holds the shared line privately; core 1's store takes
        // it Modified, which records the remote-Modified event in core
        // 0's table.
        let v = shared_vaddr(0);
        h.issue_load(load(0, 100, v), now);
        now = quiesce(&mut h, now);
        h.issue_store(store(1, v), now);
        now = quiesce(&mut h, now);
        assert_eq!(h.mesi_state(1, shared_line(0)), Mesi::Modified);

        // Core 0 re-reads the line from the warmed PC: predicted
        // off-chip, served by a dirty intervention.
        let before = h.core_stats()[0].hermes_requests;
        h.issue_load(
            LoadIssue {
                core: 0,
                token: 101,
                pc,
                vaddr: v,
            },
            now,
        );
        quiesce(&mut h, now);
        let s = h.core_stats()[0];
        let p = h.predictor_stats()[0];
        (s.hermes_requests - before, s.spec_reads_wasted, p)
    };

    let (fired_nofilter, wasted_nofilter, p) = run(false);
    assert_eq!(
        fired_nofilter, 1,
        "without the filter the mispredicted load must fire its spec read \
         (predictor warm: tp={} fp={} fn={} tn={})",
        p.tp, p.fp, p.fn_, p.tn
    );
    assert!(
        wasted_nofilter >= 1,
        "the intervention-served load's spec read must count as wasted"
    );
    let (fired_filter, _, _) = run(true);
    assert_eq!(
        fired_filter, 0,
        "the remote-Modified veto must suppress the speculative read"
    );
}

#[test]
fn single_core_coherence_vacuous_with_coh_knobs_on() {
    // The coherence-aware knobs must not break the single-core
    // `coherence: Some` ≡ `None` equivalence: with one core no
    // invalidation ever happens, so the hint tables stay empty and the
    // filter sees identical inputs either way.
    let mut specs = suite::smoke_suite();
    specs.truncate(1);
    specs.extend(suite::sharing_suite(500));
    for spec in &specs {
        let hermes = HermesConfig::hermes_o(PredictorKind::Popet)
            .with_coh_features()
            .with_filter();
        let base = SystemConfig::baseline_1c().with_hermes(hermes);
        let with = base.clone().with_coherence(CoherenceConfig::baseline());
        let a = run_one(base, spec, 3_000, 8_000);
        let b = run_one(with, spec, 3_000, 8_000);
        assert_eq!(
            digest(&a),
            digest(&b),
            "single-core coherence must stay vacuous with coh knobs on for {}",
            spec.name
        );
    }
}

#[test]
fn single_core_coherence_is_cycle_exact() {
    let mut specs = suite::smoke_suite();
    specs.truncate(2);
    specs.extend(suite::sharing_suite(500));
    for spec in &specs {
        let base =
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let with = base.clone().with_coherence(CoherenceConfig::baseline());
        let a = run_one(base, spec, 3_000, 8_000);
        let b = run_one(with, spec, 3_000, 8_000);
        assert_eq!(
            digest(&a),
            digest(&b),
            "single-core coherence must be vacuous for {}",
            spec.name
        );
    }
}

#[test]
fn coherence_off_sharing_suite_still_runs() {
    // Disjoint-footprint workloads are unaffected by the coherence knob
    // being absent; the sharing suite *needs* it on multi-core, but must
    // still complete (incoherently) without it — the historical mode.
    let specs = suite::sharing_suite(250);
    let cfg = SystemConfig {
        cores: 2,
        ..SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None)
    };
    let r = System::new(cfg, &specs).run(1_000, 5_000);
    assert_eq!(r.cores.len(), 2);
    for c in &r.cores {
        assert_eq!(c.hier.coh_upgrades, 0, "no protocol without the knob");
    }
}

#[test]
fn multicore_sharing_produces_invalidation_traffic() {
    // Homogeneous mixes, exactly the shape the experiment engine
    // dispatches: every core runs the same spec, the core index picks
    // the role/lane.
    for spec in &suite::sharing_suite(500) {
        let cfg = SystemConfig {
            cores: 2,
            ..SystemConfig::baseline_1c()
        }
        .with_coherence(CoherenceConfig::baseline());
        let r = System::new(cfg, std::slice::from_ref(spec)).run(2_000, 8_000);
        let invals: u64 = r.cores.iter().map(|c| c.hier.coh_invalidations).sum();
        let fwds: u64 = r.cores.iter().map(|c| c.hier.coh_dirty_forwards).sum();
        assert!(
            invals + fwds > 0,
            "{} must generate coherence traffic (invalidations={invals}, forwards={fwds})",
            spec.name
        );
    }
}

#[test]
fn fast_forward_is_cycle_exact_with_coherence() {
    let specs = suite::sharing_suite(500);
    for hermes in [false, true] {
        let cfg = |ff| {
            let mut c = SystemConfig {
                cores: 2,
                ..SystemConfig::baseline_1c()
            }
            .with_coherence(CoherenceConfig::baseline())
            .with_fast_forward(ff);
            if hermes {
                c = c.with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
            }
            c
        };
        let off = System::new(cfg(false), &specs).run(2_000, 6_000);
        let on = System::new(cfg(true), &specs).run(2_000, 6_000);
        assert_eq!(
            digest(&off),
            digest(&on),
            "fast-forward changed coherent results (hermes={hermes})"
        );
    }
}
