//! Cycle-exactness of the calendar-queue scheduler.
//!
//! `SchedulerModel::Calendar` (the default) must simulate the identical
//! trajectory to `SchedulerModel::Tick` — every counter, every probe
//! record, bit-for-bit — on every kind of configuration: single-core,
//! multi-core with MESI coherence (which saturates the L1 MSHRs and
//! exercises the retry queue heavily), address translation on, the
//! out-of-order core model, the probe attached, and fast-forward off.
//! The comparison is the full `Debug` rendering of [`RunStats`], the
//! strongest equality the stats expose.

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_cache::CoherenceConfig;
use hermes_repro::hermes_cpu::{CoreModel, OooConfig};
use hermes_repro::hermes_probe::ProbeConfig;
use hermes_repro::hermes_sim::{SchedulerModel, System, SystemConfig};
use hermes_repro::hermes_trace::{suite, WorkloadSpec};
use hermes_repro::hermes_vm::VmConfig;

/// Runs `cfg` under both scheduler models and asserts bit-identical
/// statistics.
fn assert_equivalent(tag: &str, cfg: SystemConfig, specs: &[WorkloadSpec], warmup: u64, sim: u64) {
    let tick =
        System::new(cfg.clone().with_scheduler(SchedulerModel::Tick), specs).run(warmup, sim);
    let cal = System::new(cfg.with_scheduler(SchedulerModel::Calendar), specs).run(warmup, sim);
    assert_eq!(
        format!("{tick:?}"),
        format!("{cal:?}"),
        "{tag}: calendar scheduler diverged from tick"
    );
}

#[test]
fn calendar_matches_tick_single_core() {
    let smoke = suite::smoke_suite();
    for wi in [0, 1, 3] {
        assert_equivalent(
            "1c-baseline",
            SystemConfig::baseline_1c(),
            &smoke[wi..=wi],
            3_000,
            10_000,
        );
        assert_equivalent(
            "1c-popet",
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
            &smoke[wi..=wi],
            3_000,
            10_000,
        );
    }
}

#[test]
fn calendar_matches_tick_4core_mesi() {
    // Heavy sharing on 4 coherent cores floods the L1 MSHRs: this is
    // the config where the retry queue holds thousands of parked
    // accesses and the epoch fast path does almost all the work.
    let cfg = SystemConfig {
        cores: 4,
        ..SystemConfig::baseline_1c()
    }
    .with_coherence(CoherenceConfig::baseline());
    let specs = suite::sharing_suite(500);
    assert_equivalent("4c-mesi", cfg.clone(), &specs, 1_000, 4_000);
    assert_equivalent(
        "4c-mesi-popet",
        cfg.with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        &specs,
        1_000,
        4_000,
    );
}

#[test]
fn calendar_matches_tick_vm_on() {
    let cfg = SystemConfig::baseline_1c()
        .with_vm(VmConfig::baseline())
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
    let specs = suite::tlb_suite();
    assert_equivalent("1c-vm", cfg, &specs[..1], 2_000, 8_000);
}

#[test]
fn calendar_matches_tick_ooo_core() {
    let cfg = SystemConfig::baseline_1c().with_core_model(CoreModel::OoO(OooConfig::baseline()));
    let smoke = suite::smoke_suite();
    for wi in [0, 1] {
        assert_equivalent("1c-ooo", cfg.clone(), &smoke[wi..=wi], 2_000, 8_000);
    }
}

#[test]
fn calendar_matches_tick_with_probe() {
    // The probe's interval timeline and lifecycle records ride the same
    // trajectory; RunStats embeds the probe report, so this pins the
    // observability layer too.
    let cfg = SystemConfig::baseline_1c()
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
        .with_probe(ProbeConfig::default());
    let smoke = suite::smoke_suite();
    assert_equivalent("1c-probe", cfg, &smoke[..1], 2_000, 8_000);
}

#[test]
fn calendar_matches_tick_without_fast_forward() {
    // With fast-forward off the calendar loop steps every cycle but
    // still skips idle components; results must not move.
    let cfg = SystemConfig::baseline_1c().with_fast_forward(false);
    let smoke = suite::smoke_suite();
    assert_equivalent("1c-no-ff", cfg, &smoke[..1], 1_000, 4_000);
}

#[test]
fn calendar_never_stalls_with_work_pending() {
    // Quiescence: a calendar run must terminate with every core at its
    // retirement quota — if the queue ever reported "nothing due" while
    // work was pending, the forward-progress budget inside `run` would
    // trip (or retirement would stall short). Exercise the three
    // stressors at once: coherence, translation, and Hermes.
    let cfg = SystemConfig {
        cores: 2,
        ..SystemConfig::baseline_1c()
    }
    .with_coherence(CoherenceConfig::baseline())
    .with_vm(VmConfig::baseline())
    .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
    .with_scheduler(SchedulerModel::Calendar);
    let specs = suite::sharing_suite(250);
    let stats = System::new(cfg, &specs).run(1_000, 5_000);
    for c in &stats.cores {
        assert_eq!(c.instructions, 5_000, "{} stalled short", c.workload);
    }
    assert!(stats.total_cycles > 0);
}
