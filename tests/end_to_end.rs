//! Cross-crate integration tests: end-to-end shape checks of the paper's
//! headline claims at smoke scale.
//!
//! These are the properties that must hold for the reproduction to be
//! meaningful — predictor quality ordering, Hermes' latency win on
//! irregular code, coherence of the drop rule, and determinism.

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_prefetch::PrefetcherKind;
use hermes_repro::hermes_sim::{system::run_one, RunStats, SystemConfig};
use hermes_repro::hermes_trace::suite;
use hermes_repro::hermes_trace::suite::{Category, GenConfig, WorkloadSpec};

const WARMUP: u64 = 10_000;
const INSTR: u64 = 50_000;

fn chase_spec() -> WorkloadSpec {
    // Irregular, off-chip-bound, prefetch-hostile: Hermes' home turf.
    WorkloadSpec::new(
        "it-chase",
        Category::Spec06,
        GenConfig::Diluted {
            inner: Box::new(GenConfig::PointerChase {
                nodes: 256 * 1024,
                work: 2,
            }),
            work: 8,
        },
        99,
    )
}

fn run(cfg: SystemConfig, spec: &WorkloadSpec) -> RunStats {
    run_one(cfg, spec, WARMUP, INSTR)
}

#[test]
fn ideal_hermes_accelerates_offchip_bound_code() {
    let spec = chase_spec();
    let base = run(
        SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
        &spec,
    );
    let ideal = run(
        SystemConfig::baseline_1c()
            .with_prefetcher(PrefetcherKind::None)
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
        &spec,
    );
    let speedup = ideal.cores[0].ipc() / base.cores[0].ipc();
    assert!(
        speedup > 1.10,
        "ideal Hermes speedup on a chase was only {speedup:.3}"
    );
}

#[test]
fn popet_hermes_close_to_ideal_on_chase() {
    let spec = chase_spec();
    let popet = run(
        SystemConfig::baseline_1c()
            .with_prefetcher(PrefetcherKind::None)
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        &spec,
    );
    let ideal = run(
        SystemConfig::baseline_1c()
            .with_prefetcher(PrefetcherKind::None)
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
        &spec,
    );
    let ratio = popet.cores[0].ipc() / ideal.cores[0].ipc();
    assert!(
        ratio > 0.9,
        "POPET reached only {:.0}% of ideal (paper: ~90%)",
        ratio * 100.0
    );
}

#[test]
fn hermes_o_beats_hermes_p() {
    // A shorter issue latency must not hurt (paper Fig. 12: O ≥ P).
    let spec = chase_spec();
    let o = run(
        SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        &spec,
    );
    let p = run(
        SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_p(PredictorKind::Popet)),
        &spec,
    );
    assert!(
        o.cores[0].ipc() >= p.cores[0].ipc() * 0.995,
        "Hermes-O ({:.3}) slower than Hermes-P ({:.3})",
        o.cores[0].ipc(),
        p.cores[0].ipc()
    );
}

#[test]
fn predictor_quality_ordering_on_mixed_suite() {
    // POPET must beat HMP on accuracy and TTP must take the coverage
    // crown with poor accuracy — the paper's Fig. 9 ordering.
    let spec = &suite::smoke_suite()[0];
    let measure = |pred: PredictorKind| {
        let r = run(
            SystemConfig::baseline_1c().with_hermes(HermesConfig::passive(pred)),
            spec,
        );
        r.cores[0].pred
    };
    let popet = measure(PredictorKind::Popet);
    let hmp = measure(PredictorKind::Hmp);
    let ttp = measure(PredictorKind::Ttp);
    assert!(
        popet.coverage() > hmp.coverage(),
        "POPET coverage {:.2} must beat HMP {:.2}",
        popet.coverage(),
        hmp.coverage()
    );
    assert!(
        ttp.coverage() > popet.coverage() * 0.9,
        "TTP should have near-top coverage; got {:.2} vs POPET {:.2}",
        ttp.coverage(),
        popet.coverage()
    );
}

#[test]
fn hermes_never_breaks_execution() {
    // Every workload class must run to completion under every predictor.
    for spec in suite::smoke_suite() {
        for pred in [
            PredictorKind::Popet,
            PredictorKind::Hmp,
            PredictorKind::Ttp,
            PredictorKind::Ideal,
        ] {
            let r = run_one(
                SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(pred)),
                &spec,
                2_000,
                10_000,
            );
            assert_eq!(
                r.cores[0].instructions, 10_000,
                "{} under {:?}",
                spec.name, pred
            );
        }
    }
}

#[test]
fn dropped_hermes_requests_never_fill_caches() {
    // With an always-wrong predictor stand-in (TTP cold start produces
    // many false positives), dropped Hermes reads must not perturb
    // correctness: the run completes and cache behaviour stays sane.
    let spec = &suite::smoke_suite()[4]; // server mix: low off-chip rate
    let base = run(SystemConfig::baseline_1c(), spec);
    let ttp = run(
        SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Ttp)),
        spec,
    );
    // Same instruction stream, same demand misses modulo timing noise.
    let m0 = base.cores[0].llc_mpki();
    let m1 = ttp.cores[0].llc_mpki();
    assert!(
        (m0 - m1).abs() / m0.max(1e-9) < 0.25,
        "speculative reads changed demand miss rate: {m0:.2} vs {m1:.2}"
    );
    // Speculative traffic flowed (positive predictions were acted on) but
    // correctness was preserved; the drop rule itself is unit-tested in
    // hermes-dram.
    assert!(
        ttp.dram.reads_hermes > 0,
        "TTP issued no Hermes requests at all"
    );
}

#[test]
fn multicore_contention_hurts_ipc_but_hermes_still_helps() {
    let spec = chase_spec();
    let one = run(
        SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
        &spec,
    );
    let eight_cfg = SystemConfig {
        cores: 8,
        ..SystemConfig::baseline_8c().with_prefetcher(PrefetcherKind::None)
    };
    let eight = run_one(eight_cfg.clone(), &spec, WARMUP / 2, INSTR / 2);
    let mean8 = eight.mean_ipc();
    assert!(
        mean8 <= one.cores[0].ipc() * 1.1,
        "8-core contention should not boost IPC"
    );

    let eight_h = run_one(
        eight_cfg.with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        &spec,
        WARMUP / 2,
        INSTR / 2,
    );
    assert!(
        eight_h.mean_ipc() > mean8,
        "Hermes must help the 8-core chase: {:.3} vs {:.3}",
        eight_h.mean_ipc(),
        mean8
    );
}

#[test]
fn determinism_across_full_system() {
    let spec = &suite::smoke_suite()[3]; // graph workload, RNG heavy
    let cfg = SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
    let a = run_one(cfg.clone(), spec, 5_000, 20_000);
    let b = run_one(cfg, spec, 5_000, 20_000);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    assert_eq!(a.dram.total_reads(), b.dram.total_reads());
    assert_eq!(a.cores[0].pred, b.cores[0].pred);
}

#[test]
fn accounting_identities_hold() {
    let spec = chase_spec();
    let r = run(
        SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        &spec,
    );
    let c = &r.cores[0];
    // Every off-chip load is either blocking or non-blocking.
    assert_eq!(
        c.core.offchip_blocking + c.core.offchip_nonblocking,
        c.core.served_dram
    );
    // Predictor observed every resolved demand load (within the window's
    // in-flight edge effects).
    let diff = (c.pred.total() as i64 - c.core.loads as i64).abs();
    assert!(
        diff <= c.core.loads as i64 / 10,
        "predictor saw {} of {} loads",
        c.pred.total(),
        c.core.loads
    );
    // TP+FN == off-chip demand loads seen by the predictor.
    assert!(c.pred.offchip() > 0);
}

#[test]
fn pf_bandwidth_guard_sheds_prefetches_under_contention() {
    use hermes_repro::hermes_sim::System;
    // Eight streaming cores keep the DRAM read queues past the quarter-
    // occupancy headroom line much of the time; with the guard on, the
    // prefetcher must shed issues there instead of queueing behind
    // demand fills. Off (the default) nothing changes — pinned by the
    // golden digests, re-asserted here against an explicit `false`.
    let spec = &suite::smoke_suite()[1]; // stream: prefetch-heavy
    let cfg = SystemConfig {
        cores: 8,
        ..SystemConfig::baseline_1c()
    };
    let issued = |cfg: SystemConfig| -> u64 {
        let specs: Vec<WorkloadSpec> = (0..8).map(|_| spec.clone()).collect();
        let r = System::new(cfg, &specs).run(WARMUP / 2, INSTR / 2);
        r.cores.iter().map(|c| c.hier.prefetches_issued).sum()
    };
    let default_off = issued(cfg.clone());
    let explicit_off = issued(cfg.clone().with_pf_bandwidth_guard(false));
    let on = issued(cfg.with_pf_bandwidth_guard(true));
    assert_eq!(default_off, explicit_off, "knob must default to off");
    assert!(
        on < default_off,
        "guard shed nothing under contention: {on} vs {default_off}"
    );
}
