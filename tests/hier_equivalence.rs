//! Equivalence regression tests for the generic N-level hierarchy and
//! idle-cycle fast-forward.
//!
//! The golden digests below were captured from the pre-refactor
//! simulator (hardcoded L1/L2/LLC pipeline, no fast-forward) at fixed
//! seeds and windows. The generic `Vec<CacheLevel>` engine must
//! reproduce every counter bit-for-bit with the default topology, and
//! fast-forward must be invisible in the statistics at any topology —
//! it may only change wall-clock time.

use hermes_repro::hermes::{HermesConfig, PredictorKind};
use hermes_repro::hermes_cache::{CacheConfig, LevelConfig, ReplacementKind};
use hermes_repro::hermes_sim::{system::run_one, RunStats, System, SystemConfig};
use hermes_repro::hermes_trace::suite;

/// Canonical rendering of every deterministic counter in a [`RunStats`].
fn digest(r: &RunStats) -> String {
    let mut s = format!("total_cycles={}", r.total_cycles);
    for c in &r.cores {
        s.push_str(&format!(
            ";[{} cyc={} ret={} ld={} st={} br={} bm={} l1={} l2={} llc={} dram={} ob={} onb={} sco={} scl={} sso={} erc={} hacc={} hmiss={} hreq={} pfi={} pfu={} l1a={} l2a={} ols={} oops={} ol={} tp={} fp={} fn={} tn={}]",
            c.workload,
            c.cycles,
            c.instructions,
            c.core.loads,
            c.core.stores,
            c.core.branches,
            c.core.branch_mispredicts,
            c.core.served_l1,
            c.core.served_l2,
            c.core.served_llc,
            c.core.served_dram,
            c.core.offchip_blocking,
            c.core.offchip_nonblocking,
            c.core.stall_cycles_offchip,
            c.core.stall_cycles_onchip_load,
            c.core.stall_cycles_other,
            c.core.empty_rob_cycles,
            c.hier.llc_demand_accesses,
            c.hier.llc_demand_misses,
            c.hier.hermes_requests,
            c.hier.prefetches_issued,
            c.hier.prefetches_useful,
            c.hier.l1_accesses,
            c.hier.l2_accesses,
            c.hier.offchip_latency_sum,
            c.hier.offchip_onchip_portion_sum,
            c.hier.offchip_loads,
            c.pred.tp,
            c.pred.fp,
            c.pred.fn_,
            c.pred.tn,
        ));
    }
    s.push_str(&format!(
        ";dram[rd={} rp={} rh={} w={} hit={} empty={} conf={} merged={} dropped={}]",
        r.dram.reads_demand,
        r.dram.reads_prefetch,
        r.dram.reads_hermes,
        r.dram.writes,
        r.dram.row_hits,
        r.dram.row_empty,
        r.dram.row_conflicts,
        r.dram.demand_merged_into_hermes,
        r.dram.hermes_dropped,
    ));
    s
}

fn config_for(tag: &str) -> SystemConfig {
    match tag {
        "baseline" => SystemConfig::baseline_1c(),
        "hermes-o-popet" => {
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
        }
        _ => panic!("unknown tag {tag}"),
    }
}

/// Pre-refactor digests: (config tag, smoke-suite workload index, digest)
/// at warmup 5 000 / measure 20 000.
const GOLDEN_1C: &[(&str, usize, &str)] = &[
    ("baseline", 0, "total_cycles=1067034;[smoke-chase cyc=1067034 ret=20000 ld=5000 st=0 br=5000 bm=0 l1=0 l2=0 llc=117 dram=4883 ob=4883 onb=0 sco=1045833 scl=6201 sso=15000 erc=0 hacc=5000 hmiss=4883 hreq=0 pfi=751 pfu=117 l1a=5000 l2a=5000 ols=1055599 oops=268565 ol=4883 tp=0 fp=0 fn=0 tn=0];dram[rd=4883 rp=751 rh=0 w=0 hit=600 empty=0 conf=5034 merged=0 dropped=0]"),
    ("baseline", 1, "total_cycles=22971;[smoke-stream cyc=22971 ret=20000 ld=5364 st=3001 br=5819 bm=0 l1=0 l2=0 llc=89 dram=5275 ob=216 onb=5059 sco=17541 scl=1743 sso=527 erc=0 hacc=935 hmiss=902 hreq=0 pfi=723 pfu=33 l1a=149601 l2a=936 ols=2469856 oops=290235 ol=5277 tp=0 fp=0 fn=0 tn=0];dram[rd=328 rp=723 rh=0 w=0 hit=874 empty=3 conf=174 merged=0 dropped=0]"),
    ("baseline", 3, "total_cycles=52651;[smoke-pagerank cyc=52651 ret=20000 ld=4992 st=2248 br=2248 bm=0 l1=717 l2=161 llc=611 dram=3503 ob=92 onb=3411 sco=10590 scl=0 sso=42061 erc=0 hacc=1961 hmiss=1645 hreq=0 pfi=1311 pfu=316 l1a=74361 l2a=2127 ols=1306786 oops=192610 ol=3502 tp=0 fp=0 fn=0 tn=0];dram[rd=1356 rp=1311 rh=0 w=0 hit=1119 empty=0 conf=1548 merged=0 dropped=0]"),
    ("hermes-o-popet", 0, "total_cycles=821263;[smoke-chase cyc=821263 ret=20000 ld=5000 st=0 br=5000 bm=0 l1=0 l2=0 llc=117 dram=4883 ob=4883 onb=0 sco=800062 scl=6201 sso=15000 erc=0 hacc=5000 hmiss=4883 hreq=5000 pfi=751 pfu=117 l1a=5000 l2a=5000 ols=809828 oops=268565 ol=4883 tp=4883 fp=117 fn=0 tn=0];dram[rd=0 rp=751 rh=5000 w=0 hit=618 empty=0 conf=5133 merged=4883 dropped=117]"),
    ("hermes-o-popet", 1, "total_cycles=22580;[smoke-stream cyc=22580 ret=20000 ld=5720 st=3197 br=5543 bm=0 l1=10 l2=0 llc=332 dram=5378 ob=246 onb=5132 sco=16202 scl=2692 sso=554 erc=0 hacc=892 hmiss=839 hreq=5707 pfi=689 pfu=53 l1a=147522 l2a=888 ols=1978989 oops=294690 ol=5358 tp=5349 fp=342 fn=9 tn=0];dram[rd=87 rp=356 rh=567 w=0 hit=822 empty=3 conf=185 merged=197 dropped=367]"),
    ("hermes-o-popet", 3, "total_cycles=71832;[smoke-pagerank cyc=71832 ret=20000 ld=4994 st=2248 br=2248 bm=0 l1=659 l2=167 llc=432 dram=3736 ob=247 onb=3489 sco=28338 scl=1423 sso=42070 erc=0 hacc=1943 hmiss=1719 hreq=4892 pfi=1247 pfu=224 l1a=120101 l2a=2114 ols=2010898 oops=206085 ol=3747 tp=3746 fp=1170 fn=1 tn=101];dram[rd=103 rp=1154 rh=2058 w=0 hit=879 empty=0 conf=2436 merged=1234 dropped=843]"),
];

/// Pre-refactor digest of a 2-core mix (smoke-chase + smoke-stream,
/// shared LLC contention) at warmup 3 000 / measure 10 000.
const GOLDEN_2C: &str = "total_cycles=1480530;[smoke-chase cyc=1480530 ret=10000 ld=2500 st=0 br=2500 bm=0 l1=0 l2=0 llc=43 dram=2457 ob=2457 onb=0 sco=1470751 scl=2279 sso=7500 erc=0 hacc=2500 hmiss=2457 hreq=0 pfi=1029 pfu=43 l1a=2500 l2a=2500 ols=1475665 oops=135135 ol=2457 tp=0 fp=0 fn=0 tn=0];[smoke-stream cyc=12637 ret=10000 ld=2690 st=1503 br=2904 bm=0 l1=14 l2=0 llc=468 dram=2208 ob=106 onb=2102 sco=10204 scl=648 sso=255 erc=0 hacc=453 hmiss=392 hreq=0 pfi=360 pfu=61 l1a=50251 l2a=456 ols=1215593 oops=122485 ol=2227 tp=0 fp=0 fn=0 tn=0];dram[rd=22076 rp=38219 rh=0 w=920 hit=44559 empty=0 conf=16656 merged=0 dropped=0]";

#[test]
fn generic_hierarchy_matches_pre_refactor_goldens() {
    let smoke = suite::smoke_suite();
    for (tag, wi, golden) in GOLDEN_1C {
        let r = run_one(config_for(tag), &smoke[*wi], 5_000, 20_000);
        assert_eq!(
            digest(&r),
            *golden,
            "{tag}/{} diverged from the pre-refactor simulator",
            smoke[*wi].name
        );
    }
}

#[test]
fn generic_hierarchy_matches_pre_refactor_goldens_2core() {
    let smoke = suite::smoke_suite();
    let cfg = SystemConfig {
        cores: 2,
        ..SystemConfig::baseline_1c()
    };
    let r = System::new(cfg, &smoke[0..2]).run(3_000, 10_000);
    assert_eq!(digest(&r), GOLDEN_2C, "2-core mix diverged");
}

#[test]
fn explicit_default_topology_matches_implicit() {
    // Spelling out the classic stack through `with_levels` must be
    // indistinguishable from leaving `levels` at `None`.
    let smoke = suite::smoke_suite();
    let implicit = SystemConfig::baseline_1c();
    let explicit = implicit.clone().with_levels(vec![
        LevelConfig::private(implicit.l1.clone()),
        LevelConfig::private(implicit.l2.clone()),
        LevelConfig::shared(implicit.llc_per_core.clone()),
    ]);
    let a = run_one(implicit, &smoke[3], 3_000, 10_000);
    let b = run_one(explicit, &smoke[3], 3_000, 10_000);
    assert_eq!(digest(&a), digest(&b));
}

/// A small 2-level topology: private L1 straight to a shared LLC.
fn two_level() -> SystemConfig {
    SystemConfig::baseline_1c().with_levels(vec![
        LevelConfig::private(
            CacheConfig::new("L1D", 48 * 1024, 12, ReplacementKind::Lru, 16).with_latency(5),
        ),
        LevelConfig::shared(
            CacheConfig::new("LLC", 2 << 20, 16, ReplacementKind::Ship, 64).with_latency(35),
        ),
    ])
}

/// A 4-level topology: L1/L2, a private L3, and a shared LLC.
fn four_level() -> SystemConfig {
    let base = SystemConfig::baseline_1c();
    SystemConfig::baseline_1c().with_levels(vec![
        LevelConfig::private(base.l1.clone()),
        LevelConfig::private(base.l2.clone()),
        LevelConfig::private(
            CacheConfig::new("L3", 2 << 20, 16, ReplacementKind::Lru, 48).with_latency(15),
        ),
        LevelConfig::shared(base.llc_per_core.clone()),
    ])
}

#[test]
fn fast_forward_is_cycle_exact_across_topologies() {
    let smoke = suite::smoke_suite();
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("default-3l", SystemConfig::baseline_1c()),
        (
            "default-3l+hermes",
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
        ("2-level", two_level()),
        ("4-level", four_level()),
    ];
    for (name, cfg) in configs {
        for spec in [&smoke[0], &smoke[1]] {
            let off = run_one(cfg.clone().with_fast_forward(false), spec, 3_000, 8_000);
            let on = run_one(cfg.clone().with_fast_forward(true), spec, 3_000, 8_000);
            assert_eq!(
                digest(&off),
                digest(&on),
                "fast-forward changed results for {name}/{}",
                spec.name
            );
        }
    }
}

/// The vm counters, appended to [`digest`] when comparing vm-enabled
/// runs (the pinned goldens predate the vm subsystem, so the base digest
/// format must stay frozen).
fn vm_digest(r: &RunStats) -> String {
    let mut s = digest(r);
    for c in &r.cores {
        s.push_str(&format!(
            ";vm[da={} dm={} sm={} w={} wc={} wa={} pwc={}]",
            c.hier.dtlb_accesses,
            c.hier.dtlb_misses,
            c.hier.stlb_misses,
            c.hier.walks_completed,
            c.hier.walk_cycles_sum,
            c.hier.walk_mem_accesses,
            c.hier.pwc_levels_skipped,
        ));
    }
    s
}

#[test]
fn fast_forward_is_cycle_exact_with_vm() {
    use hermes_repro::hermes_vm::{TlbConfig, VmConfig};
    let smoke = suite::smoke_suite();
    let vm = VmConfig::baseline().with_dtlb(TlbConfig::new(16, 4, 0));
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("vm", SystemConfig::baseline_1c().with_vm(vm.clone())),
        (
            "vm+hermes",
            SystemConfig::baseline_1c()
                .with_vm(vm.clone().with_huge_page_pm(500))
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ];
    for (name, cfg) in configs {
        for spec in [&smoke[0], &smoke[1]] {
            let off = run_one(cfg.clone().with_fast_forward(false), spec, 3_000, 8_000);
            let on = run_one(cfg.clone().with_fast_forward(true), spec, 3_000, 8_000);
            assert_eq!(
                vm_digest(&off),
                vm_digest(&on),
                "fast-forward changed vm-enabled results for {name}/{}",
                spec.name
            );
        }
    }
}

#[test]
fn vm_multicore_shared_stlb_is_fast_forward_exact() {
    use hermes_repro::hermes_vm::{TlbConfig, VmConfig};
    let smoke = suite::smoke_suite();
    let cfg = |ff| SystemConfig {
        cores: 2,
        ..SystemConfig::baseline_1c()
            .with_vm(
                VmConfig::baseline()
                    .with_dtlb(TlbConfig::new(16, 4, 0))
                    .with_shared_stlb(true),
            )
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
            .with_fast_forward(ff)
    };
    let off = System::new(cfg(false), &smoke[0..2]).run(2_000, 6_000);
    let on = System::new(cfg(true), &smoke[0..2]).run(2_000, 6_000);
    assert_eq!(vm_digest(&off), vm_digest(&on));
    // The shared walker path actually ran on both cores.
    for c in &off.cores {
        assert!(
            c.hier.dtlb_accesses > 0,
            "{} never consulted the dTLB",
            c.workload
        );
    }
}

#[test]
fn fast_forward_is_cycle_exact_multicore() {
    let smoke = suite::smoke_suite();
    let cfg = |ff| SystemConfig {
        cores: 2,
        ..SystemConfig::baseline_1c()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
            .with_fast_forward(ff)
    };
    let off = System::new(cfg(false), &smoke[0..2]).run(2_000, 6_000);
    let on = System::new(cfg(true), &smoke[0..2]).run(2_000, 6_000);
    assert_eq!(digest(&off), digest(&on));
}

#[test]
fn deeper_hierarchies_run_end_to_end() {
    // 2- and 4-level topologies complete the window, classify off-chip
    // loads sanely, and report the right on-chip latency to Hermes.
    let smoke = suite::smoke_suite();
    for (cfg, levels, latency) in [(two_level(), 2, 40), (four_level(), 4, 70)] {
        assert_eq!(cfg.level_configs().len(), levels);
        assert_eq!(cfg.hierarchy_latency(), latency);
        let r = run_one(cfg, &smoke[0], 2_000, 8_000);
        assert_eq!(r.cores[0].instructions, 8_000);
        assert!(
            r.cores[0].core.served_dram > 0,
            "{levels}-level chase must go off-chip"
        );
        assert!(r.dram.reads_demand > 0);
    }
}
