//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the rand 0.8 API it actually uses: `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` over half-open ranges, and
//! `rngs::SmallRng`. The generator is xoshiro256++ seeded via splitmix64 —
//! the same construction rand's own `SmallRng` uses on 64-bit targets — so
//! streams are deterministic, well mixed, and cheap.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG ("Standard" distribution
/// in real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Top bit, as in real rand.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased sampling from `[0, span)` by rejection (Lemire-style threshold
/// is overkill for a stub; plain rejection keeps it obviously correct).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a cryptographic stream.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = r.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
