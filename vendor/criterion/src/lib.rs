//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!` (the `name = / config = / targets =` form),
//! `Criterion::{default, sample_size, measurement_time, warm_up_time,
//! bench_function, benchmark_group}`, benchmark groups with throughput and
//! `bench_with_input`, `BenchmarkId::from_parameter`, and `black_box`.
//!
//! Measurement model: per sample, run the closure in a batch sized so a
//! batch takes roughly `measurement_time / sample_size`, and report the
//! median ns/iter across samples (plus throughput if configured). No
//! statistics beyond that — this is a harness, not an analysis suite.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; one per `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time, self.sample_size);
        f(&mut b);
        b.report(id, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Throughput annotation attached to a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            parameter: parameter.to_string(),
        }
    }

    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            parameter: format!("{function_name}/{parameter}"),
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.criterion.sample_size,
        );
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.parameter), self.throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.criterion.sample_size,
        );
        f(&mut b);
        b.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// Hands the routine under test to the timer.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median ns per iteration, filled in by `iter`.
    median_ns: f64,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, sample_size: usize) -> Self {
        Self {
            warm_up,
            measurement,
            sample_size,
            median_ns: f64::NAN,
        }
    }

    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, u64::MAX);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.median_ns = samples_ns[samples_ns.len() / 2];
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.median_ns.is_nan() {
            println!("{id:<48} (no measurement: Bencher::iter never called)");
            return;
        }
        let mut line = format!("{id:<48} {:>12.1} ns/iter", self.median_ns);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (self.median_ns * 1e-9);
                line.push_str(&format!("   {per_sec:>14.0} elem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (self.median_ns * 1e-9);
                line.push_str(&format!("   {:>14.1} MiB/s", per_sec / (1024.0 * 1024.0)));
            }
            None => {}
        }
        println!("{line}");
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs bench targets with `--test`; a
            // full measurement there would be wasteful, so bail early.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
