//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the proptest 1.x API its property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header),
//! `prop_assert!` / `prop_assert_eq!`, `any::<T>()`, integer-range
//! strategies, tuple strategies, and `prop::collection::vec`.
//!
//! Semantics: each `#[test]` runs `cases` iterations with a deterministic
//! per-case seed (`splitmix(case)`), so failures are reproducible run to
//! run. There is no shrinking — a failing case panics with the assertion
//! message and the case index baked into the panic location's output.

#![forbid(unsafe_code)]

use core::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // Mix the test name in so sibling tests don't see identical streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking: `sample` draws one concrete value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical "anything goes" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen()
    }
}

pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Collection sizes: an exact count or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Mirrors `proptest::prop`: strategy combinators namespaced by shape.
pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, v in prop::collection::vec(0u32..5, 1..8)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_exact_vec(pair in (0u64..4, 0u32..4), flags in prop::collection::vec(any::<bool>(), 16)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert_eq!(flags.len(), 16);
        }
    }

    #[test]
    fn per_case_streams_are_deterministic() {
        let draw = |case| {
            let mut rng = crate::TestRng::for_case("t", case);
            (0u64..100).sample(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
        // Not all cases may differ, but the first few should not all collide.
        assert!(
            (0..8)
                .map(draw)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }
}
