//! Versioned, concurrency-safe on-disk result cache.
//!
//! Layout: `<root>/v<CACHE_SCHEMA_VERSION>/<key>.kv`, one file per
//! `(configuration, trace, window)` point in the [`RunLite`] `key=value`
//! format. The schema version is part of the path, so results cached by
//! an older simulator or record layout are invisible (a miss) rather than
//! silently reused — bump [`CACHE_SCHEMA_VERSION`] whenever a change
//! alters simulation results or the record format.
//!
//! Concurrency: multiple threads *and* multiple processes (e.g. `run_all`
//! children) may share one cache directory. A sidecar `<key>.lock` file
//! created with `O_EXCL` serialises computation per key: the winner
//! simulates and publishes the entry with a write-to-temp + atomic-rename,
//! losers poll until the entry appears and then read it, so no point is
//! ever simulated twice and readers never observe a half-written file.
//! Locks abandoned by a crashed process are broken after
//! [`LOCK_STALE_SECS`].

use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::record::RunLite;
use crate::Provenance;

/// Version tag baked into every cache path.
///
/// History: v1 was the unversioned `target/expcache/*.kv` layout owned by
/// `hermes-bench`; v2 moved the cache into `hermes-exec` and added the
/// version directory and lock protocol; v3 marks the generic N-level
/// hierarchy engine (default-topology results are bit-identical, but
/// `SystemConfig` grew fields, changing every config fingerprint — the
/// bump keeps the orphaned v2 entries out of the way); v4 adds the
/// address-translation subsystem (`SystemConfig::vm` enters every
/// fingerprint and `RunLite` grew the dTLB/STLB/walk fields); v5 adds
/// MESI coherence (`SystemConfig::coherence` enters every fingerprint,
/// `RunLite` grew the coherence-traffic fields, and the writeback-path
/// TTP-training fix legitimately moved TTP-predictor results); v6 adds
/// coherence-aware prediction (`HermesConfig` grew the `coh_features`
/// and `filter` knobs, entering every fingerprint, and `RunLite` grew
/// the speculative-read and confusion-matrix fields); v7 adds the
/// observability layer (`SystemConfig` grew the `probe` field, entering
/// every fingerprint, and `RunLite` grew the DRAM queue-occupancy /
/// queue-delay and latency-quantile fields); v8 adds the out-of-order
/// core model (`CoreConfig` grew the `model` field, entering every
/// fingerprint, and `RunLite` grew the ROB-occupancy / RS-LSQ-stall /
/// forwarding / flush fields).
pub const CACHE_SCHEMA_VERSION: u32 = 9;

/// How long a lock file may sit untouched before a waiter assumes its
/// owner died and breaks it. Generous: a legitimate `--full` eight-core
/// point takes well under this.
const LOCK_STALE_SECS: u64 = 300;

/// Poll interval while waiting for another worker's result.
const POLL: Duration = Duration::from_millis(20);

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// On-disk cache of [`RunLite`] records under a versioned root.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
    verbose: bool,
}

impl ResultCache {
    /// Opens (and creates) a cache rooted at `root`; entries live under
    /// `root/v<CACHE_SCHEMA_VERSION>/`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        let cache = Self {
            root: root.into(),
            verbose: true,
        };
        let _ = fs::create_dir_all(cache.dir());
        cache
    }

    /// Suppresses lock-wait/lock-break diagnostics on stderr.
    pub fn quiet(mut self) -> Self {
        self.verbose = false;
        self
    }

    /// The conventional repository location, `target/expcache`.
    pub fn default_location() -> Self {
        Self::new("target/expcache")
    }

    /// The versioned directory actually holding entries.
    pub fn dir(&self) -> PathBuf {
        self.root.join(format!("v{CACHE_SCHEMA_VERSION}"))
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir().join(format!("{key}.kv"))
    }

    fn lock_path(&self, key: &str) -> PathBuf {
        self.dir().join(format!("{key}.lock"))
    }

    /// Reads an entry; any corruption (truncated write, stale format) is
    /// a miss, never an error.
    pub fn lookup(&self, key: &str) -> Option<RunLite> {
        let s = fs::read_to_string(self.entry_path(key)).ok()?;
        RunLite::from_kv(&s)
    }

    /// Publishes an entry atomically (temp file + rename), so concurrent
    /// readers see either the old bytes, the new bytes, or no file.
    pub fn store(&self, key: &str, r: &RunLite) {
        let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir()
            .join(format!("{key}.{}-{n}.tmp", std::process::id()));
        // Clean up the temp file on either failure (a failed write can
        // still leave a partial file behind).
        if fs::write(&tmp, r.to_kv()).is_err() || fs::rename(&tmp, self.entry_path(key)).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Returns the cached record for `key`, computing and publishing it
    /// exactly once across every thread and process sharing this
    /// directory.
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> RunLite,
    ) -> (RunLite, Provenance) {
        if let Some(r) = self.lookup(key) {
            return (r, Provenance::Cache);
        }
        let mut compute = Some(compute);
        let mut waited = false;
        loop {
            match LockGuard::acquire(self.lock_path(key)) {
                Some(guard) => {
                    // Re-probe under the lock: another worker may have
                    // published between our miss and the acquisition.
                    if let Some(r) = self.lookup(key) {
                        drop(guard);
                        let p = if waited {
                            Provenance::Waited
                        } else {
                            Provenance::Cache
                        };
                        return (r, p);
                    }
                    let r = (compute.take().expect("compute consumed once"))();
                    self.store(key, &r);
                    drop(guard);
                    return (r, Provenance::Computed);
                }
                None => {
                    if !waited && self.verbose {
                        eprintln!(
                            "  wait: {key} locked by another worker \
                             (dead-owner locks are broken automatically)"
                        );
                    }
                    waited = true;
                    std::thread::sleep(POLL);
                    if let Some(r) = self.lookup(key) {
                        return (r, Provenance::Waited);
                    }
                    break_stale_lock(&self.lock_path(key), self.verbose);
                }
            }
        }
    }
}

/// The `host:pid-counter` token stamped into lock files. The host part
/// keeps the PID-liveness probe honest on cross-host shared filesystems
/// (a PID only means something on the machine that issued it).
fn lock_token() -> String {
    format!(
        "{}:{}-{}",
        hostname(),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

fn hostname() -> String {
    fs::read_to_string("/proc/sys/kernel/hostname")
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|_| "unknown-host".to_string())
}

/// Removes a lock whose owner appears to have died: it was issued on this
/// host and its recorded PID no longer exists (e.g. a figure binary
/// killed with Ctrl-C, which terminates without unwinding `LockGuard`),
/// or — the fallback covering other hosts and platforms without `/proc` —
/// its mtime is older than [`LOCK_STALE_SECS`]. Best effort: racing
/// removers are harmless because acquisition is an atomic `create_new`.
fn break_stale_lock(path: &Path, verbose: bool) {
    if let Ok(token) = fs::read_to_string(path) {
        let same_host = token
            .split(':')
            .next()
            .is_some_and(|host| host == hostname());
        let pid = token
            .rsplit(':')
            .next()
            .and_then(|rest| rest.split('-').next())
            .and_then(|p| p.parse::<u32>().ok());
        if let (true, Some(pid)) = (same_host, pid) {
            // /proc is Linux-specific; elsewhere the mtime fallback below
            // applies (probing a live pid as "dead" would void the
            // cross-process mutual exclusion).
            if pid != std::process::id()
                && cfg!(target_os = "linux")
                && !Path::new(&format!("/proc/{pid}")).exists()
            {
                if verbose {
                    eprintln!(
                        "  lock: breaking {} (owner pid {pid} is gone)",
                        path.display()
                    );
                }
                let _ = fs::remove_file(path);
                return;
            }
        }
    }
    let Ok(meta) = fs::metadata(path) else {
        return;
    };
    let Ok(modified) = meta.modified() else {
        return;
    };
    if let Ok(age) = modified.elapsed() {
        if age.as_secs() > LOCK_STALE_SECS {
            let _ = fs::remove_file(path);
        }
    }
}

/// RAII sidecar-lock: created with `O_EXCL`, removed on drop (including
/// on panic unwind, so a failed simulation never wedges its key).
///
/// The lock file is stamped with a per-acquisition token; drop only
/// unlinks if the token still matches. Otherwise a waiter that broke a
/// "stale" lock whose owner was merely slow (a point outlasting
/// [`LOCK_STALE_SECS`]) would have *its* fresh lock deleted by the slow
/// owner's drop, re-opening the compute-exactly-once window.
struct LockGuard {
    path: Option<PathBuf>,
    /// `None` when the token could not be written (e.g. disk full): drop
    /// then unlinks unconditionally — a leaked empty lock would otherwise
    /// stall other processes until the mtime timeout, while the window in
    /// which unconditional removal could hit a foreign lock (a waiter
    /// breaking ours as stale mid-compute) needs [`LOCK_STALE_SECS`] to
    /// have already elapsed.
    token: Option<String>,
}

impl LockGuard {
    fn acquire(path: PathBuf) -> Option<Self> {
        let token = lock_token();
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                use std::io::Write;
                let token = f.write_all(token.as_bytes()).is_ok().then_some(token);
                Some(Self {
                    path: Some(path),
                    token,
                })
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => None,
            // Unexpected I/O failure (read-only dir, exotic FS): degrade
            // to lockless operation rather than livelocking — the atomic
            // publish still keeps entries uncorrupted.
            Err(_) => Some(Self {
                path: None,
                token: None,
            }),
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            // Only remove a lock we still own (see type docs).
            let owned = match &self.token {
                Some(t) => fs::read_to_string(&p).is_ok_and(|s| &s == t),
                None => true,
            };
            if owned {
                let _ = fs::remove_file(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hermes-exec-cache-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> RunLite {
        RunLite {
            ipc: 1.5,
            cycles: 100.0,
            ..Default::default()
        }
    }

    #[test]
    fn store_then_lookup() {
        let c = ResultCache::new(scratch("roundtrip"));
        assert!(c.lookup("k").is_none());
        c.store("k", &sample());
        assert_eq!(c.lookup("k"), Some(sample()));
    }

    #[test]
    fn corrupt_entry_is_a_miss_and_gets_recomputed() {
        let c = ResultCache::new(scratch("corrupt"));
        fs::write(c.dir().join("k.kv"), "ipc=garbage\n").unwrap();
        assert!(c.lookup("k").is_none());
        let (r, p) = c.get_or_compute("k", sample);
        assert_eq!(r, sample());
        assert_eq!(p, Provenance::Computed);
        assert_eq!(c.lookup("k"), Some(sample()), "recompute overwrites");
    }

    #[test]
    fn unversioned_legacy_entries_are_invisible() {
        let root = scratch("legacy");
        // A v1-era entry sitting directly under the root (no version dir).
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("k.kv"), sample().to_kv()).unwrap();
        let c = ResultCache::new(&root);
        assert!(
            c.lookup("k").is_none(),
            "pre-versioning entries must be misses"
        );
    }

    #[test]
    fn second_probe_is_a_hit() {
        let c = ResultCache::new(scratch("hit"));
        let (_, p1) = c.get_or_compute("k", sample);
        let (r2, p2) = c.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!(p1, Provenance::Computed);
        assert_eq!(p2, Provenance::Cache);
        assert_eq!(r2, sample());
    }

    #[test]
    #[cfg(target_os = "linux")] // prompt pid-liveness breaking is /proc-based
    fn lock_leaked_by_a_dead_process_is_broken_promptly() {
        let c = ResultCache::new(scratch("dead-owner"));
        // A lock from this host stamped with a PID that cannot exist on
        // Linux (PID_MAX_LIMIT is 2^22), as left behind by a killed run.
        fs::write(c.lock_path("k"), format!("{}:999999999-0", hostname())).unwrap();
        let t0 = std::time::Instant::now();
        let (r, p) = c.get_or_compute("k", sample);
        assert_eq!((r, p), (sample(), Provenance::Computed));
        assert!(
            t0.elapsed().as_secs() < LOCK_STALE_SECS,
            "dead-owner lock must not stall until the mtime timeout"
        );
    }

    #[test]
    fn drop_leaves_a_lock_it_no_longer_owns() {
        let c = ResultCache::new(scratch("foreign-lock"));
        let lock = c.lock_path("k");
        let guard = LockGuard::acquire(lock.clone()).expect("fresh lock");
        // Simulate a waiter breaking this lock as stale and re-acquiring:
        // the file now carries someone else's token.
        fs::write(&lock, "other-owner").unwrap();
        drop(guard);
        assert!(
            lock.exists(),
            "drop must not unlink a lock owned by another acquirer"
        );
    }

    #[test]
    fn panicking_compute_releases_the_lock() {
        let c = ResultCache::new(scratch("panic"));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.get_or_compute("k", || panic!("boom"))
        }));
        assert!(res.is_err());
        // The key is not wedged: a later caller acquires and computes.
        let (r, p) = c.get_or_compute("k", sample);
        assert_eq!((r, p), (sample(), Provenance::Computed));
    }
}
