//! `hermes-exec` — the parallel experiment-execution engine.
//!
//! The paper's evaluation is a large grid of *independent*
//! `(configuration, trace, window)` simulations: 24 figure/table binaries
//! sweeping dozens of workloads each, with heavy overlap (most figures
//! normalise to the same baselines). This crate turns that grid into a
//! job batch and executes it:
//!
//! * **[`Engine::run_batch`]** — takes a batch of [`Job`]s, deduplicates
//!   points that share a cache key, runs the unique ones on a
//!   work-stealing `std::thread` pool (see [`run_indexed`]), and returns
//!   [`Outcome`]s in *input order*, so a parallel run produces
//!   byte-identical tables to `jobs = 1`.
//! * **[`ResultCache`]** — the on-disk result cache (formerly inlined in
//!   `hermes-bench`), now versioned with [`CACHE_SCHEMA_VERSION`] and
//!   made multi-process-safe with sidecar lock files, so `run_all` and
//!   ad-hoc figure invocations can share `target/expcache/` without
//!   corruption or double work.
//! * **[`Manifest`]** — structured JSON run manifests
//!   (`target/experiments/<id>.json`) with per-job wall time, cache
//!   hit/miss provenance, and measured stats.
//!
//! ```no_run
//! use hermes_exec::{Engine, Job};
//! use hermes_sim::SystemConfig;
//! use hermes_trace::suite;
//!
//! let engine = Engine::new(8); // or Engine::from_env()
//! let jobs: Vec<Job> = suite::default_suite()
//!     .into_iter()
//!     .map(|spec| Job::new("pythia", SystemConfig::baseline_1c(), spec, 10_000, 40_000))
//!     .collect();
//! for out in engine.run_batch(&jobs) {
//!     println!("{} {} ipc={}", out.tag, out.workload, out.result.ipc);
//! }
//! ```

use std::time::{Duration, Instant};

use hermes_sim::system::run_job;
use hermes_sim::SystemConfig;
use hermes_trace::WorkloadSpec;

mod cache;
mod manifest;
mod pool;
mod record;

pub use cache::{ResultCache, CACHE_SCHEMA_VERSION};
pub use manifest::{Manifest, ManifestEntry};
pub use pool::run_indexed;
pub use record::RunLite;

/// One simulation point: a configuration tag, the configuration itself,
/// a workload, and the instruction window.
#[derive(Debug, Clone)]
pub struct Job {
    /// Unique configuration tag (becomes part of the cache key).
    pub tag: String,
    /// Full system configuration.
    pub cfg: SystemConfig,
    /// Workload to run.
    pub spec: WorkloadSpec,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub instr: u64,
}

impl Job {
    /// Creates a job.
    pub fn new(
        tag: impl Into<String>,
        cfg: SystemConfig,
        spec: WorkloadSpec,
        warmup: u64,
        instr: u64,
    ) -> Self {
        Self {
            tag: tag.into(),
            cfg,
            spec,
            warmup,
            instr,
        }
    }

    /// Cache key: tag, trace, window, core count, and a fingerprint of
    /// the full configuration and workload contents.
    ///
    /// The fingerprint means a config edit behind an unchanged tag, a
    /// generator/seed edit behind an unchanged trace name, or two
    /// same-tag jobs with different configs in one batch can never serve
    /// stale or cross-wired results — the key changes with the actual
    /// inputs, not just the naming convention.
    pub fn key(&self) -> String {
        format!(
            "{}__{}__{}_{}_{}c_{:08x}",
            self.tag.replace(['/', ' '], "_"),
            self.spec.name,
            self.warmup,
            self.instr,
            self.cfg.cores,
            fingerprint(&format!("{:?}{:?}", self.cfg, self.spec))
        )
    }
}

/// FNV-1a 64 over the inputs' `Debug` rendering — stable for equal
/// values, different for any changed field.
fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a job's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Simulated by this engine, this batch.
    Computed,
    /// Served from the on-disk cache.
    Cache,
    /// Another thread/process was computing it; we waited and read it.
    Waited,
    /// Duplicate of an earlier job in the same batch; shares its result.
    Deduped,
}

impl Provenance {
    /// Lowercase label used in manifests.
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Computed => "computed",
            Provenance::Cache => "cache",
            Provenance::Waited => "waited",
            Provenance::Deduped => "deduped",
        }
    }
}

/// Result of one submitted job.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Cache key of the point.
    pub key: String,
    /// Configuration tag (as submitted).
    pub tag: String,
    /// Workload name.
    pub workload: String,
    /// The measurements.
    pub result: RunLite,
    /// How the result was obtained.
    pub provenance: Provenance,
    /// Wall time spent on this job (zero for within-batch duplicates).
    pub wall: Duration,
}

/// The execution engine: a worker count plus a result cache.
#[derive(Debug, Clone)]
pub struct Engine {
    jobs: usize,
    cache: ResultCache,
    verbose: bool,
}

impl Engine {
    /// An engine with `jobs` workers over the default cache location
    /// (`target/expcache`).
    pub fn new(jobs: usize) -> Self {
        Self::with_cache(jobs, ResultCache::default_location())
    }

    /// An engine with an explicit cache (tests, alternate roots).
    pub fn with_cache(jobs: usize, cache: ResultCache) -> Self {
        Self {
            jobs: jobs.max(1),
            cache,
            verbose: true,
        }
    }

    /// Worker count from `HERMES_JOBS`, defaulting to all host cores.
    pub fn from_env() -> Self {
        Self::new(jobs_from_env(None))
    }

    /// Suppresses per-simulation progress lines and lock diagnostics on
    /// stderr.
    pub fn quiet(mut self) -> Self {
        self.verbose = false;
        self.cache = self.cache.quiet();
        self
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cache this engine reads and writes.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Executes a batch and returns outcomes in input order.
    ///
    /// Jobs whose [`Job::key`] repeats within the batch are simulated at
    /// most once; later duplicates are reported as
    /// [`Provenance::Deduped`] and share the first occurrence's result.
    /// With `jobs = 1` the unique jobs run inline in submission order —
    /// exactly the historical serial behaviour.
    pub fn run_batch(&self, batch: &[Job]) -> Vec<Outcome> {
        let keys: Vec<String> = batch.iter().map(Job::key).collect();

        // Dedup by key, preserving first-occurrence order.
        let mut first_of: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        let mut unique: Vec<usize> = Vec::new(); // unique idx -> batch idx
        let mut slot: Vec<usize> = Vec::with_capacity(batch.len()); // batch idx -> unique idx
        for (i, k) in keys.iter().enumerate() {
            match first_of.entry(k.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => slot.push(*e.get()),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(unique.len());
                    slot.push(unique.len());
                    unique.push(i);
                }
            }
        }

        let computed: Vec<(RunLite, Provenance, Duration)> =
            pool::run_indexed(self.jobs, unique.len(), |u| {
                let j = &batch[unique[u]];
                let key = &keys[unique[u]];
                let t0 = Instant::now();
                let (result, provenance) = self.cache.get_or_compute(key, || {
                    if self.verbose {
                        eprintln!("  sim: {} x {} ...", j.tag, j.spec.name);
                    }
                    RunLite::from_stats(&run_job(j.cfg.clone(), j.spec.clone(), j.warmup, j.instr))
                });
                (result, provenance, t0.elapsed())
            });

        (0..batch.len())
            .map(|i| {
                let u = slot[i];
                let (r, p, w) = &computed[u];
                let duplicate = unique[u] != i;
                Outcome {
                    key: keys[i].clone(),
                    tag: batch[i].tag.clone(),
                    workload: batch[i].spec.name.clone(),
                    result: r.clone(),
                    provenance: if duplicate { Provenance::Deduped } else { *p },
                    wall: if duplicate { Duration::ZERO } else { *w },
                }
            })
            .collect()
    }
}

/// Resolves the worker count: an explicit request (e.g. `--jobs N`) wins,
/// then `HERMES_JOBS`, then all host cores. Zero / unparsable values fall
/// through to the next source.
pub fn jobs_from_env(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n >= 1)
        .or_else(|| {
            std::env::var("HERMES_JOBS")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .filter(|&n: &usize| n >= 1)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_key_sanitises_tag_and_fingerprints_config() {
        use hermes_trace::suite;
        let spec = suite::smoke_suite().into_iter().next().unwrap();
        let name = spec.name.clone();
        let j = Job::new(
            "tag with/slash",
            SystemConfig::baseline_1c(),
            spec.clone(),
            10,
            20,
        );
        assert!(j
            .key()
            .starts_with(&format!("tag_with_slash__{name}__10_20_1c_")));
        // Same tag, different config => different key: a config edit
        // behind a reused tag is a cache miss, never a stale hit.
        let j2 = Job::new(
            "tag with/slash",
            SystemConfig::baseline_1c().with_rob(1024),
            spec.clone(),
            10,
            20,
        );
        assert_ne!(j.key(), j2.key());
        // Same trace name, different generator seed => different key.
        let mut respec = spec;
        respec.seed = respec.seed.wrapping_add(1);
        let j3 = Job::new(
            "tag with/slash",
            SystemConfig::baseline_1c(),
            respec,
            10,
            20,
        );
        assert_ne!(j.key(), j3.key());
    }

    #[test]
    fn jobs_from_env_prefers_explicit() {
        assert_eq!(jobs_from_env(Some(3)), 3);
        assert!(jobs_from_env(Some(0)) >= 1, "zero falls through to default");
        assert!(jobs_from_env(None) >= 1);
    }
}
