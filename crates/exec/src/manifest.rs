//! Machine-readable run manifests.
//!
//! One JSON document per experiment under `target/experiments/<id>.json`,
//! recording what the engine did: per-point wall time, how each point was
//! served (simulated, disk cache, waited on another worker, deduplicated
//! within the batch), and the measured statistics. These files seed the
//! `BENCH_*.json`-style perf trajectory: CI prints them, so evaluation
//! throughput is visible per push.
//!
//! The JSON is emitted by hand (no serde in the vendored-only workspace):
//! the value space is just strings, finite doubles, bools, and integers.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::cache::CACHE_SCHEMA_VERSION;
use crate::record::{RunLite, FIELDS};
use crate::{Outcome, Provenance};

/// One cached/simulated point in a manifest.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Cache key of the point.
    pub key: String,
    /// Configuration tag.
    pub tag: String,
    /// Workload name.
    pub workload: String,
    /// How the result was obtained.
    pub provenance: Provenance,
    /// Wall time spent obtaining it (≈0 for cache hits).
    pub wall: Duration,
    /// The measurements.
    pub stats: RunLite,
}

/// A whole experiment's execution record.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Experiment id (`fig09`, `table3`, …).
    pub experiment: String,
    /// Worker threads the engine ran with.
    pub jobs: usize,
    /// Process wall time when the manifest was written.
    pub wall: Duration,
    /// One entry per distinct cache key, first occurrence wins (a
    /// prewarmed point is recorded with its true compute cost, not the
    /// instant re-read that follows).
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Builds a manifest from engine outcomes, deduplicating by key.
    pub fn from_outcomes(
        experiment: impl Into<String>,
        jobs: usize,
        wall: Duration,
        outcomes: &[Outcome],
    ) -> Self {
        let mut seen = std::collections::HashSet::new();
        let entries = outcomes
            .iter()
            .filter(|o| seen.insert(o.key.clone()))
            .map(|o| ManifestEntry {
                key: o.key.clone(),
                tag: o.tag.clone(),
                workload: o.workload.clone(),
                provenance: o.provenance,
                wall: o.wall,
                stats: o.result.clone(),
            })
            .collect();
        Self {
            experiment: experiment.into(),
            jobs,
            wall,
            entries,
        }
    }

    /// Number of entries with the given provenance.
    pub fn count(&self, p: Provenance) -> usize {
        self.entries.iter().filter(|e| e.provenance == p).count()
    }

    /// Renders the JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.entries.len() * 512);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"experiment\": {},\n",
            json_str(&self.experiment)
        ));
        s.push_str(&format!("  \"cache_schema\": {CACHE_SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"wall_ms\": {},\n", json_num(ms(self.wall))));
        s.push_str(&format!("  \"points\": {},\n", self.entries.len()));
        s.push_str(&format!(
            "  \"simulated\": {},\n",
            self.count(Provenance::Computed)
        ));
        s.push_str(&format!(
            "  \"cached\": {},\n",
            self.count(Provenance::Cache)
        ));
        s.push_str(&format!(
            "  \"waited\": {},\n",
            self.count(Provenance::Waited)
        ));
        s.push_str(&format!(
            "  \"deduped\": {},\n",
            self.count(Provenance::Deduped)
        ));
        s.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"key\": {}, ", json_str(&e.key)));
            s.push_str(&format!("\"tag\": {}, ", json_str(&e.tag)));
            s.push_str(&format!("\"workload\": {}, ", json_str(&e.workload)));
            s.push_str(&format!(
                "\"provenance\": {}, ",
                json_str(e.provenance.label())
            ));
            s.push_str(&format!("\"wall_ms\": {}, ", json_num(ms(e.wall))));
            s.push_str("\"stats\": {");
            for (j, field) in FIELDS.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{field}\": {}", json_num(e.stats.get(field))));
            }
            s.push_str("}}");
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Writes `<dir>/<experiment>.json`; returns the path.
    pub fn write(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// One-line human summary for progress logs.
    pub fn summary_line(&self) -> String {
        format!(
            "{} points: {} simulated, {} cached, {} waited, {} deduped; {:.1}s wall, jobs={}",
            self.entries.len(),
            self.count(Provenance::Computed),
            self.count(Provenance::Cache),
            self.count(Provenance::Waited),
            self.count(Provenance::Deduped),
            self.wall.as_secs_f64(),
            self.jobs,
        )
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// JSON number: finite doubles as-is, non-finite as null (JSON has no
/// NaN/Inf).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

/// JSON string with the mandatory escapes. Keys/tags are ASCII in
/// practice, but escape defensively.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(key: &str, p: Provenance) -> Outcome {
        Outcome {
            key: key.into(),
            tag: "tag".into(),
            workload: "wl".into(),
            provenance: p,
            wall: Duration::from_millis(5),
            result: RunLite {
                ipc: 1.0,
                cycles: 10.0,
                ..Default::default()
            },
        }
    }

    #[test]
    fn manifest_dedups_by_key_first_wins() {
        let outs = vec![
            outcome("a", Provenance::Computed),
            outcome("a", Provenance::Cache),
            outcome("b", Provenance::Cache),
        ];
        let m = Manifest::from_outcomes("figX", 2, Duration::from_secs(1), &outs);
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.count(Provenance::Computed), 1);
        assert_eq!(m.count(Provenance::Cache), 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let outs = vec![outcome("a\"quote", Provenance::Computed)];
        let m = Manifest::from_outcomes("figX", 4, Duration::from_millis(1500), &outs);
        let j = m.to_json();
        assert!(j.contains("\"experiment\": \"figX\""));
        assert!(j.contains("\\\"quote\""));
        assert!(j.contains("\"jobs\": 4"));
        assert!(j.contains("\"ipc\": 1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn non_finite_stats_become_null() {
        let mut o = outcome("a", Provenance::Computed);
        o.result.accuracy = f64::NAN;
        let m = Manifest::from_outcomes("figX", 1, Duration::ZERO, &[o]);
        assert!(m.to_json().contains("\"accuracy\": null"));
    }
}
