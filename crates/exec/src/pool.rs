//! A minimal work-stealing thread pool over an indexed job set.
//!
//! Built entirely on `std` (`thread::scope`, `Mutex<VecDeque>`): the
//! workspace vendors its few dependencies, so no crossbeam/rayon. Jobs
//! are dealt round-robin onto per-worker deques; a worker pops from the
//! front of its own deque and, when empty, steals from the *back* of a
//! victim's — the classic split that keeps owner and thief off the same
//! end. The job set is fixed up front (no job spawns jobs), so an empty
//! sweep over every deque is a correct termination condition.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `f(0..n)` across `workers` threads and returns the results in
/// index order, regardless of execution order. With `workers <= 1` the
/// calls happen inline on the caller's thread in index order — the
/// deterministic serial baseline.
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = workers.min(n);
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..n {
        queues[i % workers]
            .lock()
            .expect("queue poisoned")
            .push_back(i);
    }
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let f = &f;
            s.spawn(move || {
                while let Some(i) = next_job(queues, w) {
                    let out = f(i);
                    *results[i].lock().expect("result poisoned") = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result poisoned")
                .expect("every index executed")
        })
        .collect()
}

/// Pops from worker `w`'s own deque, else steals from the other deques.
/// `None` means every deque is empty — since the job set is fixed, that
/// is global completion.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue poisoned").pop_front() {
        return Some(i);
    }
    let k = queues.len();
    for off in 1..k {
        let victim = (w + off) % k;
        if let Some(i) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_indexed(4, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(0, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(16, 1, |i| i), vec![0]);
    }
}
