//! The flat per-run measurement record that flows through the engine and
//! the on-disk cache.
//!
//! `RunLite` is the unit of exchange between the simulator and every
//! figure/table binary: a fixed set of scalar measurements extracted from
//! [`RunStats`], serialisable to a line-oriented `key=value` format that
//! is stable, human-inspectable, and cheap to parse. It used to live in
//! `hermes-bench`; it moved here together with the cache so the engine
//! can own the full job lifecycle.

use hermes_sim::RunStats;

/// Flat, cacheable per-run measurement record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunLite {
    /// Instructions per cycle (core 0 for single-core runs; arithmetic
    /// mean across cores for multi-core runs).
    pub ipc: f64,
    /// LLC demand misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Fraction of loads served off-chip.
    pub offchip_rate: f64,
    /// Off-chip predictor accuracy (Eq. 3).
    pub accuracy: f64,
    /// Off-chip predictor coverage (Eq. 4).
    pub coverage: f64,
    /// Total main-memory requests (reads + writes).
    pub mm_requests: f64,
    /// ROB stall cycles attributed to off-chip loads.
    pub stall_offchip: f64,
    /// Off-chip loads that blocked retirement.
    pub blocking: f64,
    /// Off-chip loads that never blocked retirement.
    pub nonblocking: f64,
    /// Average stall cycles per off-chip load.
    pub stalls_per_offchip: f64,
    /// Average on-chip (hierarchy) portion of an off-chip load's latency.
    pub onchip_portion: f64,
    /// Average total off-chip load latency.
    pub offchip_latency: f64,
    /// Dynamic energy total (power model).
    pub energy: f64,
    /// Dynamic energy in the DRAM/bus component.
    pub energy_bus: f64,
    /// Dynamic energy in L1/L2/LLC.
    pub energy_caches: f64,
    /// Dynamic energy in predictor + prefetcher metadata.
    pub energy_meta: f64,
    /// dTLB misses per kilo-instruction (zero with `vm: None`).
    pub dtlb_mpki: f64,
    /// STLB misses per kilo-instruction (each starts or joins a walk).
    pub stlb_mpki: f64,
    /// Average page-walk latency in cycles.
    pub walk_cycles: f64,
    /// Coherence write-permission upgrades per core (mean; zero with
    /// `coherence: None`).
    pub coh_upgrades: f64,
    /// Remote copies invalidated by this core's stores (mean per core).
    pub coh_invalidations: f64,
    /// Dirty interventions served to this core (mean per core).
    pub coh_dirty_forwards: f64,
    /// Hermes speculative DRAM reads that paid off (mean per core; zero
    /// with Hermes off or passive).
    pub spec_reads_useful: f64,
    /// Hermes speculative DRAM reads wasted on loads that resolved
    /// on-chip (mean per core).
    pub spec_reads_wasted: f64,
    /// Predictor confusion matrix, aggregated across cores: predicted
    /// off-chip and went off-chip.
    pub pred_tp: f64,
    /// Predicted off-chip, served on-chip.
    pub pred_fp: f64,
    /// Not predicted, went off-chip.
    pub pred_fn: f64,
    /// Not predicted, served on-chip.
    pub pred_tn: f64,
    /// Mean DRAM read-queue occupancy observed at demand-read enqueue
    /// (always measured, probe on or off — it replaces the old guess
    /// from `wq_occupancy_sum`-style averages with a real histogram).
    pub rq_occ_mean: f64,
    /// 95th-percentile DRAM read-queue occupancy at enqueue.
    pub rq_occ_p95: f64,
    /// 95th-percentile DRAM write-queue occupancy at enqueue.
    pub wq_occ_p95: f64,
    /// 95th-percentile DRAM queue delay in cycles (enqueue to service
    /// start; log2-bucketed, reported as the bucket upper bound).
    pub dram_qdelay_p95: f64,
    /// Median off-chip load latency (probe runs only; 0 with probe off).
    pub offchip_lat_p50: f64,
    /// 95th-percentile off-chip load latency (probe runs only).
    pub offchip_lat_p95: f64,
    /// 99th-percentile off-chip load latency (probe runs only).
    pub offchip_lat_p99: f64,
    /// Median LLC-hit load latency (probe runs only).
    pub llc_hit_lat_p50: f64,
    /// 95th-percentile page-walk latency (probe runs with vm on only).
    pub walk_lat_p95: f64,
    /// Mean ROB occupancy over the measurement window (mean across
    /// cores; zero under the legacy dependency-scheduled model, which
    /// does not sample occupancy).
    pub rob_occ_mean: f64,
    /// Cycles dispatch stalled on a full reservation-station pool (mean
    /// per core; out-of-order model only).
    pub rs_full_stalls: f64,
    /// Cycles dispatch stalled on a full load/store queue (mean per
    /// core; out-of-order model only).
    pub lsq_full_stalls: f64,
    /// Loads served by store-to-load forwarding (mean per core;
    /// out-of-order model only).
    pub forwarded_loads: f64,
    /// Pipeline flushes from branch mispredictions (mean per core;
    /// out-of-order model only).
    pub flushes: f64,
    /// Measured cycles.
    pub cycles: f64,
}

/// Field order used by both the `key=value` cache format and the JSON
/// manifest, so the two never drift apart.
pub(crate) const FIELDS: [&str; 43] = [
    "ipc",
    "llc_mpki",
    "offchip_rate",
    "accuracy",
    "coverage",
    "mm_requests",
    "stall_offchip",
    "blocking",
    "nonblocking",
    "stalls_per_offchip",
    "onchip_portion",
    "offchip_latency",
    "energy",
    "energy_bus",
    "energy_caches",
    "energy_meta",
    "dtlb_mpki",
    "stlb_mpki",
    "walk_cycles",
    "coh_upgrades",
    "coh_invalidations",
    "coh_dirty_forwards",
    "spec_reads_useful",
    "spec_reads_wasted",
    "pred_tp",
    "pred_fp",
    "pred_fn",
    "pred_tn",
    "rq_occ_mean",
    "rq_occ_p95",
    "wq_occ_p95",
    "dram_qdelay_p95",
    "offchip_lat_p50",
    "offchip_lat_p95",
    "offchip_lat_p99",
    "llc_hit_lat_p50",
    "walk_lat_p95",
    "rob_occ_mean",
    "rs_full_stalls",
    "lsq_full_stalls",
    "forwarded_loads",
    "flushes",
    "cycles",
];

impl RunLite {
    /// Extracts the record from full run statistics.
    pub fn from_stats(r: &RunStats) -> Self {
        use hermes_probe::LatClass;
        let n = r.cores.len() as f64;
        let mean = |f: &dyn Fn(&hermes_sim::stats::CoreRunStats) -> f64| {
            r.cores.iter().map(f).sum::<f64>() / n
        };
        let p = r.pred_total();
        // Latency quantiles exist only on probed runs; a probe-off run
        // records zeros (distinguishable from real data by `cycles > 0`
        // and the zero `offchip_lat_p50` together).
        let probe_q =
            |f: &dyn Fn(&hermes_probe::ProbeReport) -> f64| r.probe.as_ref().map(f).unwrap_or(0.0);
        Self {
            ipc: mean(&|c| c.ipc()),
            llc_mpki: mean(&|c| c.llc_mpki()),
            offchip_rate: mean(&|c| c.offchip_rate()),
            accuracy: p.accuracy(),
            coverage: p.coverage(),
            mm_requests: r.main_memory_requests() as f64,
            stall_offchip: mean(&|c| c.core.stall_cycles_offchip as f64),
            blocking: mean(&|c| c.core.offchip_blocking as f64),
            nonblocking: mean(&|c| c.core.offchip_nonblocking as f64),
            stalls_per_offchip: mean(&|c| c.core.stalls_per_offchip_load()),
            onchip_portion: mean(&|c| c.avg_onchip_portion()),
            offchip_latency: mean(&|c| c.avg_offchip_latency()),
            energy: r.power.total(),
            energy_bus: r.power.bus,
            energy_caches: r.power.l1 + r.power.l2 + r.power.llc,
            energy_meta: r.power.predictor + r.power.prefetcher,
            dtlb_mpki: mean(&|c| c.dtlb_mpki()),
            stlb_mpki: mean(&|c| c.stlb_mpki()),
            walk_cycles: mean(&|c| c.avg_walk_cycles()),
            coh_upgrades: mean(&|c| c.hier.coh_upgrades as f64),
            coh_invalidations: mean(&|c| c.hier.coh_invalidations as f64),
            coh_dirty_forwards: mean(&|c| c.hier.coh_dirty_forwards as f64),
            spec_reads_useful: mean(&|c| c.hier.spec_reads_useful as f64),
            spec_reads_wasted: mean(&|c| c.hier.spec_reads_wasted as f64),
            pred_tp: p.tp as f64,
            pred_fp: p.fp as f64,
            pred_fn: p.fn_ as f64,
            pred_tn: p.tn as f64,
            rq_occ_mean: r.dram.rq_occupancy_hist.mean_linear(),
            rq_occ_p95: r.dram.rq_occupancy_hist.quantile_linear(0.95),
            wq_occ_p95: r.dram.wq_occupancy_hist.quantile_linear(0.95),
            dram_qdelay_p95: r.dram.queue_delay_hist.quantile_log2(0.95),
            offchip_lat_p50: probe_q(&|pr| pr.lat_hist(LatClass::Offchip).quantile_log2(0.5)),
            offchip_lat_p95: probe_q(&|pr| pr.lat_hist(LatClass::Offchip).quantile_log2(0.95)),
            offchip_lat_p99: probe_q(&|pr| pr.lat_hist(LatClass::Offchip).quantile_log2(0.99)),
            llc_hit_lat_p50: probe_q(&|pr| pr.lat_hist(LatClass::Llc).quantile_log2(0.5)),
            walk_lat_p95: probe_q(&|pr| pr.lat_walk.quantile_log2(0.95)),
            rob_occ_mean: mean(&|c| {
                if c.cycles == 0 {
                    0.0
                } else {
                    c.core.rob_occupancy_sum as f64 / c.cycles as f64
                }
            }),
            rs_full_stalls: mean(&|c| c.core.rs_full_stalls as f64),
            lsq_full_stalls: mean(&|c| c.core.lsq_full_stalls as f64),
            forwarded_loads: mean(&|c| c.core.forwarded_loads as f64),
            flushes: mean(&|c| c.core.flushes as f64),
            cycles: r.total_cycles as f64,
        }
    }

    /// Returns the field value by its name in [`FIELDS`].
    pub(crate) fn get(&self, field: &str) -> f64 {
        match field {
            "ipc" => self.ipc,
            "llc_mpki" => self.llc_mpki,
            "offchip_rate" => self.offchip_rate,
            "accuracy" => self.accuracy,
            "coverage" => self.coverage,
            "mm_requests" => self.mm_requests,
            "stall_offchip" => self.stall_offchip,
            "blocking" => self.blocking,
            "nonblocking" => self.nonblocking,
            "stalls_per_offchip" => self.stalls_per_offchip,
            "onchip_portion" => self.onchip_portion,
            "offchip_latency" => self.offchip_latency,
            "energy" => self.energy,
            "energy_bus" => self.energy_bus,
            "energy_caches" => self.energy_caches,
            "energy_meta" => self.energy_meta,
            "dtlb_mpki" => self.dtlb_mpki,
            "stlb_mpki" => self.stlb_mpki,
            "walk_cycles" => self.walk_cycles,
            "coh_upgrades" => self.coh_upgrades,
            "coh_invalidations" => self.coh_invalidations,
            "coh_dirty_forwards" => self.coh_dirty_forwards,
            "spec_reads_useful" => self.spec_reads_useful,
            "spec_reads_wasted" => self.spec_reads_wasted,
            "pred_tp" => self.pred_tp,
            "pred_fp" => self.pred_fp,
            "pred_fn" => self.pred_fn,
            "pred_tn" => self.pred_tn,
            "rq_occ_mean" => self.rq_occ_mean,
            "rq_occ_p95" => self.rq_occ_p95,
            "wq_occ_p95" => self.wq_occ_p95,
            "dram_qdelay_p95" => self.dram_qdelay_p95,
            "offchip_lat_p50" => self.offchip_lat_p50,
            "offchip_lat_p95" => self.offchip_lat_p95,
            "offchip_lat_p99" => self.offchip_lat_p99,
            "llc_hit_lat_p50" => self.llc_hit_lat_p50,
            "walk_lat_p95" => self.walk_lat_p95,
            "rob_occ_mean" => self.rob_occ_mean,
            "rs_full_stalls" => self.rs_full_stalls,
            "lsq_full_stalls" => self.lsq_full_stalls,
            "forwarded_loads" => self.forwarded_loads,
            "flushes" => self.flushes,
            "cycles" => self.cycles,
            _ => unreachable!("unknown field {field}"),
        }
    }

    fn set(&mut self, field: &str, v: f64) -> bool {
        match field {
            "ipc" => self.ipc = v,
            "llc_mpki" => self.llc_mpki = v,
            "offchip_rate" => self.offchip_rate = v,
            "accuracy" => self.accuracy = v,
            "coverage" => self.coverage = v,
            "mm_requests" => self.mm_requests = v,
            "stall_offchip" => self.stall_offchip = v,
            "blocking" => self.blocking = v,
            "nonblocking" => self.nonblocking = v,
            "stalls_per_offchip" => self.stalls_per_offchip = v,
            "onchip_portion" => self.onchip_portion = v,
            "offchip_latency" => self.offchip_latency = v,
            "energy" => self.energy = v,
            "energy_bus" => self.energy_bus = v,
            "energy_caches" => self.energy_caches = v,
            "energy_meta" => self.energy_meta = v,
            "dtlb_mpki" => self.dtlb_mpki = v,
            "stlb_mpki" => self.stlb_mpki = v,
            "walk_cycles" => self.walk_cycles = v,
            "coh_upgrades" => self.coh_upgrades = v,
            "coh_invalidations" => self.coh_invalidations = v,
            "coh_dirty_forwards" => self.coh_dirty_forwards = v,
            "spec_reads_useful" => self.spec_reads_useful = v,
            "spec_reads_wasted" => self.spec_reads_wasted = v,
            "pred_tp" => self.pred_tp = v,
            "pred_fp" => self.pred_fp = v,
            "pred_fn" => self.pred_fn = v,
            "pred_tn" => self.pred_tn = v,
            "rq_occ_mean" => self.rq_occ_mean = v,
            "rq_occ_p95" => self.rq_occ_p95 = v,
            "wq_occ_p95" => self.wq_occ_p95 = v,
            "dram_qdelay_p95" => self.dram_qdelay_p95 = v,
            "offchip_lat_p50" => self.offchip_lat_p50 = v,
            "offchip_lat_p95" => self.offchip_lat_p95 = v,
            "offchip_lat_p99" => self.offchip_lat_p99 = v,
            "llc_hit_lat_p50" => self.llc_hit_lat_p50 = v,
            "walk_lat_p95" => self.walk_lat_p95 = v,
            "rob_occ_mean" => self.rob_occ_mean = v,
            "rs_full_stalls" => self.rs_full_stalls = v,
            "lsq_full_stalls" => self.lsq_full_stalls = v,
            "forwarded_loads" => self.forwarded_loads = v,
            "flushes" => self.flushes = v,
            "cycles" => self.cycles = v,
            _ => return false,
        }
        true
    }

    /// Serialises to the line-oriented `key=value` cache format.
    pub fn to_kv(&self) -> String {
        let mut s = String::new();
        for field in FIELDS {
            s.push_str(field);
            s.push('=');
            s.push_str(&self.get(field).to_string());
            s.push('\n');
        }
        s
    }

    /// Parses the `key=value` cache format; `None` on any corruption
    /// (unknown key, bad number, truncation, zero-cycle record), so a
    /// damaged cache entry degrades to a miss instead of a panic.
    pub fn from_kv(s: &str) -> Option<Self> {
        let mut r = RunLite::default();
        let mut keys = 0;
        for line in s.lines() {
            let (k, v) = line.split_once('=')?;
            let v: f64 = v.parse().ok()?;
            if !r.set(k, v) {
                return None;
            }
            keys += 1;
        }
        // A truncated or empty file (e.g. from an interrupted writer) must
        // be treated as a miss, not as an all-zero record.
        if keys == FIELDS.len() && r.cycles > 0.0 {
            Some(r)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runlite_kv_round_trip() {
        // Exhaustive struct literal on purpose (no `..Default::default()`):
        // adding a field to RunLite breaks this test at compile time,
        // pointing the maintainer at FIELDS/get/set, which must be
        // extended together (and CACHE_SCHEMA_VERSION bumped).
        let r = RunLite {
            ipc: 1.25,
            llc_mpki: 7.5,
            offchip_rate: 0.25,
            accuracy: 0.77,
            coverage: 0.5,
            mm_requests: 1000.0,
            stall_offchip: 2000.0,
            blocking: 30.0,
            nonblocking: 40.0,
            stalls_per_offchip: 50.0,
            onchip_portion: 60.0,
            offchip_latency: 70.0,
            energy: 80.0,
            energy_bus: 90.0,
            energy_caches: 100.0,
            energy_meta: 110.0,
            dtlb_mpki: 3.5,
            stlb_mpki: 1.25,
            walk_cycles: 42.0,
            coh_upgrades: 7.0,
            coh_invalidations: 11.0,
            coh_dirty_forwards: 2.5,
            spec_reads_useful: 9.0,
            spec_reads_wasted: 4.0,
            pred_tp: 600.0,
            pred_fp: 20.0,
            pred_fn: 30.0,
            pred_tn: 9000.0,
            rq_occ_mean: 3.25,
            rq_occ_p95: 12.0,
            wq_occ_p95: 5.0,
            dram_qdelay_p95: 127.0,
            offchip_lat_p50: 255.0,
            offchip_lat_p95: 511.0,
            offchip_lat_p99: 1023.0,
            llc_hit_lat_p50: 63.0,
            walk_lat_p95: 127.0,
            rob_occ_mean: 210.5,
            rs_full_stalls: 33.0,
            lsq_full_stalls: 17.0,
            forwarded_loads: 450.0,
            flushes: 12.0,
            cycles: 123.0,
        };
        let back = RunLite::from_kv(&r.to_kv()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn kv_rejects_garbage() {
        assert!(RunLite::from_kv("bogus=1\n").is_none());
        assert!(RunLite::from_kv("ipc=notanumber\n").is_none());
        assert!(
            RunLite::from_kv("").is_none(),
            "empty file must be a cache miss"
        );
        assert!(
            RunLite::from_kv("ipc=1.0\n").is_none(),
            "partial file must be a cache miss"
        );
    }

    #[test]
    fn kv_field_list_matches_struct() {
        // Every field named in FIELDS round-trips through get/set.
        let mut r = RunLite::default();
        for (i, f) in FIELDS.iter().enumerate() {
            assert!(r.set(f, (i + 1) as f64));
            assert_eq!(r.get(f), (i + 1) as f64);
        }
    }
}
