//! Engine-level guarantees: parallel determinism, in-batch dedup, and
//! multi-engine cache sharing.
//!
//! Simulations here use tiny instruction windows over the smoke suite so
//! the whole file runs in seconds; every test gets its own scratch cache
//! directory under the system temp dir.

use std::path::PathBuf;

use hermes::{HermesConfig, PredictorKind};
use hermes_exec::{Engine, Job, Provenance, ResultCache};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_trace::suite;

const WARMUP: u64 = 500;
const INSTR: u64 = 3_000;

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hermes-exec-engine-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mixed batch shaped like a real figure: two configurations across the
/// smoke suite, sharing a baseline.
fn mixed_batch() -> Vec<Job> {
    let specs = suite::smoke_suite();
    let nopf = SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None);
    let hermes = nopf
        .clone()
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
    let mut jobs = Vec::new();
    for spec in &specs {
        jobs.push(Job::new("nopf", nopf.clone(), spec.clone(), WARMUP, INSTR));
    }
    for spec in &specs {
        jobs.push(Job::new(
            "hermesO-popet",
            hermes.clone(),
            spec.clone(),
            WARMUP,
            INSTR,
        ));
    }
    jobs
}

/// Renders outcomes the way a figure table would consume them — a stable
/// byte string for exact comparison.
fn render(outs: &[hermes_exec::Outcome]) -> String {
    outs.iter()
        .map(|o| format!("{}|{}\n{}", o.tag, o.workload, o.result.to_kv()))
        .collect()
}

#[test]
fn parallel_run_is_byte_identical_to_serial() {
    let batch = mixed_batch();
    let serial = Engine::with_cache(1, ResultCache::new(scratch("det-serial")))
        .quiet()
        .run_batch(&batch);
    let parallel = Engine::with_cache(4, ResultCache::new(scratch("det-parallel")))
        .quiet()
        .run_batch(&batch);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(
        render(&serial),
        render(&parallel),
        "jobs=4 must produce byte-identical tables/stats to jobs=1"
    );
}

#[test]
fn shared_baseline_simulates_exactly_once() {
    // Two "figures" both normalising to the same baseline point.
    let spec = suite::smoke_suite().into_iter().next().unwrap();
    let nopf = SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None);
    let batch = vec![
        Job::new("nopf", nopf.clone(), spec.clone(), WARMUP, INSTR), // fig A baseline
        Job::new(
            "hermesO-popet",
            nopf.clone()
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
            spec.clone(),
            WARMUP,
            INSTR,
        ),
        Job::new("nopf", nopf, spec, WARMUP, INSTR), // fig B, same baseline
    ];
    let outs = Engine::with_cache(4, ResultCache::new(scratch("dedup")))
        .quiet()
        .run_batch(&batch);
    assert_eq!(outs.len(), 3);
    let computed = outs
        .iter()
        .filter(|o| o.provenance == Provenance::Computed)
        .count();
    assert_eq!(computed, 2, "two unique points, two simulations");
    assert_eq!(outs[2].provenance, Provenance::Deduped);
    assert_eq!(
        outs[0].result, outs[2].result,
        "duplicate shares the first occurrence's result"
    );
}

#[test]
fn two_engines_sharing_a_cache_never_double_run() {
    let root = scratch("shared");
    let batch = mixed_batch();
    let unique: std::collections::HashSet<String> = batch.iter().map(Job::key).collect();

    let (a, b) = std::thread::scope(|s| {
        let batch_a = batch.clone();
        let root_a = root.clone();
        let ha = s.spawn(move || {
            Engine::with_cache(2, ResultCache::new(root_a))
                .quiet()
                .run_batch(&batch_a)
        });
        let batch_b = batch.clone();
        let root_b = root.clone();
        let hb = s.spawn(move || {
            Engine::with_cache(2, ResultCache::new(root_b))
                .quiet()
                .run_batch(&batch_b)
        });
        (ha.join().expect("engine A"), hb.join().expect("engine B"))
    });

    let computed = a
        .iter()
        .chain(b.iter())
        .filter(|o| o.provenance == Provenance::Computed)
        .count();
    assert_eq!(
        computed,
        unique.len(),
        "each unique point is simulated exactly once across both engines"
    );
    assert_eq!(render(&a), render(&b), "both engines see identical results");

    // No corrupt entries: every key parses back from disk.
    let cache = ResultCache::new(root);
    for key in &unique {
        assert!(
            cache.lookup(key).is_some(),
            "cache entry {key} must exist and parse"
        );
    }
}
