//! POPET: the Perceptron-based Off-chip Predictor (§6.1).
//!
//! A hashed-perceptron binary classifier. For each load, every active
//! program feature is hashed into its own weight table; the retrieved
//! weights are summed, and the load is predicted off-chip when the sum
//! reaches the activation threshold τ_act. When the load returns, the
//! weights consulted at prediction time are moved one step toward the true
//! outcome — unless the cumulative weight was already saturated past the
//! training thresholds (T_N, T_P), a guard that keeps weights mobile so
//! POPET adapts quickly to phase changes (§6.1.2).

use hermes_types::{hash_index, SatWeight};

use crate::features::{Feature, FeatureInputs};
use crate::page_buffer::PageBuffer;
use crate::predictor::{LoadContext, OffChipPredictor, Prediction, PredictionMeta};

/// Maximum number of simultaneously-active features (the paper uses 5;
/// ablations may use fewer).
pub const MAX_FEATURES: usize = 8;

/// POPET configuration (Tables 2 and 3).
#[derive(Debug, Clone, PartialEq)]
pub struct PopetConfig {
    /// Active features with their weight-table index widths (bits).
    pub features: Vec<(Feature, u32)>,
    /// Weight width in bits (5: range \[−16, +15\]).
    pub weight_bits: u32,
    /// Activation threshold τ_act (−18): predict off-chip when
    /// Wσ ≥ τ_act.
    pub tau_act: i32,
    /// Negative training threshold T_N (−35).
    pub t_neg: i32,
    /// Positive training threshold T_P (+40).
    pub t_pos: i32,
    /// Page-buffer entries (64).
    pub page_buffer_entries: usize,
}

impl PopetConfig {
    /// The paper's final configuration (Table 2 thresholds, Table 3 table
    /// sizes).
    pub fn paper() -> Self {
        Self {
            features: Feature::SELECTED
                .iter()
                .map(|&f| (f, f.default_table_bits()))
                .collect(),
            weight_bits: 5,
            tau_act: -18,
            t_neg: -35,
            t_pos: 40,
            page_buffer_entries: 64,
        }
    }

    /// A configuration restricted to a feature subset (the Fig. 10/11
    /// ablations), keeping per-feature default table sizes.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or exceeds [`MAX_FEATURES`].
    pub fn with_features(features: &[Feature]) -> Self {
        assert!(!features.is_empty() && features.len() <= MAX_FEATURES);
        let mut cfg = Self::paper();
        cfg.features = features
            .iter()
            .map(|&f| (f, f.default_table_bits()))
            .collect();
        // A subset of features shrinks the attainable |Wσ|; scale the
        // thresholds proportionally so a 1-feature predictor is not
        // permanently below the 5-feature activation threshold.
        let scale = features.len() as f64 / Feature::SELECTED.len() as f64;
        cfg.tau_act = (cfg.tau_act as f64 * scale).round() as i32;
        cfg.t_neg = (cfg.t_neg as f64 * scale).round() as i32;
        cfg.t_pos = (cfg.t_pos as f64 * scale).round() as i32;
        cfg
    }

    /// Returns a copy with a different activation threshold (the Fig. 17
    /// τ_act sweep).
    pub fn with_tau_act(mut self, tau: i32) -> Self {
        self.tau_act = tau;
        self
    }

    /// Appends the coherence-derived feature slots
    /// ([`Feature::COHERENCE`]) to the active set, rescaling the
    /// thresholds for the larger attainable |Wσ| exactly as
    /// [`PopetConfig::with_features`] does for subsets. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if the combined set would exceed [`MAX_FEATURES`].
    pub fn with_coh_features(mut self) -> Self {
        let before = self.features.len();
        for &f in Feature::COHERENCE.iter() {
            if !self.features.iter().any(|&(g, _)| g == f) {
                self.features.push((f, f.default_table_bits()));
            }
        }
        assert!(self.features.len() <= MAX_FEATURES);
        let scale = self.features.len() as f64 / before as f64;
        self.tau_act = (self.tau_act as f64 * scale).round() as i32;
        self.t_neg = (self.t_neg as f64 * scale).round() as i32;
        self.t_pos = (self.t_pos as f64 * scale).round() as i32;
        self
    }

    /// Weight-table storage in bits (the "POPET" rows of Table 3, page
    /// buffer excluded).
    pub fn table_bits(&self) -> usize {
        self.features
            .iter()
            .map(|&(_, bits)| (1usize << bits) * self.weight_bits as usize)
            .sum()
    }
}

impl Default for PopetConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The predictor. See [module docs](self).
///
/// Weight storage is a single flat `i16` vector of [`MAX_FEATURES`]
/// rows padded to a common stride (the largest active table), so the
/// per-load hot path is a gather of `n` weights at `row * stride + idx`
/// addresses from one contiguous allocation — no nested-`Vec` pointer
/// chasing — followed by a reduction and one flag-producing compare.
/// Saturation bounds are uniform across rows (`weight_bits`), so the
/// training update is a branchless `clamp` instead of a per-weight
/// [`SatWeight`] branch pair.
#[derive(Debug, Clone)]
pub struct Popet {
    cfg: PopetConfig,
    /// Row `f` (one per active feature) occupies
    /// `weights[f * stride .. f * stride + (1 << bits_f)]`; the padding
    /// lanes of narrower rows are never indexed (`hash_index` bounds
    /// each index by its row's width).
    weights: Vec<i16>,
    /// Common row stride: the largest active table size.
    stride: usize,
    /// Uniform saturation bounds from `weight_bits`.
    w_min: i16,
    w_max: i16,
    page_buffer: PageBuffer,
    last4_pcs: [u64; 4],
}

impl Popet {
    /// Builds POPET from a configuration.
    pub fn new(cfg: PopetConfig) -> Self {
        assert!(!cfg.features.is_empty() && cfg.features.len() <= MAX_FEATURES);
        // Cold-start bias: an untrained predictor must not fire speculative
        // DRAM reads. With τ_act ≤ 0 (the paper's −18), zero-initialised
        // weights would satisfy Wσ ≥ τ_act on the very first load, so start
        // every weight at the largest value whose sum still sits below the
        // activation threshold. Training moves the consulted weights by
        // ±n per load, so learned behaviour is unaffected after a handful
        // of outcomes.
        let n = cfg.features.len() as i32;
        let cold = if cfg.tau_act <= 0 {
            (cfg.tau_act - 1).div_euclid(n) as i16
        } else {
            0
        };
        let bounds = SatWeight::new_bits(cfg.weight_bits);
        let (w_min, w_max) = (bounds.min(), bounds.max());
        let stride = cfg
            .features
            .iter()
            .map(|&(_, bits)| 1usize << bits)
            .max()
            .unwrap();
        let weights = vec![cold.clamp(w_min, w_max); cfg.features.len() * stride];
        let page_buffer = PageBuffer::new(cfg.page_buffer_entries);
        Self {
            cfg,
            weights,
            stride,
            w_min,
            w_max,
            page_buffer,
            last4_pcs: [0; 4],
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PopetConfig {
        &self.cfg
    }

    fn inputs(&mut self, ctx: &LoadContext) -> FeatureInputs {
        let first_access = self.page_buffer.first_access(ctx.vaddr);
        FeatureInputs {
            pc: ctx.pc,
            line_offset: ctx.vaddr.line_offset_in_page(),
            byte_offset: ctx.vaddr.byte_offset_in_line(),
            first_access,
            last4_pcs: self.last4_pcs,
            coh: ctx.coh,
        }
    }
}

impl Default for Popet {
    /// The paper's configuration.
    fn default() -> Self {
        Self::new(PopetConfig::paper())
    }
}

impl OffChipPredictor for Popet {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let inputs = self.inputs(ctx);
        // Maintain the load-PC path history (most recent last).
        self.last4_pcs.rotate_left(1);
        self.last4_pcs[3] = ctx.pc;

        // Hash every active feature into its row, then gather-and-sum
        // the weights from the flat storage in one tight reduction.
        let mut indices = [0u16; MAX_FEATURES];
        for (i, &(feature, bits)) in self.cfg.features.iter().enumerate() {
            indices[i] = hash_index(feature.key(&inputs), bits) as u16;
        }
        let n = self.cfg.features.len();
        let mut wsum: i32 = 0;
        for (i, &idx) in indices.iter().enumerate().take(n) {
            wsum += self.weights[i * self.stride + idx as usize] as i32;
        }
        Prediction {
            go_offchip: wsum >= self.cfg.tau_act,
            meta: PredictionMeta::Popet {
                indices,
                n: self.cfg.features.len() as u8,
                wsum: wsum as i16,
            },
        }
    }

    fn train(&mut self, _ctx: &LoadContext, pred: &Prediction, went_offchip: bool) {
        let PredictionMeta::Popet { indices, n, wsum } = pred.meta else {
            return;
        };
        let wsum = wsum as i32;
        // §6.1.2: skip training when Wσ is saturated past the training
        // thresholds — unless the prediction was wrong, in which case the
        // weights must be corrected regardless (the standard perceptron
        // update; the saturation check exists to keep *correct* confident
        // weights from over-saturating).
        let mispredicted = pred.go_offchip != went_offchip;
        // Non-short-circuiting compares: both thresholds reduce to flag
        // arithmetic, no data-dependent branch.
        let within = (wsum > self.cfg.t_neg) & (wsum < self.cfg.t_pos);
        if !mispredicted && !within {
            return;
        }
        // Branchless ±1 saturating update on the consulted weights.
        let delta = (went_offchip as i16) * 2 - 1;
        for (i, &idx) in indices.iter().enumerate().take(n as usize) {
            let w = &mut self.weights[i * self.stride + idx as usize];
            *w = (*w + delta).clamp(self.w_min, self.w_max);
        }
    }

    fn name(&self) -> &'static str {
        "POPET"
    }

    fn storage_bits(&self) -> usize {
        self.cfg.table_bits() + self.page_buffer.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_types::VirtAddr;

    fn ctx(pc: u64, vaddr: u64) -> LoadContext {
        LoadContext::identity(pc, VirtAddr::new(vaddr))
    }

    /// Drives predict+train over a labelled stream; returns (accuracy,
    /// coverage) over the second half (after warmup).
    fn run_stream(popet: &mut Popet, stream: &[(LoadContext, bool)]) -> (f64, f64) {
        let half = stream.len() / 2;
        let (mut tp, mut fp, mut fneg) = (0u64, 0u64, 0u64);
        for (i, (c, offchip)) in stream.iter().enumerate() {
            let p = popet.predict(c);
            if i >= half {
                match (p.go_offchip, *offchip) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fneg += 1,
                    (false, false) => {}
                }
            }
            popet.train(c, &p, *offchip);
        }
        let acc = if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            1.0
        };
        let cov = if tp + fneg > 0 {
            tp as f64 / (tp + fneg) as f64
        } else {
            1.0
        };
        (acc, cov)
    }

    #[test]
    fn learns_per_pc_bias() {
        // PC A always goes off-chip, PC B never does.
        let mut popet = Popet::default();
        let mut stream = Vec::new();
        for i in 0..4000u64 {
            stream.push((ctx(0xA000, 0x10_0000 + i * 64), true));
            stream.push((ctx(0xB000, 0x20_0000 + (i % 4) * 64), false));
        }
        let (acc, cov) = run_stream(&mut popet, &stream);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(cov > 0.9, "coverage {cov}");
    }

    #[test]
    fn learns_streaming_byte_offset_pattern() {
        // The §6.1.3 motivating example: a PC streams 4 B elements; only
        // byte-offset-0 accesses (new lines) go off-chip.
        let mut popet = Popet::default();
        let mut stream = Vec::new();
        for i in 0..30_000u64 {
            let addr = 0x100_0000 + i * 4;
            let offchip = addr % 64 == 0;
            stream.push((ctx(0xC000, addr), offchip));
        }
        let (acc, cov) = run_stream(&mut popet, &stream);
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(cov > 0.8, "coverage {cov}");
    }

    #[test]
    fn adapts_to_phase_change() {
        // PC flips behaviour halfway; measure post-flip recovery window.
        let mut popet = Popet::default();
        let a = |i: u64| ctx(0xD000, 0x40_0000 + i * 64);
        for i in 0..2000 {
            let c = a(i);
            let p = popet.predict(&c);
            popet.train(&c, &p, true);
        }
        // Phase flip: now never off-chip. Count how long to adapt.
        let mut flipped_at = None;
        for i in 0..2000 {
            let c = a(10_000 + i);
            let p = popet.predict(&c);
            popet.train(&c, &p, false);
            if !p.go_offchip && flipped_at.is_none() {
                flipped_at = Some(i);
            }
        }
        let adapt = flipped_at.expect("never adapted to phase change");
        assert!(adapt < 200, "adaptation took {adapt} loads");
    }

    #[test]
    fn lower_tau_means_more_positive_predictions() {
        // Train a mildly-biased stream, then compare positive-rate across
        // thresholds (the Fig. 17 τ_act trade-off).
        let count_positives = |tau: i32| -> usize {
            let mut p = Popet::new(PopetConfig::paper().with_tau_act(tau));
            let mut positives = 0;
            for i in 0..3000u64 {
                let c = ctx(0xE000 + (i % 8) * 4, 0x50_0000 + i * 64);
                let pr = p.predict(&c);
                if i > 1500 && pr.go_offchip {
                    positives += 1;
                }
                p.train(&c, &pr, i % 3 == 0); // 33% off-chip ground truth
            }
            positives
        };
        let lo = count_positives(-38);
        let hi = count_positives(2);
        assert!(
            lo > hi,
            "τ=-38 should predict positive more often ({lo} vs {hi})"
        );
    }

    #[test]
    fn single_feature_config_works() {
        let cfg = PopetConfig::with_features(&[Feature::PcXorByteOffset]);
        let mut p = Popet::new(cfg);
        let c = ctx(0xF000, 0x60_0000);
        let pred = p.predict(&c);
        p.train(&c, &pred, true);
    }

    #[test]
    fn coh_feature_config_is_cold_safe_and_idempotent() {
        let cfg = PopetConfig::paper().with_coh_features();
        assert_eq!(cfg.features.len(), 8);
        // Idempotent: a second application changes nothing.
        assert_eq!(cfg, cfg.clone().with_coh_features());
        // Thresholds rescaled 5 -> 8 features.
        assert_eq!(cfg.tau_act, -29);
        assert_eq!((cfg.t_neg, cfg.t_pos), (-56, 64));
        // The cold predictor must still refuse to fire, coherence hints
        // present or not.
        let mut p = Popet::new(cfg);
        for i in 0..64u64 {
            let mut c = ctx(0x400000 + i * 4, i * 4096 + (i % 64) * 8);
            c.coh.line_remote_mod = i % 2 == 0;
            c.coh.upgrade_inflight = i % 3 == 0;
            assert!(!p.predict(&c).go_offchip, "cold +coh predictor fired");
        }
    }

    #[test]
    fn coh_features_learn_to_separate_coherence_misses() {
        // One PC alternates between genuinely-off-chip loads (no hints)
        // and dirty-intervention re-reads (line_remote_mod set, on-chip).
        // The classic features cannot split the two populations by PC
        // alone; the coherence feature can.
        let mut p = Popet::new(PopetConfig::paper().with_coh_features());
        let (mut tp, mut fp) = (0u64, 0u64);
        for i in 0..8000u64 {
            let coherent = i % 2 == 0;
            let mut c = ctx(0xA0C0, 0x70_0000 + i * 64);
            c.coh.line_remote_mod = coherent;
            let pred = p.predict(&c);
            let offchip = !coherent;
            if i >= 4000 && pred.go_offchip {
                if offchip {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
            p.train(&c, &pred, offchip);
        }
        assert!(tp > 0, "never fired on the off-chip half");
        let acc = tp as f64 / (tp + fp) as f64;
        assert!(acc > 0.85, "hint-split accuracy {acc} (tp={tp}, fp={fp})");
    }

    #[test]
    fn table_storage_matches_table3() {
        // 4 x 1024 x 5b + 1 x 128 x 5b = 21120 bits; + page buffer 5120
        // bits = 3.28 KB ≈ the paper's 3.2 KB.
        let cfg = PopetConfig::paper();
        assert_eq!(cfg.table_bits(), 4 * 1024 * 5 + 128 * 5);
        let p = Popet::default();
        let total_kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (3.0..3.5).contains(&total_kb),
            "POPET storage {total_kb} KB"
        );
    }

    #[test]
    fn meta_round_trips_through_training() {
        let mut p = Popet::default();
        let c = ctx(0x1234, 0x9000);
        let pred = p.predict(&c);
        match pred.meta {
            PredictionMeta::Popet { n, .. } => assert_eq!(n, 5),
            _ => panic!("wrong meta variant"),
        }
        // Training twice with opposite outcomes must not panic or corrupt.
        p.train(&c, &pred, true);
        p.train(&c, &pred, false);
    }

    #[test]
    fn cold_predictor_defaults_to_not_offchip() {
        // An untrained POPET must never fire a speculative DRAM read,
        // whatever the load context looks like.
        let mut p = Popet::default();
        for i in 0..64u64 {
            let c = ctx(0x400000 + i * 4, i * 4096 + (i % 64) * 8);
            assert!(
                !p.predict(&c).go_offchip,
                "cold predictor fired on load {i}"
            );
        }
        // Same for ablated feature subsets, whose thresholds are rescaled.
        for f in Feature::SELECTED {
            let mut p = Popet::new(PopetConfig::with_features(&[f]));
            assert!(
                !p.predict(&ctx(0x400100, 0x7000)).go_offchip,
                "{f:?} fired cold"
            );
        }
    }

    #[test]
    fn activation_threshold_gates_prediction() {
        // Wσ starts below τ_act; each positive outcome raises it by the
        // number of consulted features, and go_offchip must flip exactly
        // when Wσ crosses the threshold.
        let mut p = Popet::default();
        let c = ctx(0x4010, 0x123000);
        let tau = p.config().tau_act;
        let mut flipped_after = None;
        let mut prev_wsum = None;
        for i in 0..10 {
            let pred = p.predict(&c);
            let PredictionMeta::Popet { wsum, .. } = pred.meta else {
                unreachable!()
            };
            assert_eq!(
                pred.go_offchip,
                (wsum as i32) >= tau,
                "prediction not Wσ ≥ τ_act"
            );
            if let Some(prev) = prev_wsum {
                assert!(wsum > prev, "positive training must raise Wσ");
            }
            prev_wsum = Some(wsum);
            if pred.go_offchip {
                flipped_after = Some(i);
                break;
            }
            p.train(&c, &pred, true);
        }
        let steps = flipped_after.expect("never crossed the activation threshold");
        assert!(steps >= 1, "cold predictor was already active");
        assert!(steps <= 5, "crossing τ_act took {steps} positive outcomes");
    }

    #[test]
    fn training_saturates_at_training_thresholds() {
        // §6.1.2: once Wσ passes T_P (resp. T_N) with a *correct*
        // prediction, further agreeing outcomes stop moving the weights, so
        // Wσ parks within one update step of the threshold instead of
        // railing every weight.
        let drive = |outcome: bool| -> i32 {
            let mut p = Popet::default();
            let c = ctx(0xBEEF, 0x456780);
            for _ in 0..200 {
                let pred = p.predict(&c);
                p.train(&c, &pred, outcome);
            }
            let PredictionMeta::Popet { wsum, .. } = p.predict(&c).meta else {
                unreachable!()
            };
            wsum as i32
        };
        let n = Feature::SELECTED.len() as i32;
        let cfg = PopetConfig::paper();
        let up = drive(true);
        assert!(
            up >= cfg.t_pos && up < cfg.t_pos + n,
            "Wσ after positive stream: {up}"
        );
        let down = drive(false);
        assert!(
            down <= cfg.t_neg && down > cfg.t_neg - n,
            "Wσ after negative stream: {down}"
        );
    }

    #[test]
    fn mispredictions_train_past_saturation_thresholds() {
        // The guard only protects *correct* confident predictions: an
        // outcome that contradicts the prediction must keep correcting the
        // weights even when Wσ is beyond the training thresholds.
        let mut p = Popet::default();
        let c = ctx(0xCAFE, 0xABC000);
        for _ in 0..200 {
            let pred = p.predict(&c);
            p.train(&c, &pred, true);
        }
        // Wσ is parked at/above T_P; the phase now flips to on-chip.
        let pred = p.predict(&c);
        assert!(pred.go_offchip);
        let PredictionMeta::Popet { wsum: before, .. } = pred.meta else {
            unreachable!()
        };
        p.train(&c, &pred, false);
        let PredictionMeta::Popet { wsum: after, .. } = p.predict(&c).meta else {
            unreachable!()
        };
        assert!(
            (after as i32) < (before as i32),
            "misprediction did not move saturated weights: {before} -> {after}"
        );
    }

    #[test]
    fn saturation_guard_skips_confident_correct_training() {
        // Drive weights to strong positive, then verify a correct positive
        // outcome no longer moves them (Wσ ≥ T_P).
        let mut p = Popet::default();
        let c = ctx(0xAAAA, 0x123440);
        for _ in 0..100 {
            let pred = p.predict(&c);
            p.train(&c, &pred, true);
        }
        let before = match p.predict(&c).meta {
            PredictionMeta::Popet { wsum, .. } => wsum,
            _ => unreachable!(),
        };
        let pred = p.predict(&c);
        p.train(&c, &pred, true);
        let after = match p.predict(&c).meta {
            PredictionMeta::Popet { wsum, .. } => wsum,
            _ => unreachable!(),
        };
        assert!(
            after <= before + 1,
            "saturated weights kept growing: {before} -> {after}"
        );
        assert!(
            before as i32 >= 40,
            "stream should saturate past T_P, got {before}"
        );
    }
}
