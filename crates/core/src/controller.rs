//! Hermes datapath configuration and predictor accounting.
//!
//! The issue-latency variants of §7.2: **Hermes-O** (optimistic, 6 cycles)
//! and **Hermes-P** (pessimistic, 18 cycles) model the time a Hermes
//! request takes to route from the core to the memory controller over the
//! on-chip network; §8.4.3 sweeps this from 0 to 24 cycles.

use crate::predictor::PredictorKind;

/// The two modelled on-chip-network cost points (§7.2, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HermesVariant {
    /// Optimistic: 6-cycle Hermes request issue latency.
    O,
    /// Pessimistic: 18-cycle Hermes request issue latency.
    P,
}

impl HermesVariant {
    /// The issue latency in cycles.
    pub fn issue_latency(self) -> u32 {
        match self {
            HermesVariant::O => 6,
            HermesVariant::P => 18,
        }
    }
}

/// Full Hermes configuration for a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HermesConfig {
    /// Off-chip predictor driving Hermes requests.
    pub predictor: PredictorKind,
    /// Cycles from load address generation to the Hermes request entering
    /// the memory controller's read queue.
    pub issue_latency: u32,
    /// Predict-and-train only, without issuing Hermes requests — used to
    /// measure predictor accuracy/coverage in an unmodified baseline
    /// (Fig. 9/10/11).
    pub passive: bool,
    /// Coherence-aware prediction: feed the coherence-event hints into
    /// POPET's feature set ([`crate::features::Feature::COHERENCE`]) and
    /// split the training label three ways — a load served by a dirty
    /// intervention or a racing upgrade trains as *on-chip*, not as a
    /// DRAM fill. Off by default: the paper never evaluated sharing, and
    /// every historical configuration must stay byte-identical.
    pub coh_features: bool,
    /// Second-level speculative-read filter (modeled on Jamet et al.'s
    /// two-level off-chip-prediction gate, arXiv:2403.15181): a
    /// predicted-off-chip load only launches its speculative DRAM read
    /// when the per-PC usefulness counters allow it and no coherence hint
    /// vetoes it. Off by default.
    pub filter: bool,
}

impl HermesConfig {
    /// Hermes disabled (the baseline system).
    pub fn disabled() -> Self {
        Self {
            predictor: PredictorKind::None,
            issue_latency: 0,
            passive: false,
            coh_features: false,
            filter: false,
        }
    }

    /// Hermes-O with the given predictor.
    pub fn hermes_o(predictor: PredictorKind) -> Self {
        Self {
            predictor,
            issue_latency: HermesVariant::O.issue_latency(),
            passive: false,
            coh_features: false,
            filter: false,
        }
    }

    /// Hermes-P with the given predictor.
    pub fn hermes_p(predictor: PredictorKind) -> Self {
        Self {
            predictor,
            issue_latency: HermesVariant::P.issue_latency(),
            passive: false,
            coh_features: false,
            filter: false,
        }
    }

    /// Passive mode: the predictor observes and trains but no Hermes
    /// requests are issued (accuracy/coverage measurement in an otherwise
    /// unmodified system).
    pub fn passive(predictor: PredictorKind) -> Self {
        Self {
            predictor,
            issue_latency: 0,
            passive: true,
            coh_features: false,
            filter: false,
        }
    }

    /// A custom issue latency (the §8.4.3 sweep).
    pub fn with_issue_latency(mut self, cycles: u32) -> Self {
        self.issue_latency = cycles;
        self
    }

    /// Enables coherence-aware prediction (coherence features + split
    /// training label).
    pub fn with_coh_features(mut self) -> Self {
        self.coh_features = true;
        self
    }

    /// Enables the second-level speculative-read filter.
    pub fn with_filter(mut self) -> Self {
        self.filter = true;
        self
    }

    /// Whether any prediction mechanism is active.
    pub fn enabled(&self) -> bool {
        self.predictor != PredictorKind::None
    }
}

impl Default for HermesConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Confusion-matrix accounting for an off-chip predictor, with the paper's
/// Eq. 3 / Eq. 4 metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Predicted off-chip, went off-chip.
    pub tp: u64,
    /// Predicted off-chip, served on-chip.
    pub fp: u64,
    /// Not predicted, went off-chip.
    pub fn_: u64,
    /// Not predicted, served on-chip.
    pub tn: u64,
}

impl PredictorStats {
    /// Records one resolved load.
    pub fn record(&mut self, predicted: bool, went_offchip: bool) {
        match (predicted, went_offchip) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Accuracy = TP / (TP + FP) (Eq. 3). Returns 1.0 when no positive
    /// predictions were made (vacuously accurate, matching the artifact's
    /// convention).
    pub fn accuracy(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Coverage = TP / (TP + FN) (Eq. 4). Returns 0.0 when no off-chip
    /// loads occurred.
    pub fn coverage(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Total resolved loads observed.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Total actual off-chip loads.
    pub fn offchip(&self) -> u64 {
        self.tp + self.fn_
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_latencies_match_paper() {
        assert_eq!(HermesVariant::O.issue_latency(), 6);
        assert_eq!(HermesVariant::P.issue_latency(), 18);
    }

    #[test]
    fn config_constructors() {
        assert!(!HermesConfig::disabled().enabled());
        let o = HermesConfig::hermes_o(PredictorKind::Popet);
        assert!(o.enabled());
        assert_eq!(o.issue_latency, 6);
        let swept = o.with_issue_latency(24);
        assert_eq!(swept.issue_latency, 24);
    }

    #[test]
    fn coherence_knobs_default_off_everywhere() {
        // Every stock constructor must leave the coherence-aware knobs
        // off — historical configurations stay byte-identical.
        for cfg in [
            HermesConfig::disabled(),
            HermesConfig::hermes_o(PredictorKind::Popet),
            HermesConfig::hermes_p(PredictorKind::Popet),
            HermesConfig::passive(PredictorKind::Popet),
            HermesConfig::default(),
        ] {
            assert!(!cfg.coh_features && !cfg.filter);
        }
        let on = HermesConfig::hermes_o(PredictorKind::Popet)
            .with_coh_features()
            .with_filter();
        assert!(on.coh_features && on.filter);
    }

    #[test]
    fn accuracy_and_coverage() {
        let mut s = PredictorStats::default();
        // 3 TP, 1 FP, 1 FN, 5 TN.
        for _ in 0..3 {
            s.record(true, true);
        }
        s.record(true, false);
        s.record(false, true);
        for _ in 0..5 {
            s.record(false, false);
        }
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(s.total(), 10);
        assert_eq!(s.offchip(), 4);
    }

    #[test]
    fn degenerate_cases() {
        let s = PredictorStats::default();
        assert_eq!(s.accuracy(), 1.0);
        assert_eq!(s.coverage(), 0.0);
    }
}
