//! POPET's program features (§6.1.3, Table 2).
//!
//! Each feature maps a load's program context to a key; the key is hashed
//! into that feature's weight table. The five features selected by the
//! paper's automated search are implemented here, each with the rationale
//! the paper gives:
//!
//! 1. **PC ⊕ cacheline offset** — learns per-PC behaviour at each line
//!    offset within a page, generalising across pages.
//! 2. **PC ⊕ byte offset** — identifies the line-opening access of a
//!    stream (e.g. every 16th 4-byte load has byte offset 0).
//! 3. **PC + first access** — the PC shifted left with the page-buffer
//!    first-access hint in the low bit.
//! 4. **Cacheline offset + first access** — PC-free variant of (3).
//! 5. **Last-4 load PCs** — shifted XOR of the last four load PCs: the
//!    execution-path context.

use hermes_types::hashing::shifted_xor;

use crate::predictor::CohHints;

/// One POPET program feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// PC ⊕ cacheline-offset-in-page.
    PcXorLineOffset,
    /// PC ⊕ byte-offset-in-line.
    PcXorByteOffset,
    /// (PC << 1) | first-access hint.
    PcPlusFirstAccess,
    /// (line offset << 1) | first-access hint.
    LineOffsetPlusFirstAccess,
    /// Shifted XOR of the last four load PCs.
    Last4LoadPcs,
    /// (PC << 1) | line-was-remote-Modified-recently hint: lets the
    /// perceptron learn, per PC, that a re-read of a line a remote store
    /// just took is a dirty intervention — an *on-chip* miss.
    PcPlusLineRemoteMod,
    /// (PC << 1) | recent-invalidation-on-page hint: page-granular
    /// contention context.
    PcPlusPageRecentInval,
    /// (PC << 1) | upgrade-in-flight hint: the load races a store's
    /// write-permission upgrade and resolves through the directory.
    PcPlusUpgradeInFlight,
}

impl Feature {
    /// The paper's final feature set, in Table 2 order.
    pub const SELECTED: [Feature; 5] = [
        Feature::PcXorLineOffset,
        Feature::PcXorByteOffset,
        Feature::PcPlusFirstAccess,
        Feature::LineOffsetPlusFirstAccess,
        Feature::Last4LoadPcs,
    ];

    /// The coherence-derived feature slots appended by
    /// [`crate::popet::PopetConfig::with_coh_features`] — not part of the
    /// paper's search space (it never evaluated inter-core sharing).
    pub const COHERENCE: [Feature; 3] = [
        Feature::PcPlusLineRemoteMod,
        Feature::PcPlusPageRecentInval,
        Feature::PcPlusUpgradeInFlight,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Feature::PcXorLineOffset => "PC ^ cacheline offset",
            Feature::PcXorByteOffset => "PC ^ byte offset",
            Feature::PcPlusFirstAccess => "PC + first access",
            Feature::LineOffsetPlusFirstAccess => "Cacheline offset + first access",
            Feature::Last4LoadPcs => "Last-4 load PCs",
            Feature::PcPlusLineRemoteMod => "PC + line remote-Modified",
            Feature::PcPlusPageRecentInval => "PC + page recent invalidation",
            Feature::PcPlusUpgradeInFlight => "PC + upgrade in flight",
        }
    }

    /// Default weight-table size in index bits (Table 3: 1024 entries for
    /// all features except cacheline-offset+first-access at 128; the
    /// coherence features use 128-entry tables — the hint bit carries
    /// most of the signal, the PC only disambiguates).
    pub fn default_table_bits(self) -> u32 {
        match self {
            Feature::LineOffsetPlusFirstAccess => 7,
            Feature::PcPlusLineRemoteMod
            | Feature::PcPlusPageRecentInval
            | Feature::PcPlusUpgradeInFlight => 7,
            _ => 10,
        }
    }

    /// Computes the feature key from the load's context.
    ///
    /// `inputs` carries the pieces of program context a feature may need.
    pub fn key(self, inputs: &FeatureInputs) -> u64 {
        match self {
            Feature::PcXorLineOffset => inputs.pc ^ (inputs.line_offset << 17),
            Feature::PcXorByteOffset => inputs.pc ^ (inputs.byte_offset << 17),
            Feature::PcPlusFirstAccess => (inputs.pc << 1) | inputs.first_access as u64,
            Feature::LineOffsetPlusFirstAccess => {
                (inputs.line_offset << 1) | inputs.first_access as u64
            }
            Feature::Last4LoadPcs => shifted_xor(&inputs.last4_pcs, 2),
            Feature::PcPlusLineRemoteMod => (inputs.pc << 1) | inputs.coh.line_remote_mod as u64,
            Feature::PcPlusPageRecentInval => {
                (inputs.pc << 1) | inputs.coh.page_recent_inval as u64
            }
            Feature::PcPlusUpgradeInFlight => (inputs.pc << 1) | inputs.coh.upgrade_inflight as u64,
        }
    }
}

/// The program-context inputs available to feature computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureInputs {
    /// Load PC.
    pub pc: u64,
    /// Cacheline offset within the 4 KiB page (6 bits).
    pub line_offset: u64,
    /// Byte offset within the 64 B line (6 bits).
    pub byte_offset: u64,
    /// First-access hint from the page buffer.
    pub first_access: bool,
    /// The last four load PCs, most recent last.
    pub last4_pcs: [u64; 4],
    /// Coherence-event hints (all-false unless the hierarchy feeds them).
    pub coh: CohHints,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> FeatureInputs {
        FeatureInputs {
            pc: 0x400100,
            line_offset: 5,
            byte_offset: 12,
            first_access: true,
            last4_pcs: [0x400100, 0x400104, 0x400108, 0x40010c],
            coh: CohHints::default(),
        }
    }

    #[test]
    fn selected_set_has_five_features() {
        assert_eq!(Feature::SELECTED.len(), 5);
    }

    #[test]
    fn keys_differ_across_features() {
        let i = inputs();
        let keys: Vec<u64> = Feature::SELECTED.iter().map(|f| f.key(&i)).collect();
        let unique: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len());
    }

    #[test]
    fn first_access_bit_changes_key() {
        let a = inputs();
        let b = FeatureInputs {
            first_access: false,
            ..a
        };
        assert_ne!(
            Feature::PcPlusFirstAccess.key(&a),
            Feature::PcPlusFirstAccess.key(&b)
        );
        assert_ne!(
            Feature::LineOffsetPlusFirstAccess.key(&a),
            Feature::LineOffsetPlusFirstAccess.key(&b)
        );
        // ... but does not affect the offset-only features.
        assert_eq!(
            Feature::PcXorByteOffset.key(&a),
            Feature::PcXorByteOffset.key(&b)
        );
    }

    #[test]
    fn byte_offset_discriminates_stream_position() {
        let a = inputs();
        let b = FeatureInputs {
            byte_offset: 0,
            ..a
        };
        assert_ne!(
            Feature::PcXorByteOffset.key(&a),
            Feature::PcXorByteOffset.key(&b)
        );
    }

    #[test]
    fn path_feature_depends_on_history_order() {
        let a = inputs();
        let mut b = a;
        b.last4_pcs = [0x40010c, 0x400108, 0x400104, 0x400100];
        assert_ne!(Feature::Last4LoadPcs.key(&a), Feature::Last4LoadPcs.key(&b));
    }

    #[test]
    fn table_sizes_match_table3() {
        assert_eq!(Feature::PcXorLineOffset.default_table_bits(), 10);
        assert_eq!(Feature::LineOffsetPlusFirstAccess.default_table_bits(), 7);
    }

    #[test]
    fn labels_are_paper_strings() {
        assert_eq!(Feature::Last4LoadPcs.label(), "Last-4 load PCs");
    }

    #[test]
    fn coherence_features_key_on_their_hint_bit() {
        let cold = inputs();
        for (f, set) in [
            (
                Feature::PcPlusLineRemoteMod,
                CohHints {
                    line_remote_mod: true,
                    ..CohHints::default()
                },
            ),
            (
                Feature::PcPlusPageRecentInval,
                CohHints {
                    page_recent_inval: true,
                    ..CohHints::default()
                },
            ),
            (
                Feature::PcPlusUpgradeInFlight,
                CohHints {
                    upgrade_inflight: true,
                    ..CohHints::default()
                },
            ),
        ] {
            let hot = FeatureInputs { coh: set, ..cold };
            assert_ne!(f.key(&cold), f.key(&hot), "{f:?} ignores its hint");
            // Each coherence feature reads exactly its own hint.
            for g in Feature::COHERENCE {
                if g != f {
                    assert_eq!(g.key(&cold), g.key(&hot), "{g:?} reads {f:?}'s hint");
                }
            }
        }
        // Program features are hint-blind: the classic five keys are
        // unchanged by any coherence state.
        let all = FeatureInputs {
            coh: CohHints {
                line_remote_mod: true,
                page_recent_inval: true,
                upgrade_inflight: true,
            },
            ..cold
        };
        for f in Feature::SELECTED {
            assert_eq!(f.key(&cold), f.key(&all));
        }
    }
}
