//! HMP: the hit-miss predictor of Yoaz et al. (ISCA'99), extended to
//! predict misses of the whole hierarchy (§4 footnote 3, §7.2).
//!
//! Three component predictors — *local* (per-PC miss history indexing a
//! pattern table), *gshare* (global miss history ⊕ PC), and *gskew* (three
//! differently-hashed banks with internal majority) — each give a binary
//! vote; HMP returns the majority. Storage follows the paper's 11 KB
//! budget (Table 6).

use hermes_types::{hash_index, mix64, SatCounter};

use crate::predictor::{LoadContext, OffChipPredictor, Prediction, PredictionMeta};

const LOCAL_HIST_BITS: u32 = 10; // 1024 per-PC histories
const LOCAL_HIST_LEN: u32 = 12; // 12-bit local history
const LOCAL_PATTERN_BITS: u32 = 13; // 8192-entry pattern table
const GSHARE_BITS: u32 = 14; // 16384 counters
const GSKEW_BITS: u32 = 12; // 3 x 4096 counters
const COUNTER_BITS: u32 = 2;
/// Global hit/miss history length folded into the gshare/gskew indices.
/// Bounded so that a steady outcome stream reaches a stable index (and
/// therefore trainable counters) quickly.
const GHIST_LEN: u32 = 8;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Hmp {
    local_hist: Vec<u16>,
    local_pattern: Vec<SatCounter>,
    gshare: Vec<SatCounter>,
    gskew: [Vec<SatCounter>; 3],
    ghist: u64,
}

impl Hmp {
    /// Builds HMP with the paper's geometry.
    pub fn new() -> Self {
        Self {
            local_hist: vec![0; 1 << LOCAL_HIST_BITS],
            local_pattern: vec![SatCounter::new_zero(COUNTER_BITS); 1 << LOCAL_PATTERN_BITS],
            gshare: vec![SatCounter::new_zero(COUNTER_BITS); 1 << GSHARE_BITS],
            gskew: [
                vec![SatCounter::new_zero(COUNTER_BITS); 1 << GSKEW_BITS],
                vec![SatCounter::new_zero(COUNTER_BITS); 1 << GSKEW_BITS],
                vec![SatCounter::new_zero(COUNTER_BITS); 1 << GSKEW_BITS],
            ],
            ghist: 0,
        }
    }

    fn local_slot(&self, pc: u64) -> usize {
        hash_index(pc, LOCAL_HIST_BITS)
    }

    fn indices(&self, pc: u64) -> (u32, u32, [u32; 3]) {
        let hist = self.local_hist[self.local_slot(pc)] as u64;
        let ghist = self.ghist & ((1 << GHIST_LEN) - 1);
        let local = hash_index(hist ^ (pc << LOCAL_HIST_LEN), LOCAL_PATTERN_BITS) as u32;
        let gshare = hash_index(pc ^ ghist, GSHARE_BITS) as u32;
        let gskew = [
            hash_index(mix64(pc) ^ ghist, GSKEW_BITS) as u32,
            hash_index(mix64(pc.rotate_left(17)) ^ ghist, GSKEW_BITS) as u32,
            hash_index(mix64(pc.rotate_left(41) ^ ghist.rotate_left(7)), GSKEW_BITS) as u32,
        ];
        (local, gshare, gskew)
    }

    fn vote(&self, local: u32, gshare: u32, gskew: [u32; 3]) -> bool {
        let l = self.local_pattern[local as usize].is_set();
        let g = self.gshare[gshare as usize].is_set();
        let sk_votes = gskew
            .iter()
            .zip(self.gskew.iter())
            .filter(|(idx, bank)| bank[**idx as usize].is_set())
            .count();
        let sk = sk_votes >= 2;
        (l as u8 + g as u8 + sk as u8) >= 2
    }
}

impl Default for Hmp {
    fn default() -> Self {
        Self::new()
    }
}

impl OffChipPredictor for Hmp {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        let (local, gshare, gskew) = self.indices(ctx.pc);
        Prediction {
            go_offchip: self.vote(local, gshare, gskew),
            meta: PredictionMeta::Hmp {
                local,
                gshare,
                gskew,
            },
        }
    }

    fn train(&mut self, ctx: &LoadContext, pred: &Prediction, went_offchip: bool) {
        let PredictionMeta::Hmp {
            local,
            gshare,
            gskew,
        } = pred.meta
        else {
            return;
        };
        self.local_pattern[local as usize].train(went_offchip);
        self.gshare[gshare as usize].train(went_offchip);
        for (idx, bank) in gskew.iter().zip(self.gskew.iter_mut()) {
            bank[*idx as usize].train(went_offchip);
        }
        // Shift the outcome into both history kinds.
        let slot = self.local_slot(ctx.pc);
        self.local_hist[slot] =
            ((self.local_hist[slot] << 1) | went_offchip as u16) & ((1 << LOCAL_HIST_LEN) - 1);
        self.ghist = (self.ghist << 1) | went_offchip as u64;
    }

    fn name(&self) -> &'static str {
        "HMP"
    }

    fn storage_bits(&self) -> usize {
        self.local_hist.len() * LOCAL_HIST_LEN as usize
            + self.local_pattern.len() * COUNTER_BITS as usize
            + self.gshare.len() * COUNTER_BITS as usize
            + 3 * (1 << GSKEW_BITS) * COUNTER_BITS as usize
            + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_types::VirtAddr;

    fn ctx(pc: u64, addr: u64) -> LoadContext {
        LoadContext::identity(pc, VirtAddr::new(addr))
    }

    #[test]
    fn counters_start_predicting_hit() {
        // Off-chip is the rare class; an untrained HMP must not spam
        // positive predictions.
        let mut h = Hmp::new();
        let p = h.predict(&ctx(0x400000, 0x1000));
        assert!(!p.go_offchip);
    }

    #[test]
    fn learns_always_missing_pc() {
        let mut h = Hmp::new();
        let c = ctx(0x400100, 0x222000);
        for _ in 0..50 {
            let p = h.predict(&c);
            h.train(&c, &p, true);
        }
        assert!(h.predict(&c).go_offchip);
    }

    #[test]
    fn learns_periodic_miss_pattern() {
        // Every 4th access misses: local history should pick this up.
        let mut h = Hmp::new();
        let c = ctx(0x400200, 0x333000);
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let outcome = i % 4 == 0;
            let p = h.predict(&c);
            if i > total / 2 && p.go_offchip == outcome {
                correct += 1;
            }
            h.train(&c, &p, outcome);
        }
        let acc = correct as f64 / (total / 2) as f64;
        assert!(acc > 0.8, "periodic pattern accuracy {acc}");
    }

    #[test]
    fn majority_vote_resists_one_bad_component() {
        // Sanity: prediction is a majority, so a single aliased component
        // cannot flip a well-trained consensus. We approximate by training
        // strongly and checking stability across many PCs.
        let mut h = Hmp::new();
        for pc in 0..32u64 {
            let c = ctx(0x500000 + pc * 4, 0x400000 + pc * 64);
            for _ in 0..30 {
                let p = h.predict(&c);
                h.train(&c, &p, false);
            }
            assert!(!h.predict(&c).go_offchip);
        }
    }

    #[test]
    fn storage_near_11kb() {
        let kb = Hmp::new().storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (9.0..12.5).contains(&kb),
            "HMP storage {kb} KB (paper: 11 KB)"
        );
    }

    #[test]
    fn train_ignores_foreign_meta() {
        let mut h = Hmp::new();
        let c = ctx(1, 2);
        let foreign = Prediction::negative();
        h.train(&c, &foreign, true); // must not panic
    }
}
