//! The page buffer backing POPET's *first access* hint (§6.1.3, feature 3).
//!
//! A small fully-associative structure tracking the demanded cache lines of
//! the last N virtual pages. Each entry holds a virtual-page tag and a
//! 64-bit bitmap, one bit per line in the page. On every load the buffer is
//! probed with the load's page; the addressed line's bit provides the hint
//! (unset ⇒ the program has not recently touched the line ⇒ "first
//! access"), and is then set. The paper sizes it at 64 entries × 80 bits.

use hermes_types::VirtAddr;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct PageBuffer {
    tags: Vec<u64>,
    bitmaps: Vec<u64>,
    lru: Vec<u64>,
    clock: u64,
    capacity: usize,
}

impl PageBuffer {
    /// A buffer tracking `capacity` pages (64 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "page buffer needs at least one entry");
        Self {
            tags: Vec::with_capacity(capacity),
            bitmaps: Vec::with_capacity(capacity),
            lru: Vec::with_capacity(capacity),
            clock: 0,
            capacity,
        }
    }

    /// Probes and updates the buffer for a load to `vaddr`.
    ///
    /// Returns the *first access* hint: `true` if the line's bit was not
    /// set (including the page being absent entirely). As a side effect
    /// the bit is set and the entry refreshed (allocating / evicting LRU
    /// as needed) — one call per load, at prediction time.
    pub fn first_access(&mut self, vaddr: VirtAddr) -> bool {
        let page = vaddr.page_number();
        let bit = 1u64 << vaddr.line_offset_in_page();
        self.clock += 1;
        if let Some(i) = self.tags.iter().position(|&t| t == page) {
            let first = self.bitmaps[i] & bit == 0;
            self.bitmaps[i] |= bit;
            self.lru[i] = self.clock;
            return first;
        }
        // Allocate; evict LRU if full.
        if self.tags.len() == self.capacity {
            let victim = (0..self.lru.len())
                .min_by_key(|&i| self.lru[i])
                .expect("buffer nonempty when full");
            self.tags[victim] = page;
            self.bitmaps[victim] = bit;
            self.lru[victim] = self.clock;
        } else {
            self.tags.push(page);
            self.bitmaps.push(bit);
            self.lru.push(self.clock);
        }
        true
    }

    /// Number of pages currently tracked.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether no pages are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Storage in bits: per entry a page tag (wryly generous at 16 bits,
    /// per the paper's 80-bit entries) plus the 64-bit bitmap.
    pub fn storage_bits(&self) -> usize {
        self.capacity * 80
    }
}

impl Default for PageBuffer {
    /// The paper's 64-entry configuration.
    fn default() -> Self {
        Self::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(page: u64, line_in_page: u64) -> VirtAddr {
        VirtAddr::new(page * 4096 + line_in_page * 64)
    }

    #[test]
    fn first_touch_is_first_access() {
        let mut pb = PageBuffer::new(4);
        assert!(pb.first_access(addr(1, 0)));
        assert!(!pb.first_access(addr(1, 0)), "second touch of same line");
        assert!(pb.first_access(addr(1, 1)), "different line in same page");
    }

    #[test]
    fn distinct_pages_tracked_separately() {
        let mut pb = PageBuffer::new(4);
        assert!(pb.first_access(addr(1, 5)));
        assert!(pb.first_access(addr(2, 5)));
        assert!(!pb.first_access(addr(1, 5)));
        assert_eq!(pb.len(), 2);
    }

    #[test]
    fn lru_eviction_forgets_oldest_page() {
        let mut pb = PageBuffer::new(2);
        pb.first_access(addr(1, 0));
        pb.first_access(addr(2, 0));
        pb.first_access(addr(1, 1)); // refresh page 1
        pb.first_access(addr(3, 0)); // evicts page 2
        assert!(
            pb.first_access(addr(2, 0)),
            "evicted page must read as first access"
        );
        assert!(!pb.first_access(addr(1, 0)) || pb.len() <= 2);
    }

    #[test]
    fn capacity_bounded() {
        let mut pb = PageBuffer::new(8);
        for p in 0..100 {
            pb.first_access(addr(p, 0));
        }
        assert_eq!(pb.len(), 8);
    }

    #[test]
    fn paper_storage_is_640_bytes() {
        let pb = PageBuffer::default();
        assert_eq!(pb.storage_bits(), 64 * 80);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = PageBuffer::new(0);
    }
}
