//! TTP: the tag-tracking off-chip predictor (§4, §7.2).
//!
//! TTP mirrors the on-chip cache contents in a separate set-associative
//! store of *partial* tags: every cache fill inserts the filled line's
//! partial tag, every LLC eviction removes it, and a load is predicted to
//! go off-chip when its tag is absent. The paper gives it a metadata
//! budget "similar to the L2 cache" (1536 KB) and shows it achieves the
//! highest coverage (≈95%) but much lower accuracy (≈17%): partial-tag
//! aliasing, its own conflict evictions, and — in a non-inclusive
//! hierarchy — hot L1/L2-resident lines whose LLC copy (and therefore TTP
//! tag) was evicted all produce false "off-chip" calls.

use hermes_types::{mix64, LineAddr};

use crate::predictor::{LoadContext, OffChipPredictor, Prediction, PredictionMeta};

/// TTP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TtpConfig {
    /// Metadata budget in bytes (paper: 1.5 MB).
    pub budget_bytes: usize,
    /// Partial-tag width in bits.
    pub tag_bits: u32,
    /// Associativity of the tag store.
    pub ways: usize,
}

impl TtpConfig {
    /// The paper's configuration: a budget similar to the L2 (1536 KB)
    /// with 16-bit partial tags.
    pub fn paper() -> Self {
        Self {
            budget_bytes: 1536 * 1024,
            tag_bits: 16,
            ways: 16,
        }
    }

    /// Number of sets implied by the budget (rounded down to a power of
    /// two for indexability).
    pub fn sets(&self) -> usize {
        let entries = self.budget_bytes * 8 / self.tag_bits as usize;
        let sets = entries / self.ways;
        sets.next_power_of_two() / 2
    }
}

impl Default for TtpConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Ttp {
    cfg: TtpConfig,
    tags: Vec<u16>,
    valid: Vec<bool>,
    stamps: Vec<u64>,
    clock: u64,
    sets: usize,
}

impl Ttp {
    /// Builds TTP from a configuration.
    pub fn new(cfg: TtpConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets >= 1);
        let n = sets * cfg.ways;
        Self {
            cfg,
            tags: vec![0; n],
            valid: vec![false; n],
            stamps: vec![0; n],
            clock: 0,
            sets,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u16 {
        (mix64(line.raw()) & ((1u64 << self.cfg.tag_bits) - 1)) as u16
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let base = self.set_of(line) * self.cfg.ways;
        let tag = self.tag_of(line);
        (base..base + self.cfg.ways).find(|&i| self.valid[i] && self.tags[i] == tag)
    }

    /// Whether the line's partial tag is currently tracked (believed
    /// on-chip).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Number of tracked tags (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

impl Default for Ttp {
    fn default() -> Self {
        Self::new(TtpConfig::paper())
    }
}

impl OffChipPredictor for Ttp {
    fn predict(&mut self, ctx: &LoadContext) -> Prediction {
        Prediction {
            go_offchip: !self.contains(ctx.pline),
            meta: PredictionMeta::None,
        }
    }

    fn train(&mut self, _ctx: &LoadContext, _pred: &Prediction, _went_offchip: bool) {
        // TTP learns from cache events, not outcomes.
    }

    fn name(&self) -> &'static str {
        "TTP"
    }

    fn storage_bits(&self) -> usize {
        self.tags.len() * self.cfg.tag_bits as usize + self.valid.len()
    }

    fn on_cache_fill(&mut self, line: LineAddr) {
        if self.find(line).is_some() {
            return;
        }
        let base = self.set_of(line) * self.cfg.ways;
        self.clock += 1;
        // Invalid way first, else LRU.
        let idx = (base..base + self.cfg.ways)
            .find(|&i| !self.valid[i])
            .unwrap_or_else(|| {
                (base..base + self.cfg.ways)
                    .min_by_key(|&i| self.stamps[i])
                    .expect("nonzero ways")
            });
        self.tags[idx] = self.tag_of(line);
        self.valid[idx] = true;
        self.stamps[idx] = self.clock;
    }

    fn on_llc_eviction(&mut self, line: LineAddr) {
        if let Some(idx) = self.find(line) {
            self.valid[idx] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_types::VirtAddr;

    fn ctx_for(line: u64) -> LoadContext {
        LoadContext::identity(0x400000, VirtAddr::new(line * 64))
    }

    #[test]
    fn absent_line_predicted_offchip() {
        let mut t = Ttp::default();
        assert!(t.predict(&ctx_for(123)).go_offchip);
    }

    #[test]
    fn filled_line_predicted_onchip() {
        let mut t = Ttp::default();
        t.on_cache_fill(LineAddr::new(123));
        assert!(!t.predict(&ctx_for(123)).go_offchip);
    }

    #[test]
    fn llc_eviction_forgets_line() {
        let mut t = Ttp::default();
        t.on_cache_fill(LineAddr::new(9));
        t.on_llc_eviction(LineAddr::new(9));
        assert!(t.predict(&ctx_for(9)).go_offchip);
    }

    #[test]
    fn eviction_of_untracked_line_is_noop() {
        let mut t = Ttp::default();
        t.on_llc_eviction(LineAddr::new(42)); // must not panic
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn duplicate_fill_does_not_duplicate() {
        let mut t = Ttp::default();
        t.on_cache_fill(LineAddr::new(5));
        t.on_cache_fill(LineAddr::new(5));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn conflict_eviction_in_small_ttp() {
        // A tiny TTP (1 set x 2 ways) must LRU-evict under pressure,
        // producing the false positives the paper reports.
        let cfg = TtpConfig {
            budget_bytes: 2 * 2 * 2,
            tag_bits: 8,
            ways: 2,
        };
        let mut t = Ttp::new(cfg);
        let s = t.sets;
        // Lines in the same set.
        let l = |i: u64| LineAddr::new(i * s as u64);
        t.on_cache_fill(l(1));
        t.on_cache_fill(l(2));
        t.on_cache_fill(l(3)); // evicts l(1)
        assert!(!t.contains(l(1)));
        assert!(t.contains(l(2)) && t.contains(l(3)));
    }

    #[test]
    fn storage_close_to_budget() {
        let t = Ttp::default();
        let kb = t.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            kb > 1000.0 && kb < 1700.0,
            "TTP storage {kb} KB (paper: 1536 KB)"
        );
    }
}
