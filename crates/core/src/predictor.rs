//! The off-chip predictor abstraction shared by POPET, HMP, and TTP.

use hermes_types::{LineAddr, VirtAddr};

/// Coherence-derived hints available at prediction time, fed from the
/// hierarchy's per-core recent-coherence-event table. All-false with
/// `coherence: None`, on a single core, or when the coherence-aware
/// feature knobs are off — the paper's original five-feature POPET never
/// sees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CohHints {
    /// The line was recently taken Modified by a remote core (this core's
    /// copy was invalidated by a remote store): a re-read is likely a
    /// dirty intervention, an *on-chip* miss.
    pub line_remote_mod: bool,
    /// A recent invalidation (remote store or inclusive back-invalidation)
    /// hit this page — the page is contended.
    pub page_recent_inval: bool,
    /// A write-permission upgrade for this line is in flight somewhere:
    /// the load races a store and resolves on-chip via the directory.
    pub upgrade_inflight: bool,
}

impl CohHints {
    /// Whether any hint is set.
    pub fn any(&self) -> bool {
        self.line_remote_mod || self.page_recent_inval || self.upgrade_inflight
    }
}

/// What a predictor sees when a load generates its address — the moment
/// POPET predicts and Hermes may launch its speculative request (§5,
/// step 1 of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadContext {
    /// Program counter of the load.
    pub pc: u64,
    /// Virtual address of the access (POPET's features are virtual-address
    /// based, §6.1.3).
    pub vaddr: VirtAddr,
    /// Physical cache line (prediction happens after translation, §3.1;
    /// TTP's tag store is physically indexed).
    pub pline: LineAddr,
    /// Coherence-event hints (all-false unless the hierarchy runs with
    /// coherence *and* the coherence-aware knobs on).
    pub coh: CohHints,
}

impl LoadContext {
    /// Convenience constructor for contexts whose physical line equals the
    /// virtual line (identity translation), used widely in tests.
    pub fn identity(pc: u64, vaddr: VirtAddr) -> Self {
        Self {
            pc,
            vaddr,
            pline: vaddr.line(),
            coh: CohHints::default(),
        }
    }
}

/// Per-predictor metadata captured at prediction time and replayed at
/// training time — the paper's "LQ metadata" (Table 3): hashed indices,
/// the cumulative weight, and the predicted outcome ride in the load-queue
/// entry until the load returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionMeta {
    /// No metadata (stateless or externally-trained predictors).
    None,
    /// POPET: hashed table indices, active feature count, cumulative
    /// weight.
    Popet {
        /// Per-feature table indices at prediction time.
        indices: [u16; 8],
        /// Number of active features.
        n: u8,
        /// Cumulative perceptron weight Wσ.
        wsum: i16,
    },
    /// HMP: the component-table indices consulted.
    Hmp {
        /// Local pattern-table index.
        local: u32,
        /// Gshare table index.
        gshare: u32,
        /// The three gskew bank indices.
        gskew: [u32; 3],
    },
}

/// A binary off-chip prediction plus its training metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// True ⇒ the load is predicted to miss the entire on-chip hierarchy.
    pub go_offchip: bool,
    /// Metadata replayed at training time.
    pub meta: PredictionMeta,
}

impl Prediction {
    /// A negative prediction with no metadata.
    pub fn negative() -> Self {
        Self {
            go_offchip: false,
            meta: PredictionMeta::None,
        }
    }

    /// Signed confidence of the prediction: POPET's cumulative
    /// perceptron weight Wσ (distance from the activation threshold
    /// tracks how sure the perceptron is), 0 for predictors that carry
    /// no analog margin. Observability-only — no training or issue
    /// decision consults this.
    pub fn confidence(&self) -> i32 {
        match self.meta {
            PredictionMeta::Popet { wsum, .. } => i32::from(wsum),
            _ => 0,
        }
    }
}

/// Which off-chip prediction mechanism a system configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// No off-chip prediction: Hermes disabled (the baseline).
    None,
    /// POPET (this paper).
    Popet,
    /// Hit-miss predictor, Yoaz et al. (§4).
    Hmp,
    /// Tag-tracking predictor (§7.2).
    Ttp,
    /// Oracle with perfect knowledge (the "Ideal Hermes" of §3.1) —
    /// realised by the hierarchy engine peeking its own state.
    Ideal,
}

impl PredictorKind {
    /// Display name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PredictorKind::None => "none",
            PredictorKind::Popet => "POPET",
            PredictorKind::Hmp => "HMP",
            PredictorKind::Ttp => "TTP",
            PredictorKind::Ideal => "Ideal",
        }
    }
}

/// An off-chip load predictor.
///
/// Implementations must be safe to call in this order for each load:
/// `predict` once at address generation, then `train` once when the load's
/// true outcome is known. Cache-event hooks default to no-ops; TTP uses
/// them to mirror fills and evictions.
pub trait OffChipPredictor {
    /// Predicts whether the load will go off-chip.
    fn predict(&mut self, ctx: &LoadContext) -> Prediction;

    /// Trains with the resolved outcome. `pred` must be the value returned
    /// by `predict` for this same load.
    fn train(&mut self, ctx: &LoadContext, pred: &Prediction, went_offchip: bool);

    /// Display name.
    fn name(&self) -> &'static str;

    /// Total storage in bits (Tables 3 and 6).
    fn storage_bits(&self) -> usize;

    /// A line was filled into some on-chip cache.
    fn on_cache_fill(&mut self, line: LineAddr) {
        let _ = line;
    }

    /// A line was evicted from the LLC.
    fn on_llc_eviction(&mut self, line: LineAddr) {
        let _ = line;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_prediction_shape() {
        let p = Prediction::negative();
        assert!(!p.go_offchip);
        assert_eq!(p.meta, PredictionMeta::None);
    }

    #[test]
    fn confidence_exposes_popet_margin() {
        let p = Prediction {
            go_offchip: true,
            meta: PredictionMeta::Popet {
                indices: [0; 8],
                n: 5,
                wsum: -42,
            },
        };
        assert_eq!(p.confidence(), -42);
        assert_eq!(Prediction::negative().confidence(), 0);
        let h = Prediction {
            go_offchip: false,
            meta: PredictionMeta::Hmp {
                local: 0,
                gshare: 0,
                gskew: [0; 3],
            },
        };
        assert_eq!(h.confidence(), 0);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(PredictorKind::Popet.label(), "POPET");
        assert_eq!(PredictorKind::Ideal.label(), "Ideal");
        assert_eq!(PredictorKind::None.label(), "none");
    }
}
