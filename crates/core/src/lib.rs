//! **Hermes** — perceptron-based off-chip load prediction (MICRO 2022).
//!
//! This crate is the paper's contribution proper:
//!
//! * [`Popet`] — the **P**erceptron-based **O**ff-chip **P**redictor
//!   (§6.1): five hashed program features, 5-bit saturating weight tables,
//!   a 64-entry page buffer supplying the *first access* hint, and the
//!   activation/training thresholds of Table 2.
//! * [`Hmp`] — the hit-miss predictor of Yoaz et al. (local + gshare +
//!   gskew with majority voting), the prior-work baseline (§4, §7.2).
//! * [`Ttp`] — the address-tag-tracking predictor the authors built as a
//!   second baseline (§7.2): a partial-tag mirror of on-chip contents.
//! * [`HermesConfig`] / [`HermesVariant`] — the datapath parameters
//!   (Hermes-O = 6-cycle, Hermes-P = 18-cycle request issue latency).
//! * [`storage`] — the Table 3 / Table 6 storage accounting, computed from
//!   the live configurations rather than hard-coded.
//!
//! The predictors are pure data structures: the cache-hierarchy engine in
//! `hermes-sim` calls [`OffChipPredictor::predict`] at load address
//! generation, issues the speculative Hermes request on a positive
//! prediction, and calls [`OffChipPredictor::train`] when the load returns
//! with its ground-truth outcome — exactly the four steps of the paper's
//! Fig. 6.
//!
//! # Example
//!
//! ```
//! use hermes::{LoadContext, OffChipPredictor, Popet};
//! use hermes_types::VirtAddr;
//!
//! let mut popet = Popet::default();
//! let ctx = LoadContext::identity(0x400100, VirtAddr::new(0x7f00_1040));
//! let pred = popet.predict(&ctx);
//! // ... the load resolves; suppose it went off-chip:
//! popet.train(&ctx, &pred, true);
//! ```

pub mod controller;
pub mod features;
pub mod filter;
pub mod hmp;
pub mod page_buffer;
pub mod popet;
pub mod predictor;
pub mod storage;
pub mod ttp;

pub use controller::{HermesConfig, HermesVariant, PredictorStats};
pub use features::Feature;
pub use filter::{CohEventTable, SpecReadFilter};
pub use hmp::Hmp;
pub use page_buffer::PageBuffer;
pub use popet::{Popet, PopetConfig};
pub use predictor::{
    CohHints, LoadContext, OffChipPredictor, Prediction, PredictionMeta, PredictorKind,
};
pub use ttp::Ttp;
