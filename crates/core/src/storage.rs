//! Storage-overhead accounting (Tables 3 and 6 of the paper).
//!
//! All numbers are *computed from the live structures* rather than
//! hard-coded, so a configuration change is reflected in the regenerated
//! tables.

use crate::hmp::Hmp;
use crate::popet::{Popet, PopetConfig};
use crate::predictor::OffChipPredictor;
use crate::ttp::Ttp;

/// One row of a storage table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageRow {
    /// Structure name.
    pub structure: String,
    /// Description of the entry layout.
    pub description: String,
    /// Size in bits.
    pub bits: usize,
}

impl StorageRow {
    /// Size in kilobytes.
    pub fn kb(&self) -> f64 {
        self.bits as f64 / 8.0 / 1024.0
    }
}

/// Load-queue metadata bits per Table 3: hashed PC (32b), last-4 PC
/// (10b), first access (1b), perceptron weight (5b), prediction (1b) per
/// LQ entry.
pub fn lq_metadata_bits(lq_entries: usize) -> usize {
    lq_entries * (32 + 10 + 1 + 5 + 1)
}

/// Regenerates Table 3: the full Hermes storage breakdown for a given
/// POPET configuration and LQ size.
pub fn table3(cfg: &PopetConfig, lq_entries: usize) -> Vec<StorageRow> {
    let mut rows = Vec::new();
    for &(feature, bits) in &cfg.features {
        rows.push(StorageRow {
            structure: "POPET weight table".to_string(),
            description: format!(
                "{}: {} x {}b",
                feature.label(),
                1usize << bits,
                cfg.weight_bits
            ),
            bits: (1usize << bits) * cfg.weight_bits as usize,
        });
    }
    rows.push(StorageRow {
        structure: "POPET page buffer".to_string(),
        description: format!("{} x 80b", cfg.page_buffer_entries),
        bits: cfg.page_buffer_entries * 80,
    });
    rows.push(StorageRow {
        structure: "LQ metadata".to_string(),
        description: format!(
            "hashed PC {lq_entries} x 32b; last-4 PC {lq_entries} x 10b; first access {lq_entries} x 1b; weight {lq_entries} x 5b; prediction {lq_entries} x 1b"
        ),
        bits: lq_metadata_bits(lq_entries),
    });
    rows
}

/// Total Hermes storage in bits (the Table 3 bottom line, ≈4 KB).
pub fn hermes_total_bits(cfg: &PopetConfig, lq_entries: usize) -> usize {
    table3(cfg, lq_entries).iter().map(|r| r.bits).sum()
}

/// Regenerates the predictor rows of Table 6 (prefetcher rows live in
/// `hermes-prefetch`).
pub fn table6_predictors() -> Vec<StorageRow> {
    let hmp = Hmp::new();
    let ttp = Ttp::default();
    let popet = Popet::default();
    vec![
        StorageRow {
            structure: "HMP".to_string(),
            description: "local, gshare, and gskew predictors".to_string(),
            bits: hmp.storage_bits(),
        },
        StorageRow {
            structure: "TTP".to_string(),
            description: "metadata budget similar to the L2 cache".to_string(),
            bits: ttp.storage_bits(),
        },
        StorageRow {
            structure: "Hermes with POPET (this work)".to_string(),
            description: "weight tables + page buffer + LQ metadata".to_string(),
            bits: popet.storage_bits() + lq_metadata_bits(128),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermes_total_is_about_4kb() {
        let total = hermes_total_bits(&PopetConfig::paper(), 128);
        let kb = total as f64 / 8.0 / 1024.0;
        assert!(
            (3.5..4.5).contains(&kb),
            "Hermes total {kb} KB (paper: 4.0 KB)"
        );
    }

    #[test]
    fn table3_has_weight_page_lq_rows() {
        let rows = table3(&PopetConfig::paper(), 128);
        assert_eq!(rows.len(), 5 + 1 + 1);
        assert!(rows.iter().any(|r| r.structure.contains("page buffer")));
        assert!(rows.iter().any(|r| r.structure.contains("LQ")));
    }

    #[test]
    fn lq_metadata_matches_paper() {
        // 128 x 49b = 6272 bits = 0.766 KB ≈ the paper's 0.8 KB.
        let kb = lq_metadata_bits(128) as f64 / 8.0 / 1024.0;
        assert!((0.7..0.9).contains(&kb), "LQ metadata {kb} KB");
    }

    #[test]
    fn table6_ordering_popet_smallest_ttp_largest() {
        let rows = table6_predictors();
        let get = |n: &str| rows.iter().find(|r| r.structure.contains(n)).unwrap().bits;
        assert!(get("POPET") < get("HMP"));
        assert!(get("HMP") < get("TTP"));
    }

    #[test]
    fn kb_helper() {
        let r = StorageRow {
            structure: "x".into(),
            description: "y".into(),
            bits: 8192 * 8,
        };
        assert_eq!(r.kb(), 8.0);
    }
}
