//! Second-level speculative-read filtering: a per-PC usefulness gate for
//! Hermes requests plus the per-core recent-coherence-event table that
//! feeds the coherence hints.
//!
//! The shape follows Jamet et al.'s two-level neural off-chip prediction
//! (arXiv:2403.15181): the first level (POPET) decides *whether the load
//! will miss the on-chip hierarchy*, the second level decides *whether
//! acting on that prediction pays*. Under directory-MESI sharing the two
//! questions diverge — a dirty intervention or a racing upgrade is a miss
//! everywhere private yet resolves on-chip, so the speculative DRAM read
//! it would trigger is pure waste. [`SpecReadFilter`] learns, per load
//! PC, whether past speculative reads beat the demand path; on top of the
//! learned counters it applies a hard veto when the coherence hints say
//! the line's data lives on-chip right now.

use hermes_types::{hash_index, LineAddr, SatWeight};

use crate::predictor::CohHints;

/// Index bits of the filter's usefulness-counter table (512 entries).
const FILTER_INDEX_BITS: u32 = 9;

/// Width of each usefulness counter (3-bit signed: \[−4, +3\]).
const FILTER_COUNTER_BITS: u32 = 3;

/// Entries in the recent-remote-Modified line table (per core).
const REMOTE_MOD_BITS: u32 = 6;

/// Entries in the recent-invalidated-page table (per core).
const PAGE_INVAL_BITS: u32 = 5;

/// Sentinel for an empty tag slot (no real line/page hashes to it: line
/// numbers and page numbers are physical-address shards far below 2^64).
const EMPTY: u64 = u64::MAX;

/// The second-level gate on speculative DRAM reads.
///
/// A table of signed saturating usefulness counters indexed by a hash of
/// the load PC. Counters start at zero and the gate opens only at
/// strictly positive counts: speculation must *earn* its DRAM bandwidth.
/// A useful outcome (the load truly went to DRAM) trains up, a wasted
/// one (the load resolved on-chip — e.g. out of a dirty intervention)
/// trains down. Training happens for every predicted-off-chip load,
/// *including suppressed ones*, so a fully closed gate costs exactly one
/// suppressed read per PC phase before reopening — and a fully closed
/// filter degrades Hermes to baseline timing, never below it (a merged
/// demand rides the speculative read for free; only unmerged reads cost
/// bandwidth).
#[derive(Debug, Clone)]
pub struct SpecReadFilter {
    table: Vec<SatWeight>,
}

impl SpecReadFilter {
    /// Builds a closed (zero-counter) filter: every gated PC must prove
    /// one useful outcome before its speculative reads flow.
    pub fn new() -> Self {
        let mut w0 = SatWeight::new_bits(FILTER_COUNTER_BITS);
        w0.set(0);
        Self {
            table: vec![w0; 1 << FILTER_INDEX_BITS],
        }
    }

    fn idx(pc: u64) -> usize {
        hash_index(pc, FILTER_INDEX_BITS)
    }

    /// Whether a predicted-off-chip load at `pc` may launch its
    /// speculative DRAM read. A coherence hint that the line is (or is
    /// about to be) owned by a remote store is a hard veto — the data
    /// provably lives on-chip; otherwise the learned per-PC counter
    /// decides, and only a strictly positive count (at least one more
    /// useful outcome than wasted) opens the gate.
    pub fn allow(&self, pc: u64, hints: CohHints) -> bool {
        if hints.line_remote_mod || hints.upgrade_inflight {
            return false;
        }
        self.table[Self::idx(pc)].get() > 0
    }

    /// Trains on a resolved predicted-off-chip load: `useful` when the
    /// speculative read beat (or would have beaten) the demand path —
    /// i.e. the load was a genuine DRAM fill, not served out of the
    /// directory. The penalty is asymmetric: a wasted read costs double,
    /// because it burned a DRAM queue slot *and* bus bandwidth for
    /// nothing, while a useful one merely moved a fetch earlier. A PC
    /// must therefore stay useful at least two loads in three to hold
    /// the gate open.
    pub fn train(&mut self, pc: u64, useful: bool) {
        let w = &mut self.table[Self::idx(pc)];
        w.train(useful);
        if !useful {
            w.train(false);
        }
    }

    /// Storage in bits (Table 3/6 style accounting).
    pub fn storage_bits(&self) -> usize {
        self.table.len() * FILTER_COUNTER_BITS as usize
    }
}

impl Default for SpecReadFilter {
    fn default() -> Self {
        Self::new()
    }
}

/// A per-core record of recent coherence events, consulted at prediction
/// time to build [`CohHints`].
///
/// Two small direct-mapped tag arrays:
///
/// * **remote-Modified lines** — recorded when a remote store invalidates
///   this core's private copy (upgrade or RFO): the line now lives
///   Modified in another core, so this core's next read is a dirty
///   intervention. Cleared when this core re-acquires the line.
/// * **invalidated pages** — page numbers touched by any invalidation of
///   this core's copies, remote stores and inclusive back-invalidations
///   alike: page-granular contention context.
///
/// Entries age out by direct-mapped replacement; the table is a hint
/// source, never authoritative, so aliasing only perturbs predictions.
#[derive(Debug, Clone)]
pub struct CohEventTable {
    lines: Vec<u64>,
    pages: Vec<u64>,
}

impl CohEventTable {
    /// Builds an empty table.
    pub fn new() -> Self {
        Self {
            lines: vec![EMPTY; 1 << REMOTE_MOD_BITS],
            pages: vec![EMPTY; 1 << PAGE_INVAL_BITS],
        }
    }

    /// Records that `line` was taken Modified by a remote core (this
    /// core's copy was just invalidated by a remote store).
    pub fn record_remote_mod(&mut self, line: LineAddr) {
        let i = hash_index(line.raw(), REMOTE_MOD_BITS);
        self.lines[i] = line.raw();
        self.record_page_inval(line);
    }

    /// Records an invalidation touching `line`'s page (remote store or
    /// inclusive back-invalidation).
    pub fn record_page_inval(&mut self, line: LineAddr) {
        let p = line.page_number();
        let i = hash_index(p, PAGE_INVAL_BITS);
        self.pages[i] = p;
    }

    /// Forgets the remote-Modified mark on `line` (this core re-acquired
    /// it, so the old knowledge is stale).
    pub fn clear_line(&mut self, line: LineAddr) {
        let i = hash_index(line.raw(), REMOTE_MOD_BITS);
        if self.lines[i] == line.raw() {
            self.lines[i] = EMPTY;
        }
    }

    /// Whether `line` was recently observed going remote-Modified.
    pub fn line_remote_mod(&self, line: LineAddr) -> bool {
        self.lines[hash_index(line.raw(), REMOTE_MOD_BITS)] == line.raw()
    }

    /// Whether `line`'s page saw a recent invalidation.
    pub fn page_recent_inval(&self, line: LineAddr) -> bool {
        self.pages[hash_index(line.page_number(), PAGE_INVAL_BITS)] == line.page_number()
    }

    /// Storage in bits: full tags in both arrays (a real implementation
    /// would store partial tags; the accounting is deliberately
    /// conservative).
    pub fn storage_bits(&self) -> usize {
        (self.lines.len() + self.pages.len()) * 64
    }
}

impl Default for CohEventTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn untrained_filter_is_closed_and_one_useful_opens_it() {
        let mut f = SpecReadFilter::new();
        // Closed until the PC proves a useful speculative read…
        assert!(!f.allow(0x400100, CohHints::default()));
        f.train(0x400100, true);
        // …then open, and the veto hints still override the counter.
        assert!(f.allow(0x400100, CohHints::default()));
        assert!(!f.allow(
            0x400100,
            CohHints {
                line_remote_mod: true,
                ..CohHints::default()
            }
        ));
        assert!(!f.allow(
            0x400100,
            CohHints {
                upgrade_inflight: true,
                ..CohHints::default()
            }
        ));
        // A page-level hint alone is context, not a veto.
        assert!(f.allow(
            0x400100,
            CohHints {
                page_recent_inval: true,
                ..CohHints::default()
            }
        ));
    }

    #[test]
    fn filter_learns_to_deny_and_reopens() {
        let mut f = SpecReadFilter::new();
        let pc = 0xBEEF0;
        for _ in 0..3 {
            f.train(pc, true);
        }
        assert!(f.allow(pc, CohHints::default()));
        // A run of wasted speculative reads closes the gate…
        for _ in 0..6 {
            f.train(pc, false);
        }
        assert!(!f.allow(pc, CohHints::default()));
        // …and a phase change back to genuine DRAM misses reopens it
        // (training continues on suppressed loads).
        for _ in 0..8 {
            f.train(pc, true);
        }
        assert!(f.allow(pc, CohHints::default()));
        // Other PCs were never affected.
        assert!(!f.allow(0x12345, CohHints::default()));
    }

    #[test]
    fn event_table_round_trip() {
        let mut t = CohEventTable::new();
        let l = line(0x7000_1234);
        assert!(!t.line_remote_mod(l));
        assert!(!t.page_recent_inval(l));
        t.record_remote_mod(l);
        assert!(t.line_remote_mod(l));
        assert!(t.page_recent_inval(l), "remote-mod implies page inval");
        // Same page, different line: page hint fires, line hint doesn't.
        let sibling = line(l.raw() ^ 1);
        assert_eq!(sibling.page_number(), l.page_number());
        assert!(!t.line_remote_mod(sibling));
        assert!(t.page_recent_inval(sibling));
        // Re-acquiring the line clears the line mark, not the page mark.
        t.clear_line(l);
        assert!(!t.line_remote_mod(l));
        assert!(t.page_recent_inval(l));
    }

    #[test]
    fn event_table_ages_by_replacement() {
        let mut t = CohEventTable::new();
        let a = line(0x10);
        t.record_remote_mod(a);
        assert!(t.line_remote_mod(a));
        // Flood with conflicting lines until a's slot is overwritten.
        let mut evicted = false;
        for n in 0..1_000u64 {
            t.record_remote_mod(line(0x9_0000 + n));
            if !t.line_remote_mod(a) {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "direct-mapped slot never aged out");
    }

    #[test]
    fn storage_accounting_nonzero() {
        assert_eq!(SpecReadFilter::new().storage_bits(), 512 * 3);
        assert!(CohEventTable::new().storage_bits() > 0);
    }
}
