//! Fixed-size bucketed histograms for latency and occupancy
//! distributions.
//!
//! End-of-run means hide the shape of a latency distribution — a DRAM
//! queue that is empty 99% of the time and 40-deep the other 1% averages
//! to "fine" while destroying tail latency. [`Hist`] keeps 32 buckets in
//! a fixed `Copy` array (no allocation, `Eq`-comparable, safe to embed
//! in stats structs that cross thread boundaries) with two bucketing
//! schemes:
//!
//! * [`Hist::record_log2`] — powers-of-two buckets for latencies: bucket
//!   0 holds the value 0, bucket *i* ≥ 1 holds values in
//!   [2^(i−1), 2^i − 1], and bucket 31 saturates (≥ 2^30).
//! * [`Hist::record_linear`] — unit-width buckets for small occupancies:
//!   bucket *i* holds the value *i*, with bucket 31 saturating (≥ 31).
//!
//! Percentiles are resolved to the *upper bound* of the containing
//! bucket, which is deterministic and errs pessimistic — the right bias
//! for tail-latency reporting.

/// A 32-bucket histogram of `u64` samples. See [module docs](self) for
/// the bucketing schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    /// Raw bucket counts; interpretation depends on which `record_*`
    /// method filled them (callers must not mix schemes in one `Hist`).
    pub buckets: [u64; 32],
}

/// Number of buckets in a [`Hist`].
pub const HIST_BUCKETS: usize = 32;

impl Default for Hist {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The log2 bucket index for `v`: 0 for 0, else
    /// `min(64 - leading_zeros(v), 31)`, so bucket *i* ≥ 1 covers
    /// [2^(i−1), 2^i − 1] and bucket 31 saturates.
    pub fn log2_bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records `v` under power-of-two bucketing.
    pub fn record_log2(&mut self, v: u64) {
        self.buckets[Self::log2_bucket(v)] += 1;
    }

    /// Records `v` under unit-width bucketing (bucket 31 saturates).
    pub fn record_linear(&mut self, v: u64) {
        self.buckets[(v as usize).min(HIST_BUCKETS - 1)] += 1;
    }

    /// The inclusive upper bound of bucket `i` under log2 bucketing
    /// (`u64::MAX` for the saturated last bucket).
    pub fn log2_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= HIST_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Index of the bucket containing the `q`-quantile sample
    /// (`0.0 ..= 1.0`) by cumulative count; `None` when empty.
    /// Deterministic: integer thresholding, no interpolation.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        // Rank of the quantile sample, 1-based, clamped into [1, n].
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(HIST_BUCKETS - 1)
    }

    /// The `q`-quantile under log2 bucketing, reported as the containing
    /// bucket's inclusive upper bound (pessimistic); 0.0 when empty. The
    /// saturated bucket reports 2^31 rather than `u64::MAX` so the value
    /// stays meaningful in reports.
    pub fn quantile_log2(&self, q: f64) -> f64 {
        match self.quantile_bucket(q) {
            None => 0.0,
            Some(i) if i >= HIST_BUCKETS - 1 => (1u64 << 31) as f64,
            Some(i) => Self::log2_upper_bound(i) as f64,
        }
    }

    /// The `q`-quantile under linear bucketing: the bucket index itself
    /// (the saturated bucket reports 31); 0.0 when empty.
    pub fn quantile_linear(&self, q: f64) -> f64 {
        self.quantile_bucket(q).map(|i| i as f64).unwrap_or(0.0)
    }

    /// Mean under linear bucketing, using each bucket's index as its
    /// value (the saturated bucket contributes 31 per sample); 0.0 when
    /// empty.
    pub fn mean_linear(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| i as u64 * b)
            .sum();
        sum as f64 / n as f64
    }

    /// Merges `other`'s counts into `self` (same bucketing scheme
    /// assumed).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(Hist::log2_bucket(0), 0);
        assert_eq!(Hist::log2_bucket(1), 1);
        assert_eq!(Hist::log2_bucket(2), 2);
        assert_eq!(Hist::log2_bucket(3), 2);
        assert_eq!(Hist::log2_bucket(4), 3);
        assert_eq!(Hist::log2_bucket(7), 3);
        assert_eq!(Hist::log2_bucket(8), 4);
        // Bucket i covers [2^(i-1), 2^i - 1] exactly.
        for i in 1..30usize {
            assert_eq!(Hist::log2_bucket(1 << (i - 1)), i, "low edge of {i}");
            assert_eq!(Hist::log2_bucket((1 << i) - 1), i, "high edge of {i}");
        }
    }

    #[test]
    fn log2_saturates_at_last_bucket() {
        assert_eq!(Hist::log2_bucket(1 << 30), 31);
        assert_eq!(Hist::log2_bucket(1 << 40), 31);
        assert_eq!(Hist::log2_bucket(u64::MAX), 31);
        let mut h = Hist::new();
        h.record_log2(u64::MAX);
        h.record_log2(1 << 62);
        assert_eq!(h.buckets[31], 2);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn linear_saturates_at_last_bucket() {
        let mut h = Hist::new();
        h.record_linear(0);
        h.record_linear(30);
        h.record_linear(31);
        h.record_linear(1000);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[30], 1);
        assert_eq!(h.buckets[31], 2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let mut h = Hist::new();
        // 90 samples at 10 (bucket 4, ub 15), 10 samples at 1000
        // (bucket 10, ub 1023).
        for _ in 0..90 {
            h.record_log2(10);
        }
        for _ in 0..10 {
            h.record_log2(1000);
        }
        assert_eq!(h.quantile_log2(0.5), 15.0);
        assert_eq!(h.quantile_log2(0.90), 15.0);
        assert_eq!(h.quantile_log2(0.95), 1023.0);
        assert_eq!(h.quantile_log2(0.99), 1023.0);
        assert_eq!(h.quantile_log2(1.0), 1023.0);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Hist::new();
        assert_eq!(h.quantile_log2(0.5), 0.0);
        assert_eq!(h.quantile_linear(0.99), 0.0);
        assert_eq!(h.mean_linear(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn linear_mean_and_quantile() {
        let mut h = Hist::new();
        for v in [0u64, 0, 2, 2, 4, 4, 4, 4] {
            h.record_linear(v);
        }
        assert_eq!(h.mean_linear(), 2.5);
        assert_eq!(h.quantile_linear(0.5), 2.0);
        assert_eq!(h.quantile_linear(0.95), 4.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record_log2(5);
        b.record_log2(5);
        b.record_log2(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets[Hist::log2_bucket(5)], 2);
    }

    #[test]
    fn default_is_empty_and_eq() {
        assert_eq!(Hist::default(), Hist::new());
        assert!(Hist::default().is_empty());
    }
}
