//! Fundamental types shared across the Hermes reproduction.
//!
//! This crate holds the vocabulary that every other crate speaks:
//! [`VirtAddr`] / [`PhysAddr`] / [`LineAddr`] newtypes with cache-line and
//! page arithmetic, saturating counters used by perceptron weights and
//! branch/replacement predictors, the hashing helpers used to index
//! perceptron weight tables, and small summary-statistics utilities used by
//! the experiment harness (geometric means, box-plot summaries).
//!
//! # Example
//!
//! ```
//! use hermes_types::{VirtAddr, LINE_SIZE};
//!
//! let a = VirtAddr::new(0x1234_5678);
//! assert_eq!(a.byte_offset_in_line(), 0x78 % LINE_SIZE as u64);
//! assert_eq!(a.line().base().raw(), 0x1234_5640);
//! ```

pub mod addr;
pub mod counter;
pub mod hashing;
pub mod hist;
pub mod summary;

pub use addr::{
    LineAddr, PhysAddr, VirtAddr, LINE_BITS, LINE_SIZE, PAGE_BITS, PAGE_SIZE, SHARED_BASE,
    SHARED_SIZE,
};
pub use counter::{SatCounter, SatWeight};
pub use hashing::{fold_bits, hash_index, mix64};
pub use hist::{Hist, HIST_BUCKETS};
pub use summary::{geomean, mean, BoxplotSummary};

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;

/// Identifier of a simulated core in a multi-core system.
pub type CoreId = usize;
