//! Address newtypes and cache-line / page arithmetic.
//!
//! The simulator distinguishes three address spaces:
//!
//! * [`VirtAddr`] — program (virtual) addresses carried by the instruction
//!   trace. POPET's program features (§6.1.3 of the paper) are computed from
//!   virtual addresses.
//! * [`PhysAddr`] — post-translation addresses used by the cache hierarchy
//!   and the DRAM address mapping.
//! * [`LineAddr`] — a 64-byte-aligned cache-line number (an address shifted
//!   right by [`LINE_BITS`]); the unit the memory system traffics in.

use std::fmt;

/// Cache-line size in bytes (64 B, Table 4 of the paper).
pub const LINE_SIZE: usize = 64;
/// log2 of [`LINE_SIZE`].
pub const LINE_BITS: u32 = 6;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_BITS: u32 = 12;
/// Base of the inter-core *shared* virtual region. Virtual addresses in
/// `[SHARED_BASE, SHARED_BASE + SHARED_SIZE)` translate identically for
/// every core (the address-space convention for shared data
/// structures); everything outside keeps the historical
/// per-core-disjoint mapping. The range is chosen in the gap no
/// pre-existing workload touches: the per-core heap layout tops out
/// near 2^44 and the compute-dilution "stack" region sits at
/// 0x7FFF_0000_0000.
pub const SHARED_BASE: u64 = 0x2000_0000_0000;
/// Size of the shared virtual region (64 GiB — 256 of the generators'
/// 256 MiB regions).
pub const SHARED_SIZE: u64 = 0x10_0000_0000;

macro_rules! addr_common {
    ($t:ident, $doc_space:literal) => {
        impl $t {
            /// Creates an address in the $doc_space address space.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The cache line this address falls into.
            #[inline]
            pub const fn line(self) -> LineAddr {
                LineAddr(self.0 >> LINE_BITS)
            }

            /// Page number (address >> 12).
            #[inline]
            pub const fn page_number(self) -> u64 {
                self.0 >> PAGE_BITS
            }

            /// Byte offset within the 64 B cache line (bits 0..6).
            #[inline]
            pub const fn byte_offset_in_line(self) -> u64 {
                self.0 & (LINE_SIZE as u64 - 1)
            }

            /// 4-byte-word offset within the cache line (bits 2..6).
            #[inline]
            pub const fn word_offset_in_line(self) -> u64 {
                (self.0 >> 2) & ((LINE_SIZE as u64 / 4) - 1)
            }

            /// Cache-line offset within the 4 KiB page (bits 6..12), the
            /// "cacheline offset" used by POPET features (1)/(4).
            #[inline]
            pub const fn line_offset_in_page(self) -> u64 {
                (self.0 >> LINE_BITS) & ((PAGE_SIZE as u64 / LINE_SIZE as u64) - 1)
            }

            /// Byte offset within the 4 KiB page (bits 0..12).
            #[inline]
            pub const fn offset_in_page(self) -> u64 {
                self.0 & (PAGE_SIZE as u64 - 1)
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $t {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

/// A virtual (program) address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);
addr_common!(VirtAddr, "virtual");

impl VirtAddr {
    /// Whether the address falls in the inter-core shared region (see
    /// [`SHARED_BASE`]). A *virtual*-address-space property: physical
    /// frames are hash-scattered, so the numeric test would be
    /// meaningless on a [`PhysAddr`].
    #[inline]
    pub const fn is_shared(self) -> bool {
        self.0 >= SHARED_BASE && self.0 < SHARED_BASE + SHARED_SIZE
    }
}

/// A physical (post-translation) address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);
addr_common!(PhysAddr, "physical");

impl PhysAddr {
    /// Builds a physical address from a physical frame number and a page
    /// offset.
    #[inline]
    pub const fn from_frame(pfn: u64, offset_in_page: u64) -> Self {
        Self((pfn << PAGE_BITS) | (offset_in_page & (PAGE_SIZE as u64 - 1)))
    }
}

/// A cache-line number: an address with the low [`LINE_BITS`] bits stripped.
///
/// `LineAddr` is what MSHRs, cache tags, the memory-controller read queue,
/// and Hermes-request matching operate on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line *number* (not a byte address).
    #[inline]
    pub const fn new(line_number: u64) -> Self {
        Self(line_number)
    }

    /// The raw line number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of the line (as a physical address).
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_BITS)
    }

    /// Page number the line falls into.
    #[inline]
    pub const fn page_number(self) -> u64 {
        self.0 >> (PAGE_BITS - LINE_BITS)
    }

    /// Cache-line offset within its 4 KiB page (0..64).
    #[inline]
    pub const fn offset_in_page(self) -> u64 {
        self.0 & ((PAGE_SIZE as u64 / LINE_SIZE as u64) - 1)
    }

    /// Returns the line `delta` lines away (saturating at zero for negative
    /// deltas that would underflow).
    #[inline]
    pub fn offset_by(self, delta: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0 << LINE_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_math() {
        let a = VirtAddr::new(0xdead_beef);
        assert_eq!(a.byte_offset_in_line(), 0xdead_beef & 63);
        assert_eq!(a.line().raw(), 0xdead_beef >> 6);
        assert_eq!(a.page_number(), 0xdead_beef >> 12);
        assert_eq!(a.line_offset_in_page(), (0xdead_beef >> 6) & 63);
        assert_eq!(a.offset_in_page(), 0xdead_beef & 4095);
    }

    #[test]
    fn word_offset() {
        let a = VirtAddr::new(0b101100); // byte 44 -> word 11
        assert_eq!(a.word_offset_in_line(), 11);
    }

    #[test]
    fn line_addr_round_trip() {
        let p = PhysAddr::new(0x12345);
        let l = p.line();
        assert_eq!(l.base().raw(), 0x12345 & !63);
        assert_eq!(l.offset_in_page(), (0x12345 >> 6) & 63);
    }

    #[test]
    fn phys_from_frame() {
        let p = PhysAddr::from_frame(0x42, 0x123);
        assert_eq!(p.raw(), (0x42 << 12) | 0x123);
        assert_eq!(p.page_number(), 0x42);
    }

    #[test]
    fn line_offset_by_is_wrapping_add() {
        let l = LineAddr::new(100);
        assert_eq!(l.offset_by(5).raw(), 105);
        assert_eq!(l.offset_by(-5).raw(), 95);
    }

    #[test]
    fn shared_region_classification() {
        assert!(!VirtAddr::new(0x1000_0000_0000).is_shared()); // heap base
        assert!(!VirtAddr::new(0x1FFF_FFFF_FFFF).is_shared());
        assert!(VirtAddr::new(SHARED_BASE).is_shared());
        assert!(VirtAddr::new(SHARED_BASE + 0x1234).is_shared());
        assert!(!VirtAddr::new(SHARED_BASE + SHARED_SIZE).is_shared());
        // The dilution wrapper's hot-stack region must stay per-core.
        assert!(!VirtAddr::new(0x7FFF_0000_0000).is_shared());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{:?}", VirtAddr::new(0)).is_empty());
        assert!(!format!("{}", LineAddr::new(1)).is_empty());
    }
}
