//! Saturating counters.
//!
//! Two flavours are used throughout the reproduction:
//!
//! * [`SatWeight`] — a signed saturating integer used for perceptron weights
//!   (POPET's 5-bit weights clamp to \[−16, +15\], §6.1 of the paper) and for
//!   perceptron branch-predictor weights.
//! * [`SatCounter`] — an unsigned saturating counter used by bimodal /
//!   gshare / gskew hit-miss predictor components, SHiP's signature counters,
//!   and prefetcher confidence estimators.

/// A signed saturating integer confined to an inclusive `[min, max]` range.
///
/// # Example
///
/// ```
/// use hermes_types::SatWeight;
///
/// let mut w = SatWeight::new_bits(5); // 5-bit: [-16, 15]
/// for _ in 0..40 { w.increment(); }
/// assert_eq!(w.get(), 15);
/// for _ in 0..64 { w.decrement(); }
/// assert_eq!(w.get(), -16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatWeight {
    value: i16,
    min: i16,
    max: i16,
}

impl SatWeight {
    /// A weight constrained to the range of a `bits`-wide two's-complement
    /// integer: `[-2^(bits-1), 2^(bits-1) - 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 15.
    pub fn new_bits(bits: u32) -> Self {
        assert!(
            (1..=15).contains(&bits),
            "weight width out of range: {bits}"
        );
        let max = (1i16 << (bits - 1)) - 1;
        let min = -(1i16 << (bits - 1));
        Self { value: 0, min, max }
    }

    /// A weight with explicit inclusive bounds, starting at 0 (clamped).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn with_bounds(min: i16, max: i16) -> Self {
        assert!(min <= max, "invalid bounds {min}..={max}");
        Self {
            value: 0i16.clamp(min, max),
            min,
            max,
        }
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> i16 {
        self.value
    }

    /// Inclusive lower bound.
    #[inline]
    pub fn min(self) -> i16 {
        self.min
    }

    /// Inclusive upper bound.
    #[inline]
    pub fn max(self) -> i16 {
        self.max
    }

    /// Adds one, saturating at the upper bound.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Subtracts one, saturating at the lower bound.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > self.min {
            self.value -= 1;
        }
    }

    /// Moves the weight one step toward the given outcome: increment on
    /// `true`, decrement on `false` — the POPET §6.1.2 update rule.
    #[inline]
    pub fn train(&mut self, toward_positive: bool) {
        if toward_positive {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Sets the value, clamping to bounds.
    #[inline]
    pub fn set(&mut self, v: i16) {
        self.value = v.clamp(self.min, self.max);
    }

    /// Whether the weight sits at its positive or negative rail.
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.value == self.min || self.value == self.max
    }
}

impl Default for SatWeight {
    /// A 5-bit weight (POPET's width).
    fn default() -> Self {
        Self::new_bits(5)
    }
}

/// An unsigned saturating counter in `[0, 2^bits - 1]`.
///
/// # Example
///
/// ```
/// use hermes_types::SatCounter;
///
/// let mut c = SatCounter::new(2); // 2-bit: 0..=3
/// c.increment();
/// c.increment();
/// assert!(c.is_set()); // >= midpoint
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u16,
    max: u16,
}

impl SatCounter {
    /// A counter of the given bit width, initialised to the weakly-not-taken
    /// midpoint minus one (i.e. `max/2`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 15.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=15).contains(&bits),
            "counter width out of range: {bits}"
        );
        let max = (1u16 << bits) - 1;
        Self {
            value: max / 2,
            max,
        }
    }

    /// A counter initialised to zero.
    pub fn new_zero(bits: u32) -> Self {
        let mut c = Self::new(bits);
        c.value = 0;
        c
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u16 {
        self.value
    }

    /// Maximum representable value.
    #[inline]
    pub fn max(self) -> u16 {
        self.max
    }

    /// Adds one, saturating.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Subtracts one, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Trains toward an outcome (increment on `true`).
    #[inline]
    pub fn train(&mut self, toward: bool) {
        if toward {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Whether the counter is in its upper half (the "predict taken/miss"
    /// region of a bimodal counter).
    #[inline]
    pub fn is_set(self) -> bool {
        self.value > self.max / 2
    }

    /// Resets to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl Default for SatCounter {
    /// A 2-bit counter, the classic bimodal width.
    fn default() -> Self {
        Self::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_bits_bounds() {
        let w = SatWeight::new_bits(5);
        assert_eq!(w.min(), -16);
        assert_eq!(w.max(), 15);
        assert_eq!(w.get(), 0);
    }

    #[test]
    fn weight_saturates_both_rails() {
        let mut w = SatWeight::new_bits(3); // [-4, 3]
        for _ in 0..10 {
            w.increment();
        }
        assert_eq!(w.get(), 3);
        assert!(w.is_saturated());
        for _ in 0..20 {
            w.decrement();
        }
        assert_eq!(w.get(), -4);
        assert!(w.is_saturated());
    }

    #[test]
    fn weight_train_direction() {
        let mut w = SatWeight::new_bits(5);
        w.train(true);
        assert_eq!(w.get(), 1);
        w.train(false);
        w.train(false);
        assert_eq!(w.get(), -1);
    }

    #[test]
    fn weight_set_clamps() {
        let mut w = SatWeight::new_bits(5);
        w.set(100);
        assert_eq!(w.get(), 15);
        w.set(-100);
        assert_eq!(w.get(), -16);
    }

    #[test]
    #[should_panic]
    fn weight_zero_bits_panics() {
        let _ = SatWeight::new_bits(0);
    }

    #[test]
    fn counter_midpoint_init() {
        let c = SatCounter::new(2);
        assert_eq!(c.get(), 1);
        assert!(!c.is_set());
    }

    #[test]
    fn counter_saturates() {
        let mut c = SatCounter::new(2);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.get(), 3);
        for _ in 0..10 {
            c.decrement();
        }
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_set_threshold() {
        let mut c = SatCounter::new_zero(3); // max 7, midpoint 3
        assert!(!c.is_set());
        for _ in 0..4 {
            c.increment();
        }
        assert!(c.is_set());
    }
}
