//! Summary statistics for the experiment harness.
//!
//! The paper reports geometric-mean speedups (Eq. 2 normalisation per
//! workload, then geomean per category), averages, and box-and-whisker
//! distributions (Fig. 15a). These helpers compute those summaries.

/// Arithmetic mean of a slice; returns 0.0 for an empty slice.
///
/// # Example
///
/// ```
/// use hermes_types::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of a slice of positive values; returns 0.0 for an empty
/// slice.
///
/// Used for speedup aggregation exactly as the paper does ("geomean speedup
/// over the no-prefetching system").
///
/// # Panics
///
/// Panics (in debug builds) if any value is non-positive — a speedup of
/// zero or below indicates a broken run.
///
/// # Example
///
/// ```
/// use hermes_types::geomean;
/// let g = geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(
        xs.iter().all(|&x| x > 0.0),
        "geomean over non-positive value"
    );
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Five-number summary plus mean, matching the box-and-whiskers description
/// in the paper's Fig. 15 footnote (quartile box, 1.5×IQR whiskers, mean
/// marked by a cross).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean (the "cross" in the paper's plots).
    pub mean: f64,
    /// Lower whisker: smallest observation ≥ q1 − 1.5·IQR.
    pub whisker_lo: f64,
    /// Upper whisker: largest observation ≤ q3 + 1.5·IQR.
    pub whisker_hi: f64,
}

impl BoxplotSummary {
    /// Computes the summary from raw samples.
    ///
    /// Returns `None` for an empty input.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot samples"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks.
            let h = p * (v.len() as f64 - 1.0);
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (h - lo as f64) * (v[hi] - v[lo])
            }
        };
        let q1 = q(0.25);
        let median = q(0.5);
        let q3 = q(0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(v[0]);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(v[v.len() - 1]);
        Some(Self {
            min: v[0],
            q1,
            median,
            q3,
            max: v[v.len() - 1],
            mean: mean(&v),
            whisker_lo,
            whisker_hi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_of_constant() {
        let g = geomean(&[3.0, 3.0, 3.0]);
        assert!((g - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_below_arith_mean() {
        let xs = [1.0, 2.0, 10.0];
        assert!(geomean(&xs) < mean(&xs));
    }

    #[test]
    fn boxplot_simple() {
        let s = BoxplotSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn boxplot_empty_none() {
        assert!(BoxplotSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn boxplot_whiskers_exclude_outlier() {
        // 100.0 is an outlier vs the 1..9 cluster.
        let mut xs: Vec<f64> = (1..=9).map(|x| x as f64).collect();
        xs.push(100.0);
        let s = BoxplotSummary::from_samples(&xs).unwrap();
        assert!(s.whisker_hi < 100.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn boxplot_single_sample() {
        let s = BoxplotSummary::from_samples(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.whisker_lo, 7.0);
        assert_eq!(s.whisker_hi, 7.0);
    }
}
