//! Hash helpers for indexing perceptron weight tables and predictor
//! structures.
//!
//! The hashed-perceptron model (§6.1 of the paper, after Tarjan & Skadron)
//! hashes each feature value down to a small table index. We use a cheap
//! 64-bit finalizer ([`mix64`], the splitmix64 finalizer) followed by an
//! XOR-fold to the table's index width ([`fold_bits`]). These functions are
//! deterministic, allocation-free, and shared by POPET, the perceptron
//! branch predictor, SHiP signatures, and prefetcher table indexing.

/// Finalizes a 64-bit value into a well-mixed 64-bit hash.
///
/// This is the splitmix64 finalizer; it is bijective, so distinct inputs
/// never collide before folding.
///
/// # Example
///
/// ```
/// use hermes_types::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// XOR-folds a 64-bit value down to `bits` bits (an index in
/// `0..2^bits`).
///
/// Folding (rather than truncating) lets every input bit influence the
/// index, which is what keeps small perceptron tables from aliasing on the
/// low bits only.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 32.
///
/// # Example
///
/// ```
/// use hermes_types::fold_bits;
/// let idx = fold_bits(0xdead_beef_cafe_f00d, 10);
/// assert!(idx < 1024);
/// ```
#[inline]
pub fn fold_bits(value: u64, bits: u32) -> usize {
    assert!((1..=32).contains(&bits), "fold width out of range: {bits}");
    let mask = (1u64 << bits) - 1;
    let mut v = value;
    let mut acc = 0u64;
    while v != 0 {
        acc ^= v & mask;
        v >>= bits;
    }
    acc as usize
}

/// Hashes `value` into an index for a table of `1 << bits` entries.
///
/// Equivalent to `fold_bits(mix64(value), bits)`; this is the standard
/// indexing path for all hashed-perceptron tables in this repository.
#[inline]
pub fn hash_index(value: u64, bits: u32) -> usize {
    fold_bits(mix64(value), bits)
}

/// Combines a sequence of values into one 64-bit key via shifted XOR.
///
/// POPET's "last-4 load PCs" feature (§6.1.3, feature 5) is "computed as a
/// shifted-XOR of last four load PCs"; this helper implements exactly that
/// folding, with the most recent element shifted least.
///
/// # Example
///
/// ```
/// use hermes_types::hashing::shifted_xor;
/// let k = shifted_xor(&[0x400100, 0x400104, 0x400108, 0x40010c], 2);
/// assert_ne!(k, 0);
/// ```
#[inline]
pub fn shifted_xor(values: &[u64], shift_per_element: u32) -> u64 {
    let mut acc = 0u64;
    for (i, v) in values.iter().enumerate() {
        acc ^= v << (shift_per_element * i as u32);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(123), mix64(123));
        // Consecutive inputs should land far apart after mixing.
        let a = mix64(1000);
        let b = mix64(1001);
        assert_ne!(a & 0xFFFF, b & 0xFFFF);
    }

    #[test]
    fn fold_bits_in_range() {
        for bits in 1..=20 {
            let idx = fold_bits(u64::MAX, bits);
            assert!(idx < (1usize << bits));
        }
    }

    #[test]
    fn fold_bits_uses_high_bits() {
        // Two values differing only in high bits must be able to differ
        // after folding.
        let a = fold_bits(0x1 << 60, 10);
        let b = fold_bits(0x2 << 60, 10);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn fold_bits_rejects_zero_width() {
        let _ = fold_bits(1, 0);
    }

    #[test]
    fn hash_index_bounds() {
        for v in 0..1000u64 {
            assert!(hash_index(v, 7) < 128);
        }
    }

    #[test]
    fn shifted_xor_order_sensitive() {
        let a = shifted_xor(&[1, 2, 3, 4], 3);
        let b = shifted_xor(&[4, 3, 2, 1], 3);
        assert_ne!(a, b);
    }

    #[test]
    fn shifted_xor_empty_is_zero() {
        assert_eq!(shifted_xor(&[], 3), 0);
    }
}
