//! Minimal JSON helpers for the probe's hand-rolled exports: string
//! escaping on the way out, and a recursive-descent syntax checker used
//! by tests and by `probe_demo` to self-validate its artifacts before
//! declaring success. The workspace is vendored-only (no serde), so the
//! checker is deliberately small: it verifies syntax, not schema.

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Checks that `s` is exactly one syntactically valid JSON value
/// (surrounding whitespace allowed). Returns the byte offset and a
/// message on the first error.
pub fn validate_json(s: &str) -> Result<(), (usize, String)> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err((p.i, "trailing characters after JSON value".into()));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, (usize, String)> {
        Err((self.i, msg.into()))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), (usize, String)> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<(), (usize, String)> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => self.err("expected a JSON value"),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<(), (usize, String)> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn array(&mut self) -> Result<(), (usize, String)> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn string(&mut self) -> Result<(), (usize, String)> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return self.err("invalid \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("invalid escape sequence"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), (usize, String)> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), (usize, String)> {
            let start = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            if p.i == start {
                return p.err("expected digits");
            }
            Ok(())
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), (usize, String)> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"esc \\\" \\u00ff\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}",
            "  [1, 2]  ",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s:?} rejected: {e:?}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{'a': 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\": 01x}",
            "[1, 2] trailing",
            "\"bad \\q escape\"",
        ] {
            assert!(validate_json(s).is_err(), "{s:?} wrongly accepted");
        }
    }

    #[test]
    fn escaped_output_round_trips_through_validator() {
        let hostile = "quote\" slash\\ nl\n tab\t ctl\u{2}";
        let doc = format!("{{\"k\": \"{}\"}}", escape_json(hostile));
        validate_json(&doc).expect("escaped string must validate");
    }
}
