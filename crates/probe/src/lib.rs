//! `hermes-probe` — the default-off observability layer of the Hermes
//! reproduction.
//!
//! Every subsystem finding so far was diagnosed from end-of-run
//! aggregate counters; this crate gives the simulator the telemetry the
//! paper's own analysis is built on:
//!
//! 1. **Per-load lifecycle tracing** — a deterministic 1-in-N sample of
//!    demand loads (by per-core sequence token, no RNG) records a
//!    timeline of events (issue, POPET prediction + confidence, filter
//!    verdict, per-level miss, speculative-read issue, TLB walk
//!    start/end, coherence intervention, DRAM enqueue/fill, retire),
//!    exported as Chrome/Perfetto `trace_event` JSON
//!    ([`ProbeReport::to_chrome_trace`]) so a run opens in
//!    `ui.perfetto.dev`.
//! 2. **Interval metrics timeline** — every K cycles of the measurement
//!    window a snapshot of per-core IPC, per-level MPKI, predictor
//!    confusion-matrix deltas, speculative-read useful/wasted counts,
//!    and DRAM queue occupancy lands in a JSONL stream
//!    ([`ProbeReport::to_interval_jsonl`]), making phase behaviour
//!    visible over time.
//! 3. **Latency histograms** — log2-bucketed distributions
//!    ([`hermes_types::Hist`]) of load latency per serving level
//!    (off-chip latency included) and page-walk latency.
//!
//! The probe is held by the simulator as `Option<Box<Probe>>` behind
//! `SystemConfig::probe`: with `None` (the default everywhere) no probe
//! code runs at all and results are byte-identical to a probe-less
//! build. With `Some`, every hook is observation-only — the probe never
//! feeds back into timing, so simulated statistics are bit-identical
//! either way (pinned by the `tests/probe.rs` equivalence suite).
//!
//! This crate depends only on `hermes-types`; the simulator passes
//! primitives (core ids, tokens, raw line addresses, cycle counts) so no
//! dependency cycle forms.

pub mod interval;
pub mod json;
pub mod trace;

use std::collections::HashMap;

use hermes_types::{Cycle, Hist};

pub use interval::{CoreInterval, IntervalInput, IntervalSnapshot};
pub use json::{escape_json, validate_json};
pub use trace::{LoadEvent, TracedLoad};

/// Which class of serving level a finished load's latency belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatClass {
    /// First-level hit.
    L1,
    /// Intermediate-level hit.
    L2,
    /// Last-level (shared) hit.
    Llc,
    /// Off-chip (DRAM or coherence-served at the off-chip boundary).
    Offchip,
}

impl LatClass {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            LatClass::L1 => "l1",
            LatClass::L2 => "l2",
            LatClass::Llc => "llc",
            LatClass::Offchip => "offchip",
        }
    }
}

/// Probe configuration. All knobs are deterministic — sampling is by
/// sequence token, never by RNG or wall clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Trace one load in `sample_period` (by per-core load token;
    /// `token % sample_period == 0` is traced). 0 disables tracing.
    pub sample_period: u64,
    /// Cycles between interval snapshots during the measurement window.
    /// 0 disables the interval timeline.
    pub interval: u64,
    /// Hard cap on traced loads per run, bounding trace memory and
    /// export size.
    pub max_trace_loads: usize,
}

impl ProbeConfig {
    /// Defaults sized for a demo/diagnostic run: 1-in-64 loads traced,
    /// a snapshot every 20k cycles, at most 4096 traced loads.
    pub fn baseline() -> Self {
        Self {
            sample_period: 64,
            interval: 20_000,
            max_trace_loads: 4096,
        }
    }

    /// Replaces the trace sampling period.
    pub fn with_sample_period(mut self, p: u64) -> Self {
        self.sample_period = p;
        self
    }

    /// Replaces the interval-snapshot length.
    pub fn with_interval(mut self, k: u64) -> Self {
        self.interval = k;
        self
    }

    /// Replaces the traced-load cap.
    pub fn with_max_trace_loads(mut self, n: usize) -> Self {
        self.max_trace_loads = n;
        self
    }
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Everything a probe collected over one measurement window, detached
/// from the live simulator and ready for export. Carried on `RunStats`
/// when the probe was enabled.
#[derive(Debug, Clone, Default)]
pub struct ProbeReport {
    /// Load latency by serving class, log2-bucketed. Indexed by
    /// [`LatClass`] discriminant order: l1, l2, llc, offchip.
    pub lat: [Hist; 4],
    /// Completed page-walk latency, log2-bucketed.
    pub lat_walk: Hist,
    /// Sampled load lifecycles (retired and still-in-flight).
    pub traces: Vec<TracedLoad>,
    /// Interval timeline, oldest first.
    pub intervals: Vec<IntervalSnapshot>,
}

impl ProbeReport {
    /// The latency histogram for `class`.
    pub fn lat_hist(&self, class: LatClass) -> &Hist {
        &self.lat[class as usize]
    }
}

/// The live collector threaded through the memory hierarchy. All
/// methods are observation-only; none returns data the simulator acts
/// on.
#[derive(Debug)]
pub struct Probe {
    cfg: ProbeConfig,
    traces: Vec<TracedLoad>,
    /// Active traced loads by packed (core << 48 | token) key.
    by_key: HashMap<u64, usize>,
    /// Active traced loads by raw line address (several sampled loads
    /// may target one line).
    by_line: HashMap<u64, Vec<usize>>,
    lat: [Hist; 4],
    lat_walk: Hist,
    intervals: Vec<IntervalSnapshot>,
    /// Previous cumulative totals, for interval deltas.
    prev: Option<IntervalInput>,
}

fn key(core: usize, token: u64) -> u64 {
    ((core as u64) << 48) | token
}

impl Probe {
    /// Builds a probe for `cfg`.
    pub fn new(cfg: ProbeConfig) -> Self {
        Self {
            cfg,
            traces: Vec::new(),
            by_key: HashMap::new(),
            by_line: HashMap::new(),
            lat: [Hist::new(); 4],
            lat_walk: Hist::new(),
            intervals: Vec::new(),
            prev: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProbeConfig {
        &self.cfg
    }

    /// Drops everything collected so far (warmup → measurement
    /// boundary): exports describe the measurement window only.
    pub fn reset(&mut self) {
        self.traces.clear();
        self.by_key.clear();
        self.by_line.clear();
        self.lat = [Hist::new(); 4];
        self.lat_walk = Hist::new();
        self.intervals.clear();
        self.prev = None;
    }

    /// Whether the load identified by `token` would be sampled.
    pub fn samples(&self, token: u64) -> bool {
        self.cfg.sample_period != 0 && token.is_multiple_of(self.cfg.sample_period)
    }

    /// A demand load issued. Starts a trace if the token falls on the
    /// sampling grid and the cap has room.
    pub fn on_issue(&mut self, core: usize, token: u64, pc: u64, line: u64, now: Cycle) {
        if !self.samples(token) || self.traces.len() >= self.cfg.max_trace_loads {
            return;
        }
        let idx = self.traces.len();
        self.traces
            .push(TracedLoad::new(core, token, pc, line, now));
        self.by_key.insert(key(core, token), idx);
        self.by_line.entry(line).or_default().push(idx);
    }

    /// The off-chip predictor spoke at issue: outcome, perceptron
    /// confidence, whether a speculative read fired, and the
    /// second-level filter's verdict (`None` when the filter was not
    /// consulted).
    pub fn on_prediction(
        &mut self,
        core: usize,
        token: u64,
        go_offchip: bool,
        confidence: i32,
        fired: bool,
        filter_allowed: Option<bool>,
    ) {
        let Some(&idx) = self.by_key.get(&key(core, token)) else {
            return;
        };
        let t = &mut self.traces[idx];
        let verdict = match filter_allowed {
            None => "",
            Some(true) => " filter=allow",
            Some(false) => " filter=veto",
        };
        t.push(
            t.issue,
            "predict",
            format!("offchip={go_offchip} conf={confidence} fired={fired}{verdict}"),
        );
    }

    /// A token-keyed lifecycle event (walk start/end, retire-adjacent
    /// markers).
    pub fn on_load_event(&mut self, core: usize, token: u64, now: Cycle, kind: &'static str) {
        if let Some(&idx) = self.by_key.get(&key(core, token)) {
            self.traces[idx].push(now, kind, String::new());
        }
    }

    /// A line-keyed event scoped to one core's traced loads (per-level
    /// miss, speculative-read issue, coherence intervention, DRAM
    /// enqueue).
    pub fn on_core_line_event(
        &mut self,
        core: usize,
        line: u64,
        now: Cycle,
        kind: &'static str,
        detail: &str,
    ) {
        let Some(idxs) = self.by_line.get(&line) else {
            return;
        };
        // Tiny vectors: the clone sidesteps the double borrow without
        // measurable cost on a sampled path.
        for idx in idxs.clone() {
            if self.traces[idx].core == core {
                self.traces[idx].push(now, kind, detail.to_string());
            }
        }
    }

    /// A line-keyed event visible to every core's traced loads of that
    /// line (a DRAM fill serves whichever cores merged on it).
    pub fn on_line_event(&mut self, line: u64, now: Cycle, kind: &'static str) {
        let Some(idxs) = self.by_line.get(&line) else {
            return;
        };
        for idx in idxs.clone() {
            self.traces[idx].push(now, kind, String::new());
        }
    }

    /// A demand load finished. Records its latency histogram sample
    /// (every load, sampled or not) and closes the trace if one is open.
    #[allow(clippy::too_many_arguments)]
    pub fn on_finish(
        &mut self,
        core: usize,
        token: u64,
        line: u64,
        class: LatClass,
        latency: Cycle,
        spec_fired: bool,
        now: Cycle,
    ) {
        self.lat[class as usize].record_log2(latency);
        // The token key stays registered: the out-of-order core reports
        // pipeline lifecycle markers (dispatch/complete/retire) at
        // retirement, after the memory system has finished the load, and
        // those must still append to the closed trace. Retention is
        // bounded: keys are only registered while `traces` has room
        // (`max_trace_loads`), and tokens are never reused.
        let Some(&idx) = self.by_key.get(&key(core, token)) else {
            return;
        };
        if let Some(v) = self.by_line.get_mut(&line) {
            v.retain(|&i| i != idx);
            if v.is_empty() {
                self.by_line.remove(&line);
            }
        }
        let t = &mut self.traces[idx];
        if spec_fired {
            let kind = if class == LatClass::Offchip {
                "spec_read_useful"
            } else {
                "spec_read_wasted"
            };
            t.push(now, kind, String::new());
        }
        t.finish(now, class.label());
    }

    /// A hardware page walk completed in `latency` cycles.
    pub fn record_walk_latency(&mut self, latency: Cycle) {
        self.lat_walk.record_log2(latency);
    }

    /// The interval length (0 = timeline disabled).
    pub fn interval(&self) -> u64 {
        self.cfg.interval
    }

    /// Takes an interval snapshot from cumulative `totals`, storing the
    /// delta against the previous snapshot.
    pub fn snapshot(&mut self, totals: IntervalInput) {
        let snap = IntervalSnapshot::delta(self.prev.as_ref(), &totals);
        self.intervals.push(snap);
        self.prev = Some(totals);
    }

    /// Number of snapshots taken so far.
    pub fn snapshots(&self) -> usize {
        self.intervals.len()
    }

    /// Detaches everything collected into an exportable report.
    pub fn report(&self) -> ProbeReport {
        ProbeReport {
            lat: self.lat,
            lat_walk: self.lat_walk,
            traces: self.traces.clone(),
            intervals: self.intervals.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> Probe {
        Probe::new(ProbeConfig {
            sample_period: 2,
            interval: 100,
            max_trace_loads: 8,
        })
    }

    #[test]
    fn sampling_is_deterministic_by_token() {
        let p = probe();
        assert!(p.samples(0));
        assert!(!p.samples(1));
        assert!(p.samples(2));
        let off = Probe::new(ProbeConfig::baseline().with_sample_period(0));
        assert!(!off.samples(0));
    }

    #[test]
    fn lifecycle_events_attach_to_the_sampled_load() {
        let mut p = probe();
        p.on_issue(0, 0, 0x400, 0xAA, 10); // sampled
        p.on_issue(0, 1, 0x404, 0xBB, 11); // not sampled
        p.on_prediction(0, 0, true, 7, true, Some(true));
        p.on_core_line_event(0, 0xAA, 15, "llc_miss", "");
        p.on_core_line_event(1, 0xAA, 16, "llc_miss", ""); // other core: ignored
        p.on_line_event(0xAA, 200, "dram_fill");
        p.on_finish(0, 0, 0xAA, LatClass::Offchip, 190, true, 200);
        p.on_finish(0, 1, 0xBB, LatClass::L1, 5, false, 16);
        let r = p.report();
        assert_eq!(r.traces.len(), 1);
        let t = &r.traces[0];
        assert_eq!(t.retire, Some(200));
        assert_eq!(t.served, "offchip");
        let kinds: Vec<&str> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            ["predict", "llc_miss", "dram_fill", "spec_read_useful"]
        );
        // Both loads' latencies landed in the histograms.
        assert_eq!(r.lat_hist(LatClass::Offchip).count(), 1);
        assert_eq!(r.lat_hist(LatClass::L1).count(), 1);
    }

    #[test]
    fn post_finish_lifecycle_events_still_attach() {
        // The out-of-order core reports dispatch/complete/retire markers
        // at retirement — after on_finish has closed the trace. They must
        // still append to the finished trace.
        let mut p = probe();
        p.on_issue(0, 0, 0x400, 0xAA, 10);
        p.on_finish(0, 0, 0xAA, LatClass::Offchip, 190, false, 200);
        p.on_load_event(0, 0, 5, "ooo_dispatch");
        p.on_load_event(0, 0, 200, "ooo_complete");
        p.on_load_event(0, 0, 210, "ooo_retire");
        let t = &p.report().traces[0];
        assert_eq!(t.retire, Some(200));
        let kinds: Vec<&str> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["ooo_dispatch", "ooo_complete", "ooo_retire"]);
    }

    #[test]
    fn trace_cap_bounds_memory() {
        let mut p = Probe::new(ProbeConfig {
            sample_period: 1,
            interval: 0,
            max_trace_loads: 3,
        });
        for t in 0..10 {
            p.on_issue(0, t, 0, t, t);
        }
        assert_eq!(p.report().traces.len(), 3);
    }

    #[test]
    fn reset_drops_warmup_state() {
        let mut p = probe();
        p.on_issue(0, 0, 0, 1, 0);
        p.record_walk_latency(50);
        p.reset();
        let r = p.report();
        assert!(r.traces.is_empty());
        assert!(r.lat_walk.is_empty());
        // A post-reset finish for the dropped trace is a no-op on the
        // trace side but still records the latency sample.
        p.on_finish(0, 0, 1, LatClass::L1, 5, false, 10);
        assert_eq!(p.report().traces.len(), 0);
        assert_eq!(p.report().lat_hist(LatClass::L1).count(), 1);
    }
}
