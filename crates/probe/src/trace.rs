//! Per-load lifecycle traces and their Chrome/Perfetto `trace_event`
//! export.
//!
//! The export follows the Trace Event Format's JSON-object flavour
//! (`{"traceEvents": [...]}`), which both `chrome://tracing` and
//! `ui.perfetto.dev` open directly. Each traced load becomes one
//! complete ("X") slice from issue to retirement, with every recorded
//! lifecycle event as an instant ("i") marker; cores map to process ids
//! and load tokens to thread ids, so Perfetto lays loads out per core
//! with overlapping loads on separate tracks. Timestamps are simulated
//! cycles reported in the format's microsecond field — absolute time is
//! meaningless in simulation, so 1 cycle = 1 µs keeps the UI readable.

use hermes_types::Cycle;

use crate::json::escape_json;
use crate::ProbeReport;

/// One recorded lifecycle event of a traced load.
#[derive(Debug, Clone)]
pub struct LoadEvent {
    /// Cycle at which the event happened.
    pub at: Cycle,
    /// Stable event kind (e.g. `"llc_miss"`, `"hermes_spec_read"`).
    pub kind: &'static str,
    /// Free-form detail (empty for most events).
    pub detail: String,
}

/// The lifecycle of one sampled demand load.
#[derive(Debug, Clone)]
pub struct TracedLoad {
    /// Issuing core.
    pub core: usize,
    /// Per-core load sequence token.
    pub token: u64,
    /// Load PC.
    pub pc: u64,
    /// Raw physical line address.
    pub line: u64,
    /// Issue cycle.
    pub issue: Cycle,
    /// Recorded events, in insertion (simulation) order.
    pub events: Vec<LoadEvent>,
    /// Retirement-side completion cycle; `None` if the run ended with
    /// the load in flight.
    pub retire: Option<Cycle>,
    /// Serving-class label (`"l1"`, `"l2"`, `"llc"`, `"offchip"`);
    /// empty until finished.
    pub served: &'static str,
}

impl TracedLoad {
    pub(crate) fn new(core: usize, token: u64, pc: u64, line: u64, issue: Cycle) -> Self {
        Self {
            core,
            token,
            pc,
            line,
            issue,
            events: Vec::new(),
            retire: None,
            served: "",
        }
    }

    pub(crate) fn push(&mut self, at: Cycle, kind: &'static str, detail: String) {
        self.events.push(LoadEvent { at, kind, detail });
    }

    pub(crate) fn finish(&mut self, at: Cycle, served: &'static str) {
        self.retire = Some(at);
        self.served = served;
    }

    /// Load latency in cycles (`None` while in flight).
    pub fn latency(&self) -> Option<Cycle> {
        self.retire.map(|r| r - self.issue)
    }
}

impl ProbeReport {
    /// Renders the sampled traces as Chrome `trace_event` JSON (see
    /// [module docs](self)). Always valid JSON, even with zero traces.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [");
        let mut first = true;
        let mut emit = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str("\n  ");
            out.push_str(&s);
        };
        let cores: std::collections::BTreeSet<usize> = self.traces.iter().map(|t| t.core).collect();
        for core in cores {
            emit(
                format!(
                    "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {core}, \
                     \"args\": {{\"name\": \"core {core}\"}}}}"
                ),
                &mut first,
            );
        }
        for t in &self.traces {
            // The slice spans issue → retirement; an unfinished load
            // extends to its last recorded event so it stays visible.
            let end = t
                .retire
                .unwrap_or_else(|| t.events.last().map(|e| e.at).max(Some(t.issue)).unwrap());
            let served = if t.served.is_empty() {
                "inflight"
            } else {
                t.served
            };
            emit(
                format!(
                    "{{\"name\": \"load pc={:#x}\", \"cat\": \"load\", \"ph\": \"X\", \
                     \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}, \
                     \"args\": {{\"token\": {}, \"line\": \"{:#x}\", \"served\": \"{}\"}}}}",
                    t.pc,
                    t.issue,
                    end - t.issue,
                    t.core,
                    t.token,
                    t.token,
                    t.line,
                    served
                ),
                &mut first,
            );
            for e in &t.events {
                let args = if e.detail.is_empty() {
                    String::from("{}")
                } else {
                    format!("{{\"detail\": \"{}\"}}", escape_json(&e.detail))
                };
                emit(
                    format!(
                        "{{\"name\": \"{}\", \"cat\": \"event\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {}, \"pid\": {}, \"tid\": {}, \"args\": {}}}",
                        escape_json(e.kind),
                        e.at,
                        t.core,
                        t.token,
                        args
                    ),
                    &mut first,
                );
            }
        }
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::{LatClass, Probe, ProbeConfig};

    fn traced_report() -> ProbeReport {
        let mut p = Probe::new(ProbeConfig {
            sample_period: 1,
            interval: 0,
            max_trace_loads: 16,
        });
        p.on_issue(0, 0, 0x400100, 0xDEAD, 5);
        p.on_prediction(0, 0, true, 12, true, None);
        p.on_core_line_event(0, 0xDEAD, 20, "llc_miss", "");
        p.on_core_line_event(0, 0xDEAD, 21, "dram_enqueue", "");
        p.on_line_event(0xDEAD, 180, "dram_fill");
        p.on_finish(0, 0, 0xDEAD, LatClass::Offchip, 180, true, 185);
        p.on_issue(1, 1, 0x400200, 0xBEEF, 30); // left in flight
        p.report()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let r = traced_report();
        let s = r.to_chrome_trace();
        validate_json(&s).expect("trace export must be valid JSON");
        assert!(s.starts_with("{\"traceEvents\": ["));
        assert!(s.contains("\"ph\": \"X\""), "complete slice present");
        assert!(s.contains("\"ph\": \"i\""), "instant events present");
        assert!(s.contains("\"ph\": \"M\""), "process metadata present");
        assert!(s.contains("llc_miss") && s.contains("dram_fill"));
        assert!(s.contains("\"served\": \"offchip\""));
        assert!(s.contains("\"served\": \"inflight\""), "open load visible");
    }

    #[test]
    fn empty_report_is_still_valid_json() {
        let s = ProbeReport::default().to_chrome_trace();
        validate_json(&s).expect("empty trace must be valid JSON");
        assert!(s.contains("\"traceEvents\""));
    }

    #[test]
    fn latency_derives_from_issue_and_retire() {
        let r = traced_report();
        assert_eq!(r.traces[0].latency(), Some(180));
        assert_eq!(r.traces[1].latency(), None);
    }
}
