//! The interval metrics timeline: periodic deltas of the counters that
//! matter for phase behaviour, exported as JSONL (one JSON object per
//! line — streamable, `jq`-friendly, loadable row-by-row without a
//! document parser).

use hermes_types::Cycle;

use crate::json::escape_json;
use crate::ProbeReport;

/// Cumulative totals handed to the probe at a snapshot boundary. The
/// simulator fills this from its live counters; the probe computes
/// deltas against the previous snapshot.
#[derive(Debug, Clone, Default)]
pub struct IntervalInput {
    /// Cycle of the snapshot (measured from run start; the timeline is
    /// measurement-window only).
    pub cycle: Cycle,
    /// Per-core instructions retired since the measurement started.
    pub retired: Vec<u64>,
    /// Per-core cumulative predictor confusion matrix `[tp, fp, fn,
    /// tn]`.
    pub pred: Vec<[u64; 4]>,
    /// Per-core cumulative speculative-read `[useful, wasted]` counts.
    pub spec: Vec<[u64; 2]>,
    /// Per-core instantaneous ROB occupancy at the boundary.
    pub rob_occ: Vec<usize>,
    /// Per-core instantaneous load+store-queue occupancy at the
    /// boundary.
    pub lsq_occ: Vec<usize>,
    /// Per-level cumulative demand misses, innermost first, as
    /// `(level name, misses)`.
    pub level_misses: Vec<(String, u64)>,
    /// Instantaneous DRAM read-queue occupancy `(busy, capacity)`.
    pub dram_rq: (usize, usize),
    /// Instantaneous DRAM write-queue occupancy (zero capacity when
    /// writes share the read queue).
    pub dram_wq: (usize, usize),
    /// Translations currently in flight.
    pub walks_in_flight: usize,
}

/// One core's share of an interval delta.
#[derive(Debug, Clone, Default)]
pub struct CoreInterval {
    /// Instructions retired this interval.
    pub retired: u64,
    /// IPC over the interval.
    pub ipc: f64,
    /// Confusion-matrix delta `[tp, fp, fn, tn]`.
    pub pred: [u64; 4],
    /// Speculative-read delta `[useful, wasted]`.
    pub spec: [u64; 2],
    /// ROB occupancy at the closing boundary (instantaneous, not a
    /// delta — occupancy is a level, not a counter).
    pub rob_occ: usize,
    /// Load+store-queue occupancy at the closing boundary.
    pub lsq_occ: usize,
}

/// One interval of the timeline: deltas between two snapshot boundaries
/// plus instantaneous queue state at the closing boundary.
#[derive(Debug, Clone, Default)]
pub struct IntervalSnapshot {
    /// Closing cycle of the interval.
    pub cycle: Cycle,
    /// Interval length in cycles (snapshots ride the stepping loop, so
    /// under idle fast-forward an interval can exceed the configured
    /// length; the true length is recorded).
    pub dcycles: u64,
    /// Per-core deltas.
    pub cores: Vec<CoreInterval>,
    /// Per-level `(name, miss delta, MPKI over the interval)`.
    pub levels: Vec<(String, u64, f64)>,
    /// DRAM read-queue occupancy at the boundary.
    pub dram_rq: (usize, usize),
    /// DRAM write-queue occupancy at the boundary.
    pub dram_wq: (usize, usize),
    /// Translations in flight at the boundary.
    pub walks_in_flight: usize,
}

impl IntervalSnapshot {
    /// Builds the delta snapshot between `prev` (or zero at the first
    /// boundary) and `now`.
    pub(crate) fn delta(prev: Option<&IntervalInput>, now: &IntervalInput) -> Self {
        let zero = IntervalInput::default();
        let prev = prev.unwrap_or(&zero);
        let dcycles = now.cycle.saturating_sub(prev.cycle);
        let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        let cores = (0..now.retired.len())
            .map(|i| {
                let retired = now.retired[i] - get(&prev.retired, i);
                let p = now.pred[i];
                let q = prev.pred.get(i).copied().unwrap_or([0; 4]);
                let s = now.spec[i];
                let r = prev.spec.get(i).copied().unwrap_or([0; 2]);
                CoreInterval {
                    retired,
                    ipc: if dcycles == 0 {
                        0.0
                    } else {
                        retired as f64 / dcycles as f64
                    },
                    pred: [p[0] - q[0], p[1] - q[1], p[2] - q[2], p[3] - q[3]],
                    spec: [s[0] - r[0], s[1] - r[1]],
                    rob_occ: now.rob_occ.get(i).copied().unwrap_or(0),
                    lsq_occ: now.lsq_occ.get(i).copied().unwrap_or(0),
                }
            })
            .collect::<Vec<_>>();
        let dinstr: u64 = cores.iter().map(|c| c.retired).sum();
        let levels = now
            .level_misses
            .iter()
            .enumerate()
            .map(|(i, (name, m))| {
                let pm = prev.level_misses.get(i).map(|(_, m)| *m).unwrap_or(0);
                let dm = m - pm;
                let mpki = if dinstr == 0 {
                    0.0
                } else {
                    dm as f64 * 1000.0 / dinstr as f64
                };
                (name.clone(), dm, mpki)
            })
            .collect();
        Self {
            cycle: now.cycle,
            dcycles,
            cores,
            levels,
            dram_rq: now.dram_rq,
            dram_wq: now.dram_wq,
            walks_in_flight: now.walks_in_flight,
        }
    }

    /// Renders the snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"cycle\": {}, \"dcycles\": {}, \"cores\": [",
            self.cycle, self.dcycles
        );
        for (i, c) in self.cores.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"retired\": {}, \"ipc\": {:.6}, \
                 \"pred\": {{\"tp\": {}, \"fp\": {}, \"fn\": {}, \"tn\": {}}}, \
                 \"spec_useful\": {}, \"spec_wasted\": {}, \
                 \"rob_occ\": {}, \"lsq_occ\": {}}}",
                c.retired,
                c.ipc,
                c.pred[0],
                c.pred[1],
                c.pred[2],
                c.pred[3],
                c.spec[0],
                c.spec[1],
                c.rob_occ,
                c.lsq_occ
            ));
        }
        s.push_str("], \"levels\": [");
        for (i, (name, dm, mpki)) in self.levels.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"misses\": {}, \"mpki\": {:.4}}}",
                escape_json(name),
                dm,
                mpki
            ));
        }
        s.push_str(&format!(
            "], \"dram\": {{\"rq_busy\": {}, \"rq_cap\": {}, \"wq_busy\": {}, \"wq_cap\": {}}}, \
             \"walks_in_flight\": {}}}",
            self.dram_rq.0, self.dram_rq.1, self.dram_wq.0, self.dram_wq.1, self.walks_in_flight
        ));
        s
    }
}

impl ProbeReport {
    /// Renders the interval timeline as JSONL: one snapshot object per
    /// line, oldest first. Empty string when no snapshot fired.
    pub fn to_interval_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.intervals {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::{Probe, ProbeConfig};

    fn input(cycle: u64, retired: u64, tp: u64, misses: u64) -> IntervalInput {
        IntervalInput {
            cycle,
            retired: vec![retired, retired / 2],
            pred: vec![[tp, 1, 0, 2], [0; 4]],
            spec: vec![[tp, 0], [0; 2]],
            rob_occ: vec![retired as usize % 512, 0],
            lsq_occ: vec![retired as usize % 128, 0],
            level_misses: vec![("L1D".into(), misses * 10), ("LLC".into(), misses)],
            dram_rq: (3, 64),
            dram_wq: (0, 0),
            walks_in_flight: 1,
        }
    }

    #[test]
    fn deltas_between_snapshots() {
        let mut p = Probe::new(ProbeConfig::baseline());
        p.snapshot(input(1000, 500, 5, 20));
        p.snapshot(input(3000, 1500, 9, 50));
        let r = p.report();
        assert_eq!(r.intervals.len(), 2);
        let a = &r.intervals[0];
        assert_eq!((a.cycle, a.dcycles), (1000, 1000));
        assert_eq!(a.cores[0].retired, 500);
        assert_eq!(a.cores[0].ipc, 0.5);
        let b = &r.intervals[1];
        assert_eq!((b.cycle, b.dcycles), (3000, 2000));
        assert_eq!(b.cores[0].retired, 1000);
        assert_eq!(b.cores[0].pred, [4, 0, 0, 0]);
        assert_eq!(b.cores[0].spec, [4, 0]);
        // Occupancies are instantaneous levels, copied from the closing
        // boundary rather than differenced.
        assert_eq!(b.cores[0].rob_occ, 1500 % 512);
        assert_eq!(b.cores[0].lsq_occ, 1500 % 128);
        // Level deltas and MPKI over interval instructions (1000 + 500).
        assert_eq!(b.levels[1].1, 30);
        assert!((b.levels[1].2 - 30.0 * 1000.0 / 1500.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_lines_parse_independently() {
        let mut p = Probe::new(ProbeConfig::baseline());
        p.snapshot(input(1000, 500, 5, 20));
        p.snapshot(input(2000, 900, 7, 30));
        let out = p.report().to_interval_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            validate_json(l).expect("each JSONL line must be valid JSON");
            assert!(l.contains("\"ipc\""));
            assert!(l.contains("\"rq_busy\""));
            assert!(l.contains("\"rob_occ\""));
            assert!(l.contains("\"lsq_occ\""));
        }
    }

    #[test]
    fn empty_timeline_renders_empty() {
        assert_eq!(ProbeReport::default().to_interval_jsonl(), "");
    }
}
