//! The core ↔ memory-system interface.
//!
//! The core is deliberately ignorant of caches, DRAM, prefetchers, and
//! Hermes: it issues loads/stores through [`MemoryPort`] and is told later
//! (via [`crate::Core::finish_load`]) when and from where each load was
//! served. The full-system crate (`hermes-sim`) implements this trait with
//! the cache hierarchy + Hermes controller; unit tests implement it with
//! fixed-latency stubs.

use hermes_types::{CoreId, Cycle, VirtAddr};

/// Which memory level ultimately served a load — used for stall attribution
/// (the paper's Fig. 2/3 blocking analysis) and POPET training labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// L1 data cache hit.
    L1,
    /// L2 hit.
    L2,
    /// Last-level cache hit.
    Llc,
    /// Off-chip main memory (the class Hermes accelerates).
    Dram,
}

impl ServedBy {
    /// Whether the load went off-chip (the positive class for POPET).
    pub fn is_offchip(self) -> bool {
        matches!(self, ServedBy::Dram)
    }
}

/// A demand load leaving the core at address-generation time.
///
/// This moment — "once the load's physical address is generated" (§1) — is
/// exactly when POPET predicts and Hermes may issue its speculative request,
/// so the issue carries everything the predictor's program features need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadIssue {
    /// Issuing core.
    pub core: CoreId,
    /// Token identifying the load; must be echoed to
    /// [`crate::Core::finish_load`].
    pub token: u64,
    /// Program counter of the load instruction.
    pub pc: u64,
    /// Virtual address of the access.
    pub vaddr: VirtAddr,
}

/// A committed store leaving the core at retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreIssue {
    /// Issuing core.
    pub core: CoreId,
    /// Program counter of the store instruction.
    pub pc: u64,
    /// Virtual address of the access.
    pub vaddr: VirtAddr,
}

/// The memory system as seen by a core.
pub trait MemoryPort {
    /// Issues a demand load. The memory system must eventually call
    /// [`crate::Core::finish_load`] with `req.token`.
    fn issue_load(&mut self, req: LoadIssue, now: Cycle);

    /// Issues a committed store (post-retirement write).
    fn issue_store(&mut self, req: StoreIssue, now: Cycle);

    /// Reports a pipeline lifecycle moment (`kind` at cycle `at`) for a
    /// load previously issued with token `token` — purely observational,
    /// consumed by the probe layer when one is attached. `at` may lie in
    /// the past: the out-of-order core reports dispatch/complete/retire
    /// timestamps together at retirement. The default implementation
    /// ignores the event, so memory-system stubs and the legacy
    /// dependency-scheduled core (which never calls it) are unaffected.
    fn note_lifecycle(&mut self, core: CoreId, token: u64, at: Cycle, kind: &'static str) {
        let _ = (core, token, at, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offchip_classification() {
        assert!(ServedBy::Dram.is_offchip());
        assert!(!ServedBy::L1.is_offchip());
        assert!(!ServedBy::L2.is_offchip());
        assert!(!ServedBy::Llc.is_offchip());
    }
}
