//! Per-core statistics.

use crate::port::ServedBy;

/// Counters a core accumulates while running; the basis of IPC, MPKI, and
/// the paper's blocking/stall analyses (Figs. 2, 3, 15a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Demand loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Loads served per level.
    pub served_l1: u64,
    /// Loads served by L2.
    pub served_l2: u64,
    /// Loads served by LLC.
    pub served_llc: u64,
    /// Loads served off-chip.
    pub served_dram: u64,
    /// Off-chip loads that blocked retirement for ≥1 cycle ("blocking" in
    /// Fig. 2).
    pub offchip_blocking: u64,
    /// Off-chip loads that never blocked retirement.
    pub offchip_nonblocking: u64,
    /// Cycles retirement was blocked by an off-chip load at the ROB head
    /// (the Fig. 3 stall metric).
    pub stall_cycles_offchip: u64,
    /// Cycles retirement was blocked by an on-chip-served load at the head.
    pub stall_cycles_onchip_load: u64,
    /// Cycles retirement was blocked for any other reason (FU latency,
    /// empty ROB after a branch bubble, ...).
    pub stall_cycles_other: u64,
    /// Cycles with no instruction in the ROB (fetch bubbles).
    pub empty_rob_cycles: u64,
    /// Sum over measured cycles of the ROB occupancy at the start of each
    /// cycle — divide by cycles for mean window depth. Only the
    /// cycle-driven out-of-order model maintains it; the legacy
    /// dependency-scheduled core leaves it zero.
    pub rob_occupancy_sum: u64,
    /// Cycles dispatch was blocked by a full reservation-station pool
    /// (out-of-order model only).
    pub rs_full_stalls: u64,
    /// Cycles dispatch was blocked by a full load or store queue
    /// (out-of-order model only).
    pub lsq_full_stalls: u64,
    /// Loads satisfied by store-to-load forwarding from an older in-queue
    /// store, never reaching the memory system (out-of-order model only).
    pub forwarded_loads: u64,
    /// Pipeline flushes from branch mispredictions (out-of-order model
    /// only; the legacy core counts the same events in
    /// `branch_mispredicts` but has no flush machinery).
    pub flushes: u64,
}

impl CoreStats {
    /// Records where a finished load was served from.
    pub fn record_served(&mut self, served: ServedBy) {
        match served {
            ServedBy::L1 => self.served_l1 += 1,
            ServedBy::L2 => self.served_l2 += 1,
            ServedBy::Llc => self.served_llc += 1,
            ServedBy::Dram => self.served_dram += 1,
        }
    }

    /// Total off-chip demand loads.
    pub fn offchip_loads(&self) -> u64 {
        self.served_dram
    }

    /// IPC given a cycle count.
    pub fn ipc(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.retired as f64 / cycles as f64
        }
    }

    /// Average stall cycles per off-chip load (Fig. 3's y-axis).
    pub fn stalls_per_offchip_load(&self) -> f64 {
        if self.served_dram == 0 {
            0.0
        } else {
            self.stall_cycles_offchip as f64 / self.served_dram as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_served_buckets() {
        let mut s = CoreStats::default();
        s.record_served(ServedBy::L1);
        s.record_served(ServedBy::Dram);
        s.record_served(ServedBy::Dram);
        assert_eq!(s.served_l1, 1);
        assert_eq!(s.offchip_loads(), 2);
    }

    #[test]
    fn ipc_guards_zero_cycles() {
        let s = CoreStats {
            retired: 100,
            ..Default::default()
        };
        assert_eq!(s.ipc(0), 0.0);
        assert_eq!(s.ipc(50), 2.0);
    }

    #[test]
    fn stall_average() {
        let s = CoreStats {
            served_dram: 4,
            stall_cycles_offchip: 100,
            ..Default::default()
        };
        assert_eq!(s.stalls_per_offchip_load(), 25.0);
    }
}
