//! Trace-driven core models.
//!
//! Models the paper's Table 4 core: 6-wide fetch/dispatch/retire, 512-entry
//! reorder buffer, 128/72-entry load/store queues, and a perceptron branch
//! predictor with a 17-cycle misprediction penalty.
//!
//! Two pipeline models share this configuration and the [`MemoryPort`]
//! interface, selected by [`config::CoreModel`]:
//!
//! * [`Core`] (the default, `CoreModel::Legacy`) is *dependency-scheduled*:
//!   instruction completion times are computed eagerly from register
//!   dataflow the moment all producers are known, which gives
//!   cycle-accurate retirement behaviour (the property Hermes' evaluation
//!   rests on: an off-chip load at the ROB head blocks retirement, §2 of
//!   the paper) without a per-cycle wakeup/select model. Load latencies
//!   come from the memory system via [`Core::finish_load`]; everything
//!   downstream of a load reschedules when the data arrives.
//! * `CoreModel::OoO` selects the cycle-driven out-of-order core in the
//!   `hermes-ooo` crate: RAT renaming, a unified reservation-station pool
//!   with issue-width-limited wakeup/select, and a load/store queue with
//!   store-to-load forwarding — the structural model behind the paper's
//!   deep-ROB overlap argument. It lives in its own crate so this one
//!   stays the dependency root both models build on.
//!
//! Simplifications relative to a full RTL-level model, none of which affect
//! the paper's measured effects: no wrong-path execution (a mispredicted
//! branch injects a fetch bubble of `exec + penalty` cycles), no functional
//! unit port contention beyond the OoO model's issue width, and no L1-I
//! side (trace-driven fetch, as in ChampSim's default configuration).

pub mod branch;
pub mod config;
pub mod core;
pub mod port;
pub mod stats;

pub use crate::core::Core;
pub use branch::{BranchKind, BranchPredictor};
pub use config::{CoreConfig, CoreModel, OooConfig};
pub use port::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
pub use stats::CoreStats;
