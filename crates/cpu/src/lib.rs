//! Trace-driven out-of-order core model.
//!
//! Models the paper's Table 4 core: 6-wide fetch/dispatch/retire, 512-entry
//! reorder buffer, 128/72-entry load/store queues, and a perceptron branch
//! predictor with a 17-cycle misprediction penalty.
//!
//! The pipeline is *dependency-scheduled*: instruction completion times are
//! computed eagerly from register dataflow the moment all producers are
//! known, which gives cycle-accurate retirement behaviour (the property
//! Hermes' evaluation rests on: an off-chip load at the ROB head blocks
//! retirement, §2 of the paper) without a per-cycle wakeup/select model.
//! Load latencies come from the memory system via [`Core::finish_load`];
//! everything downstream of a load reschedules when the data arrives.
//!
//! Simplifications relative to a full RTL-level model, none of which affect
//! the paper's measured effects: no wrong-path execution (a mispredicted
//! branch injects a fetch bubble of `exec + penalty` cycles), no functional
//! unit port contention (the 6-wide machine is never FU-bound on the
//! memory-intensive workloads evaluated), and no L1-I side (trace-driven
//! fetch, as in ChampSim's default configuration).

pub mod branch;
pub mod config;
pub mod core;
pub mod port;
pub mod stats;

pub use crate::core::Core;
pub use branch::{BranchKind, BranchPredictor};
pub use config::CoreConfig;
pub use port::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
pub use stats::CoreStats;
