//! Core configuration.

use crate::branch::BranchKind;

/// Static configuration of one out-of-order core (Table 4 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched/dispatched per cycle (6).
    pub fetch_width: usize,
    /// Instructions retired per cycle (6).
    pub retire_width: usize,
    /// Reorder-buffer entries (512; swept 256–1024 in Fig. 19).
    pub rob_size: usize,
    /// Load-queue entries (128).
    pub lq_size: usize,
    /// Store-queue entries (72).
    pub sq_size: usize,
    /// Branch misprediction penalty in cycles (17).
    pub branch_penalty: u32,
    /// Which branch predictor to build.
    pub branch_predictor: BranchKind,
}

impl CoreConfig {
    /// The paper's baseline core.
    pub fn baseline() -> Self {
        Self {
            fetch_width: 6,
            retire_width: 6,
            rob_size: 512,
            lq_size: 128,
            sq_size: 72,
            branch_penalty: 17,
            branch_predictor: BranchKind::Perceptron,
        }
    }

    /// Returns a copy with a different ROB size (Fig. 19 sweep).
    pub fn with_rob(mut self, rob: usize) -> Self {
        assert!(rob >= 16, "ROB too small to cover pipeline depth");
        self.rob_size = rob;
        self
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized structures.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.retire_width > 0);
        assert!(self.rob_size > 0 && self.lq_size > 0 && self.sq_size > 0);
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table4() {
        let c = CoreConfig::baseline();
        assert_eq!(c.rob_size, 512);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.sq_size, 72);
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.branch_penalty, 17);
        c.validate();
    }

    #[test]
    fn rob_sweep() {
        let c = CoreConfig::baseline().with_rob(1024);
        assert_eq!(c.rob_size, 1024);
    }

    #[test]
    #[should_panic]
    fn tiny_rob_rejected() {
        let _ = CoreConfig::baseline().with_rob(4);
    }
}
