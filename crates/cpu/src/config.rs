//! Core configuration.

use crate::branch::BranchKind;

/// Which pipeline model a core instantiates.
///
/// `Legacy` is the original dependency-scheduled dataflow model
/// ([`crate::Core`]): completion times propagate eagerly through the
/// dependence graph with no issue-bandwidth limit, which is cheap and
/// pinned bit-for-bit by the repository goldens. `OoO` selects the
/// cycle-driven out-of-order core in `hermes-ooo` (RAT renaming, unified
/// reservation stations with wakeup/select, a load/store queue with
/// store-to-load forwarding) — the model the paper's deep-ROB overlap
/// argument actually needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum CoreModel {
    /// The dependency-scheduled model (default; byte-identical to every
    /// pre-`CoreModel` simulator output).
    #[default]
    Legacy,
    /// The cycle-driven ROB/RAT/RS/LSQ core.
    OoO(OooConfig),
}

/// Geometry of the out-of-order core's scheduling structures. ROB, load
/// queue, and store queue sizes come from the surrounding
/// [`CoreConfig`]; this adds only what the legacy model has no notion
/// of.
#[derive(Debug, Clone, PartialEq)]
pub struct OooConfig {
    /// Unified reservation-station entries shared by every instruction
    /// class (97, Table 4's scheduler size).
    pub rs_entries: usize,
    /// Instructions the select stage may start per cycle (6, matching
    /// fetch/retire width).
    pub issue_width: usize,
    /// Address-generation latency for loads and stores in cycles (1).
    pub agen_latency: u32,
}

impl OooConfig {
    /// The paper's baseline scheduler geometry.
    pub fn baseline() -> Self {
        Self {
            rs_entries: 97,
            issue_width: 6,
            agen_latency: 1,
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized structures.
    pub fn validate(&self) {
        assert!(self.rs_entries > 0 && self.issue_width > 0);
        assert!(self.agen_latency > 0, "agen must take at least one cycle");
    }
}

impl Default for OooConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Static configuration of one out-of-order core (Table 4 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched/dispatched per cycle (6).
    pub fetch_width: usize,
    /// Instructions retired per cycle (6).
    pub retire_width: usize,
    /// Reorder-buffer entries (512; swept 256–1024 in Fig. 19).
    pub rob_size: usize,
    /// Load-queue entries (128).
    pub lq_size: usize,
    /// Store-queue entries (72).
    pub sq_size: usize,
    /// Branch misprediction penalty in cycles (17).
    pub branch_penalty: u32,
    /// Which branch predictor to build.
    pub branch_predictor: BranchKind,
    /// Which pipeline model to instantiate.
    pub model: CoreModel,
}

impl CoreConfig {
    /// The paper's baseline core.
    pub fn baseline() -> Self {
        Self {
            fetch_width: 6,
            retire_width: 6,
            rob_size: 512,
            lq_size: 128,
            sq_size: 72,
            branch_penalty: 17,
            branch_predictor: BranchKind::Perceptron,
            model: CoreModel::Legacy,
        }
    }

    /// Returns a copy with a different ROB size (Fig. 19 sweep).
    pub fn with_rob(mut self, rob: usize) -> Self {
        assert!(rob >= 16, "ROB too small to cover pipeline depth");
        self.rob_size = rob;
        self
    }

    /// Returns a copy with a different load-queue size (LSQ-pressure
    /// sweep).
    pub fn with_lq(mut self, lq: usize) -> Self {
        assert!(lq > 0, "load queue cannot be empty");
        self.lq_size = lq;
        self
    }

    /// Returns a copy with a different store-queue size (LSQ-pressure
    /// sweep).
    pub fn with_sq(mut self, sq: usize) -> Self {
        assert!(sq > 0, "store queue cannot be empty");
        self.sq_size = sq;
        self
    }

    /// Returns a copy running the given pipeline model.
    pub fn with_model(mut self, model: CoreModel) -> Self {
        self.model = model;
        self
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized structures.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.retire_width > 0);
        assert!(self.rob_size > 0 && self.lq_size > 0 && self.sq_size > 0);
        if let CoreModel::OoO(o) = &self.model {
            o.validate();
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table4() {
        let c = CoreConfig::baseline();
        assert_eq!(c.rob_size, 512);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.sq_size, 72);
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.branch_penalty, 17);
        c.validate();
    }

    #[test]
    fn rob_sweep() {
        let c = CoreConfig::baseline().with_rob(1024);
        assert_eq!(c.rob_size, 1024);
    }

    #[test]
    #[should_panic]
    fn tiny_rob_rejected() {
        let _ = CoreConfig::baseline().with_rob(4);
    }

    #[test]
    fn default_model_is_legacy() {
        assert_eq!(CoreConfig::baseline().model, CoreModel::Legacy);
        assert_eq!(CoreModel::default(), CoreModel::Legacy);
    }

    #[test]
    fn ooo_model_validates() {
        let c = CoreConfig::baseline().with_model(CoreModel::OoO(OooConfig::baseline()));
        c.validate();
        assert_eq!(OooConfig::baseline().rs_entries, 97);
        assert_eq!(OooConfig::baseline().issue_width, 6);
    }

    #[test]
    #[should_panic]
    fn zero_rs_rejected() {
        let bad = OooConfig {
            rs_entries: 0,
            ..OooConfig::baseline()
        };
        CoreConfig::baseline()
            .with_model(CoreModel::OoO(bad))
            .validate();
    }
}
