//! Branch predictors.
//!
//! Table 4 specifies a "Perceptron branch predictor" (ref. 61: Jiménez & Lin,
//! HPCA'01) with a 17-cycle misprediction penalty. We implement the hashed
//! variant (Tarjan & Skadron) — the same table-of-weights machinery POPET
//! itself is built from — plus gshare and a static always-taken baseline
//! for ablations.

use hermes_types::{hash_index, SatCounter, SatWeight};

/// Which predictor a core instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Hashed-perceptron (the paper's baseline).
    Perceptron,
    /// Gshare with 2-bit counters.
    Gshare,
    /// Static always-taken.
    AlwaysTaken,
}

/// A conditional-branch direction predictor.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains with the resolved outcome. `predicted` is what
    /// [`BranchPredictor::predict`] returned for this instance of the
    /// branch.
    fn train(&mut self, pc: u64, taken: bool, predicted: bool);

    /// Storage cost in bits (for overhead tables).
    fn storage_bits(&self) -> usize;
}

/// Builds the predictor selected by `kind`.
pub fn build(kind: BranchKind) -> Box<dyn BranchPredictor> {
    match kind {
        BranchKind::Perceptron => Box::new(PerceptronBp::new()),
        BranchKind::Gshare => Box::new(GshareBp::new(14)),
        BranchKind::AlwaysTaken => Box::new(AlwaysTaken),
    }
}

const PBP_TABLE_BITS: u32 = 12;
const PBP_TABLES: usize = 4;
const PBP_WEIGHT_BITS: u32 = 6;
/// Training threshold θ ≈ 1.93·h + 14 for history length h (Jiménez's
/// tuned value); with our effective history of 28 this is ~68.
const PBP_THETA: i32 = 68;

/// Hashed-perceptron direction predictor.
///
/// Four weight tables indexed by PC and PC⊕(global-history segments);
/// predict taken when the summed weights are non-negative; train on a
/// misprediction or when the sum's magnitude is below θ.
#[derive(Debug, Clone)]
pub struct PerceptronBp {
    tables: Vec<Vec<SatWeight>>,
    ghist: u64,
}

impl PerceptronBp {
    /// A predictor with the default geometry (4 × 4096 × 6-bit ≈ 12 KB).
    pub fn new() -> Self {
        Self {
            tables: (0..PBP_TABLES)
                .map(|_| vec![SatWeight::new_bits(PBP_WEIGHT_BITS); 1 << PBP_TABLE_BITS])
                .collect(),
            ghist: 0,
        }
    }

    fn indices(&self, pc: u64) -> [usize; PBP_TABLES] {
        [
            hash_index(pc, PBP_TABLE_BITS),
            hash_index(pc ^ (self.ghist & 0x3FF), PBP_TABLE_BITS),
            hash_index(
                pc ^ ((self.ghist >> 10) & 0x3FF).rotate_left(13),
                PBP_TABLE_BITS,
            ),
            hash_index(
                pc ^ ((self.ghist >> 20) & 0xFF).rotate_left(29),
                PBP_TABLE_BITS,
            ),
        ]
    }

    fn sum(&self, idx: &[usize; PBP_TABLES]) -> i32 {
        self.tables
            .iter()
            .zip(idx)
            .map(|(t, &i)| t[i].get() as i32)
            .sum()
    }
}

impl Default for PerceptronBp {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for PerceptronBp {
    fn predict(&mut self, pc: u64) -> bool {
        let idx = self.indices(pc);
        self.sum(&idx) >= 0
    }

    fn train(&mut self, pc: u64, taken: bool, predicted: bool) {
        let idx = self.indices(pc);
        let s = self.sum(&idx);
        if predicted != taken || s.abs() < PBP_THETA {
            for (t, &i) in self.tables.iter_mut().zip(&idx) {
                t[i].train(taken);
            }
        }
        self.ghist = (self.ghist << 1) | taken as u64;
    }

    fn storage_bits(&self) -> usize {
        PBP_TABLES * (1 << PBP_TABLE_BITS) * PBP_WEIGHT_BITS as usize + 64
    }
}

/// Gshare: a single table of 2-bit counters indexed by PC ⊕ history.
#[derive(Debug, Clone)]
pub struct GshareBp {
    counters: Vec<SatCounter>,
    ghist: u64,
    bits: u32,
}

impl GshareBp {
    /// A gshare predictor with `2^bits` counters.
    pub fn new(bits: u32) -> Self {
        Self {
            counters: vec![SatCounter::new(2); 1 << bits],
            ghist: 0,
            bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        hash_index(pc ^ self.ghist, self.bits)
    }
}

impl BranchPredictor for GshareBp {
    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)].is_set()
    }

    fn train(&mut self, pc: u64, taken: bool, _predicted: bool) {
        let i = self.index(pc);
        self.counters[i].train(taken);
        self.ghist = (self.ghist << 1) | taken as u64;
    }

    fn storage_bits(&self) -> usize {
        self.counters.len() * 2 + 64
    }
}

/// Static always-taken baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTaken;

impl BranchPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> bool {
        true
    }

    fn train(&mut self, _pc: u64, _taken: bool, _predicted: bool) {}

    fn storage_bits(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(bp: &mut dyn BranchPredictor, pattern: impl Fn(u64) -> bool, n: u64) -> f64 {
        let mut correct = 0;
        for i in 0..n {
            let pc = 0x400_000 + (i % 4) * 4;
            let taken = pattern(i);
            let p = bp.predict(pc);
            if p == taken {
                correct += 1;
            }
            bp.train(pc, taken, p);
        }
        correct as f64 / n as f64
    }

    #[test]
    fn perceptron_learns_biased_branches() {
        let mut bp = PerceptronBp::new();
        let acc = accuracy(&mut bp, |_| true, 2000);
        assert!(acc > 0.98, "always-taken pattern accuracy {acc}");
    }

    #[test]
    fn perceptron_learns_alternating_pattern() {
        let mut bp = PerceptronBp::new();
        let acc = accuracy(&mut bp, |i| i % 2 == 0, 4000);
        assert!(acc > 0.9, "alternating pattern accuracy {acc}");
    }

    #[test]
    fn gshare_learns_loop_pattern() {
        let mut bp = GshareBp::new(14);
        // Taken 7 times, not-taken once (a loop of 8 iterations).
        let acc = accuracy(&mut bp, |i| i % 8 != 7, 8000);
        assert!(acc > 0.85, "loop pattern accuracy {acc}");
    }

    #[test]
    fn perceptron_beats_gshare_on_correlated() {
        // Outcome correlated with history 3 branches ago.
        let pat = |i: u64| (i / 3).is_multiple_of(2);
        let mut p = PerceptronBp::new();
        let mut g = GshareBp::new(10);
        let pa = accuracy(&mut p, pat, 6000);
        let ga = accuracy(&mut g, pat, 6000);
        assert!(pa >= ga - 0.02, "perceptron {pa} vs gshare {ga}");
    }

    #[test]
    fn always_taken_is_static() {
        let mut bp = AlwaysTaken;
        assert!(bp.predict(0x1234));
        bp.train(0x1234, false, true);
        assert!(bp.predict(0x1234));
        assert_eq!(bp.storage_bits(), 0);
    }

    #[test]
    fn build_constructs_each_kind() {
        for k in [
            BranchKind::Perceptron,
            BranchKind::Gshare,
            BranchKind::AlwaysTaken,
        ] {
            let mut bp = build(k);
            let _ = bp.predict(0x400000);
        }
    }

    #[test]
    fn storage_accounting_nonzero_for_tables() {
        assert!(PerceptronBp::new().storage_bits() > 8 * 1024);
        assert!(GshareBp::new(14).storage_bits() > 1 << 14);
    }
}
