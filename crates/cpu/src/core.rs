//! The out-of-order core pipeline.
//!
//! See the crate docs for the modelling approach. In short: dispatch
//! captures each instruction's register dependencies; completion times
//! propagate eagerly through the dataflow graph; loads detour through the
//! memory system ([`MemoryPort`]) and resume the graph when
//! [`Core::finish_load`] delivers their data; retirement is strictly
//! in-order and blocks on incomplete heads — which is where off-chip loads
//! hurt and where Hermes wins its cycles back.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use hermes_trace::{Instr, MemKind, TraceSource};
use hermes_types::{CoreId, Cycle, VirtAddr};

use crate::branch::{self, BranchPredictor};
use crate::config::CoreConfig;
use crate::port::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
use crate::stats::CoreStats;

/// A source operand: either available at a known cycle or produced by an
/// in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SrcDep {
    Ready(Cycle),
    On(u64),
}

/// Register-file scoreboard entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegState {
    ReadyAt(Cycle),
    PendingOn(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    Alu,
    Load,
    Store,
    Branch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Waiting for source operands.
    WaitingDeps,
    /// Load waiting for its address-generation cycle.
    WaitingAgen,
    /// Load in the memory system.
    WaitingMem,
    /// Completion cycle known.
    Done(Cycle),
}

#[derive(Debug)]
struct RobEntry {
    seq: u64,
    kind: EntryKind,
    state: EntryState,
    dispatch_at: Cycle,
    deps: [Option<SrcDep>; 2],
    dst: Option<u8>,
    exec_latency: u8,
    pc: u64,
    vaddr: VirtAddr,
    mispredicted: bool,
    served: Option<ServedBy>,
    blocked_cycles: u64,
}

/// One simulated out-of-order core.
///
/// Owns its instruction source; the surrounding system calls
/// [`Core::tick`] once per cycle and [`Core::finish_load`] whenever the
/// memory system completes a load.
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    trace: Box<dyn TraceSource>,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    regs: Vec<RegState>,
    /// producer seq -> dependent seqs waiting on it.
    waiters: HashMap<u64, Vec<u64>>,
    agen_events: BinaryHeap<Reverse<(Cycle, u64)>>,
    lq_used: usize,
    sq_used: usize,
    fetch_stall_until: Cycle,
    bp: Box<dyn BranchPredictor>,
    stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("rob_occupancy", &self.rob.len())
            .field("retired", &self.stats.retired)
            .finish()
    }
}

impl Core {
    /// Builds a core running `trace`.
    pub fn new(id: CoreId, cfg: CoreConfig, trace: Box<dyn TraceSource>) -> Self {
        cfg.validate();
        let bp = branch::build(cfg.branch_predictor);
        Self {
            id,
            cfg,
            trace,
            rob: VecDeque::with_capacity(512),
            next_seq: 0,
            regs: vec![RegState::ReadyAt(0); hermes_trace::instr::NUM_REGS],
            waiters: HashMap::new(),
            agen_events: BinaryHeap::new(),
            lq_used: 0,
            sq_used: 0,
            fetch_stall_until: 0,
            bp,
            stats: CoreStats::default(),
        }
    }

    /// Core identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.retired
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Name of the workload this core runs.
    pub fn workload_name(&self) -> &str {
        self.trace.name()
    }

    /// Zeroes the statistics (end-of-warmup boundary). In-flight state is
    /// kept, matching the paper's warmup/measurement methodology.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    fn entry_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let idx = (seq - head) as usize;
        if idx < self.rob.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Advances the core by one cycle.
    pub fn tick(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        self.issue_due_loads(now, port);
        self.retire(now, port);
        self.fetch_and_dispatch(now);
    }

    /// The earliest cycle at which [`Core::tick`] can do more than
    /// accumulate a stall, assuming no [`Core::finish_load`] arrives in
    /// between: the next address-generation event, the ROB head's known
    /// completion time, or the end of a fetch bubble (only relevant while
    /// the ROB has room — a full ROB can only drain via retirement).
    /// `Cycle::MAX` means the core is blocked entirely on the memory
    /// system. Drives idle-cycle fast-forward: the system may skip every
    /// cycle strictly before the returned one, provided it accounts them
    /// through [`Core::skip_stalled`].
    pub fn next_work_at(&self) -> Cycle {
        let mut at = Cycle::MAX;
        if let Some(&Reverse((t, _))) = self.agen_events.peek() {
            at = at.min(t);
        }
        match self.rob.front() {
            Some(head) => {
                if let EntryState::Done(t) = head.state {
                    at = at.min(t);
                }
                if self.rob.len() < self.cfg.rob_size {
                    at = at.min(self.fetch_stall_until);
                }
            }
            None => at = at.min(self.fetch_stall_until),
        }
        at
    }

    /// Accounts `cycles` skipped ticks in bulk, attributing them exactly
    /// as that many no-op [`Core::tick`] calls would have: to the blocked
    /// ROB head (memory stall), to `stall_cycles_other`, or to
    /// `empty_rob_cycles`. Only valid while every skipped tick would have
    /// been a no-op, i.e. for spans ending before [`Core::next_work_at`].
    pub fn skip_stalled(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        match self.rob.front_mut() {
            None => self.stats.empty_rob_cycles += cycles,
            Some(head) => match head.state {
                EntryState::WaitingMem | EntryState::WaitingAgen => head.blocked_cycles += cycles,
                EntryState::WaitingDeps | EntryState::Done(_) => {
                    self.stats.stall_cycles_other += cycles
                }
            },
        }
    }

    fn issue_due_loads(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        while let Some(&Reverse((at, seq))) = self.agen_events.peek() {
            if at > now {
                break;
            }
            self.agen_events.pop();
            let (core_id, pc, vaddr) = {
                let idx = self.entry_index(seq).expect("agen event for retired entry");
                let e = &mut self.rob[idx];
                debug_assert_eq!(e.state, EntryState::WaitingAgen);
                e.state = EntryState::WaitingMem;
                (self.id, e.pc, e.vaddr)
            };
            port.issue_load(
                LoadIssue {
                    core: core_id,
                    token: seq,
                    pc,
                    vaddr,
                },
                now,
            );
        }
    }

    fn retire(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        let mut retired_now = 0;
        while retired_now < self.cfg.retire_width {
            let Some(head) = self.rob.front_mut() else {
                self.stats.empty_rob_cycles += 1;
                return;
            };
            match head.state {
                EntryState::Done(t) if t <= now => {
                    let e = self.rob.pop_front().expect("front checked above");
                    self.waiters.remove(&e.seq);
                    self.stats.retired += 1;
                    retired_now += 1;
                    match e.kind {
                        EntryKind::Load => {
                            self.stats.loads += 1;
                            self.lq_used -= 1;
                            let served = e.served.unwrap_or(ServedBy::L1);
                            self.stats.record_served(served);
                            if served.is_offchip() {
                                if e.blocked_cycles > 0 {
                                    self.stats.offchip_blocking += 1;
                                    self.stats.stall_cycles_offchip += e.blocked_cycles;
                                } else {
                                    self.stats.offchip_nonblocking += 1;
                                }
                            } else {
                                self.stats.stall_cycles_onchip_load += e.blocked_cycles;
                            }
                        }
                        EntryKind::Store => {
                            self.stats.stores += 1;
                            self.sq_used -= 1;
                            port.issue_store(
                                StoreIssue {
                                    core: self.id,
                                    pc: e.pc,
                                    vaddr: e.vaddr,
                                },
                                now,
                            );
                        }
                        EntryKind::Branch => self.stats.branches += 1,
                        EntryKind::Alu => {}
                    }
                }
                _ => {
                    // Head not ready: attribute the stalled cycle.
                    match head.state {
                        EntryState::WaitingMem | EntryState::WaitingAgen => {
                            head.blocked_cycles += 1;
                        }
                        _ => self.stats.stall_cycles_other += 1,
                    }
                    return;
                }
            }
        }
    }

    fn fetch_and_dispatch(&mut self, now: Cycle) {
        if now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let instr = self.trace.next_instr();
            match instr.mem {
                Some(m) if m.kind == MemKind::Load => {
                    if self.lq_used >= self.cfg.lq_size {
                        break;
                    }
                    self.lq_used += 1;
                }
                Some(_) => {
                    if self.sq_used >= self.cfg.sq_size {
                        break;
                    }
                    self.sq_used += 1;
                }
                None => {}
            }
            let stop_fetch = self.dispatch(instr, now);
            if stop_fetch {
                break;
            }
        }
    }

    /// Dispatches one instruction; returns true if fetch must stop (branch
    /// misprediction bubble).
    fn dispatch(&mut self, instr: Instr, now: Cycle) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;

        let kind = if instr.is_load() {
            EntryKind::Load
        } else if instr.is_store() {
            EntryKind::Store
        } else if instr.is_branch() {
            EntryKind::Branch
        } else {
            EntryKind::Alu
        };

        // Capture dataflow dependencies against the current scoreboard.
        let mut deps = [None, None];
        for (slot, src) in instr.src_regs.iter().enumerate() {
            if let Some(r) = src {
                deps[slot] = Some(match self.regs[*r as usize] {
                    RegState::ReadyAt(t) => SrcDep::Ready(t),
                    RegState::PendingOn(p) => {
                        self.waiters.entry(p).or_default().push(seq);
                        SrcDep::On(p)
                    }
                });
            }
        }

        let mut mispredicted = false;
        if let Some(b) = instr.branch {
            let predicted = self.bp.predict(instr.pc);
            self.bp.train(instr.pc, b.taken, predicted);
            if predicted != b.taken {
                self.stats.branch_mispredicts += 1;
                mispredicted = true;
            }
        }

        if let Some(d) = instr.dst_reg {
            self.regs[d as usize] = RegState::PendingOn(seq);
        }

        self.rob.push_back(RobEntry {
            seq,
            kind,
            state: EntryState::WaitingDeps,
            dispatch_at: now,
            deps,
            dst: instr.dst_reg,
            exec_latency: instr.exec_latency.max(1),
            pc: instr.pc,
            vaddr: instr.mem.map(|m| m.vaddr).unwrap_or(VirtAddr::new(0)),
            mispredicted,
            served: None,
            blocked_cycles: 0,
        });

        if mispredicted {
            // Fetch halts until the branch resolves; if it is already
            // schedulable the resolution cycle is known immediately,
            // otherwise `on_complete` fills it in.
            self.fetch_stall_until = Cycle::MAX;
        }

        self.try_schedule(seq);
        mispredicted
    }

    /// Attempts to compute the entry's execution schedule; no-op unless all
    /// dependencies are resolved.
    fn try_schedule(&mut self, seq: u64) {
        let Some(idx) = self.entry_index(seq) else {
            return;
        };
        let e = &self.rob[idx];
        if e.state != EntryState::WaitingDeps {
            return;
        }
        let mut ready = e.dispatch_at;
        for d in e.deps.iter().flatten() {
            match d {
                SrcDep::Ready(t) => ready = ready.max(*t),
                SrcDep::On(_) => return,
            }
        }
        let e = &mut self.rob[idx];
        match e.kind {
            EntryKind::Load => {
                // One cycle of address generation, then out to memory.
                let agen_at = ready + 1;
                e.state = EntryState::WaitingAgen;
                self.agen_events.push(Reverse((agen_at, seq)));
            }
            EntryKind::Alu | EntryKind::Branch => {
                let done = ready + e.exec_latency as Cycle;
                e.state = EntryState::Done(done);
                self.on_complete(seq, done);
            }
            EntryKind::Store => {
                let done = ready + 1;
                e.state = EntryState::Done(done);
                self.on_complete(seq, done);
            }
        }
    }

    /// Delivers a finished load from the memory system.
    ///
    /// # Panics
    ///
    /// Panics if `token` does not name an in-flight load (a memory-system
    /// protocol violation).
    pub fn finish_load(&mut self, token: u64, now: Cycle, served: ServedBy) {
        let idx = self
            .entry_index(token)
            .expect("finish_load for unknown token");
        let e = &mut self.rob[idx];
        assert_eq!(
            e.state,
            EntryState::WaitingMem,
            "finish_load for load not in memory"
        );
        e.state = EntryState::Done(now);
        e.served = Some(served);
        self.on_complete(token, now);
    }

    /// Propagates a known completion: updates the scoreboard, wakes
    /// dependents, and releases a misprediction fetch bubble.
    fn on_complete(&mut self, seq: u64, done: Cycle) {
        // Scoreboard update (unless a younger producer overwrote the reg).
        if let Some(idx) = self.entry_index(seq) {
            let (dst, mispredicted) = (self.rob[idx].dst, self.rob[idx].mispredicted);
            if let Some(d) = dst {
                if self.regs[d as usize] == RegState::PendingOn(seq) {
                    self.regs[d as usize] = RegState::ReadyAt(done);
                }
            }
            if mispredicted {
                self.fetch_stall_until = done + self.cfg.branch_penalty as Cycle;
            }
        }
        // Wake dependents (iteratively; chains can be ROB-deep).
        let mut work = vec![(seq, done)];
        while let Some((producer, at)) = work.pop() {
            let Some(dependents) = self.waiters.remove(&producer) else {
                continue;
            };
            for dep_seq in dependents {
                let Some(didx) = self.entry_index(dep_seq) else {
                    continue;
                };
                for d in self.rob[didx].deps.iter_mut().flatten() {
                    if *d == SrcDep::On(producer) {
                        *d = SrcDep::Ready(at);
                    }
                }
                let before = self.rob[didx].state;
                self.try_schedule(dep_seq);
                // If the dependent completed synchronously, enqueue its own
                // wakeups (try_schedule -> on_complete already handled reg +
                // waiters for ALU chains; nothing more to do here).
                let _ = before;
            }
        }
    }

    /// Current ROB occupancy (diagnostics / tests).
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Current load+store queue occupancy (interval telemetry).
    pub fn lsq_occupancy(&self) -> usize {
        self.lq_used + self.sq_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_trace::source::VecSource;
    use hermes_trace::Instr;

    /// Fixed-latency memory stub: completes every load after `latency`
    /// cycles, reporting `served`.
    struct StubMem {
        latency: Cycle,
        served: ServedBy,
        pending: Vec<(Cycle, u64)>,
        issued: Vec<LoadIssue>,
        stores: Vec<StoreIssue>,
    }

    impl StubMem {
        fn new(latency: Cycle, served: ServedBy) -> Self {
            Self {
                latency,
                served,
                pending: Vec::new(),
                issued: Vec::new(),
                stores: Vec::new(),
            }
        }

        fn deliver_due(&mut self, now: Cycle, core: &mut Core) {
            let due: Vec<(Cycle, u64)> = self
                .pending
                .iter()
                .copied()
                .filter(|&(t, _)| t <= now)
                .collect();
            self.pending.retain(|&(t, _)| t > now);
            for (_, tok) in due {
                core.finish_load(tok, now, self.served);
            }
        }
    }

    impl MemoryPort for StubMem {
        fn issue_load(&mut self, req: LoadIssue, now: Cycle) {
            self.issued.push(req);
            self.pending.push((now + self.latency, req.token));
        }

        fn issue_store(&mut self, req: StoreIssue, now: Cycle) {
            let _ = now;
            self.stores.push(req);
        }
    }

    fn run(core: &mut Core, mem: &mut StubMem, cycles: Cycle) {
        for now in 0..cycles {
            mem.deliver_due(now, core);
            core.tick(now, mem);
        }
    }

    fn alu_loop() -> Box<dyn TraceSource> {
        Box::new(VecSource::new(
            "alu",
            vec![
                Instr::alu(0x400000, Some(1), [None, None]),
                Instr::alu(0x400004, Some(2), [None, None]),
                Instr::alu(0x400008, Some(3), [None, None]),
            ],
        ))
    }

    #[test]
    fn independent_alu_reaches_wide_ipc() {
        let mut core = Core::new(0, CoreConfig::baseline(), alu_loop());
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 1000);
        let ipc = core.stats().ipc(1000);
        assert!(
            ipc > 4.0,
            "independent ALU stream should near fetch width, got {ipc}"
        );
    }

    #[test]
    fn dependent_chain_is_serial() {
        // Each instruction depends on the previous: IPC must be ~1.
        let src = Box::new(VecSource::new(
            "chain",
            vec![Instr::alu(0x400000, Some(1), [Some(1), None])],
        ));
        let mut core = Core::new(0, CoreConfig::baseline(), src);
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 1000);
        let ipc = core.stats().ipc(1000);
        assert!(ipc < 1.2, "serial chain must not exceed 1 IPC, got {ipc}");
        assert!(ipc > 0.8, "serial chain should sustain ~1 IPC, got {ipc}");
    }

    #[test]
    fn load_latency_gates_dependent_chain() {
        // load r1 <- [r1] pointer chase: IPC limited by memory latency.
        let src = Box::new(VecSource::new(
            "chase",
            vec![Instr::load(
                0x400000,
                VirtAddr::new(0x1000),
                Some(1),
                [Some(1), None],
            )],
        ));
        let mut core = Core::new(0, CoreConfig::baseline(), src);
        let mut mem = StubMem::new(100, ServedBy::Dram);
        run(&mut core, &mut mem, 10_000);
        let retired = core.retired();
        // Roughly one load per ~102 cycles.
        assert!((80..=120).contains(&retired), "retired {retired}");
    }

    #[test]
    fn independent_loads_overlap() {
        let src = Box::new(VecSource::new(
            "mlp",
            vec![
                Instr::load(0x400000, VirtAddr::new(0x1000), Some(8), [Some(1), None]),
                Instr::load(0x400004, VirtAddr::new(0x2000), Some(9), [Some(1), None]),
                Instr::load(0x400008, VirtAddr::new(0x3000), Some(10), [Some(1), None]),
                Instr::load(0x40000c, VirtAddr::new(0x4000), Some(11), [Some(1), None]),
            ],
        ));
        let mut core = Core::new(0, CoreConfig::baseline(), src);
        let mut mem = StubMem::new(100, ServedBy::Dram);
        run(&mut core, &mut mem, 10_000);
        // 4 independent loads per "iteration": far more than serial rate.
        assert!(core.retired() > 300, "retired {}", core.retired());
    }

    #[test]
    fn offchip_blocking_attribution() {
        let src = Box::new(VecSource::new(
            "chase",
            vec![Instr::load(
                0x400000,
                VirtAddr::new(0x1000),
                Some(1),
                [Some(1), None],
            )],
        ));
        let mut core = Core::new(0, CoreConfig::baseline(), src);
        let mut mem = StubMem::new(200, ServedBy::Dram);
        run(&mut core, &mut mem, 5_000);
        let s = core.stats();
        assert!(s.offchip_blocking > 0, "serial off-chip loads must block");
        assert!(s.stall_cycles_offchip > s.offchip_blocking * 100);
        assert_eq!(s.offchip_nonblocking + s.offchip_blocking, s.served_dram);
    }

    #[test]
    fn l1_hits_do_not_count_offchip() {
        let src = Box::new(VecSource::new(
            "l1",
            vec![Instr::load(
                0x400000,
                VirtAddr::new(0x1000),
                Some(1),
                [Some(1), None],
            )],
        ));
        let mut core = Core::new(0, CoreConfig::baseline(), src);
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 2_000);
        assert_eq!(core.stats().served_dram, 0);
        assert!(core.stats().served_l1 > 100);
        assert_eq!(core.stats().stall_cycles_offchip, 0);
    }

    #[test]
    fn branch_mispredictions_cost_cycles() {
        // Alternating hard-to-warm pattern vs always-taken: the mispredict
        // penalty must reduce IPC under a cold predictor.
        let taken_loop = Box::new(VecSource::new(
            "b",
            vec![
                Instr::alu(0x400000, Some(1), [None, None]),
                Instr::branch(0x400004, true, Some(1)),
            ],
        ));
        let mut warm = Core::new(0, CoreConfig::baseline(), taken_loop);
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut warm, &mut mem, 2_000);
        let warm_ipc = warm.stats().ipc(2_000);
        assert!(
            warm_ipc > 2.0,
            "predictable branches should be near-free, got {warm_ipc}"
        );
        // Misprediction counter sanity.
        assert!(warm.stats().branch_mispredicts < warm.stats().branches / 10);
    }

    #[test]
    fn stores_issue_at_retire() {
        let src = Box::new(VecSource::new(
            "st",
            vec![Instr::store(
                0x400000,
                VirtAddr::new(0x2000),
                [Some(1), None],
            )],
        ));
        let mut core = Core::new(0, CoreConfig::baseline(), src);
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 100);
        assert!(!mem.stores.is_empty());
        assert_eq!(core.stats().stores as usize, mem.stores.len());
    }

    #[test]
    fn rob_occupancy_bounded() {
        let src = Box::new(VecSource::new(
            "chase",
            vec![Instr::load(
                0x400000,
                VirtAddr::new(0x1000),
                Some(1),
                [Some(1), None],
            )],
        ));
        let cfg = CoreConfig {
            rob_size: 64,
            ..CoreConfig::baseline()
        };
        let mut core = Core::new(0, cfg, src);
        let mut mem = StubMem::new(10_000, ServedBy::Dram); // never completes in window
        for now in 0..200 {
            core.tick(now, &mut mem);
            assert!(core.rob_occupancy() <= 64);
        }
    }

    #[test]
    fn lq_bounds_inflight_loads() {
        let src = Box::new(VecSource::new(
            "mlp",
            vec![Instr::load(
                0x400000,
                VirtAddr::new(0x1000),
                Some(8),
                [None, None],
            )],
        ));
        let cfg = CoreConfig {
            lq_size: 4,
            ..CoreConfig::baseline()
        };
        let mut core = Core::new(0, cfg, src);
        let mut mem = StubMem::new(10_000, ServedBy::Dram);
        for now in 0..100 {
            core.tick(now, &mut mem);
        }
        assert!(
            mem.issued.len() <= 4,
            "LQ cap violated: {}",
            mem.issued.len()
        );
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut core = Core::new(0, CoreConfig::baseline(), alu_loop());
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 100);
        assert!(core.retired() > 0);
        core.reset_stats();
        assert_eq!(core.retired(), 0);
    }

    #[test]
    #[should_panic]
    fn finish_unknown_token_panics() {
        let mut core = Core::new(0, CoreConfig::baseline(), alu_loop());
        core.finish_load(999, 0, ServedBy::L1);
    }

    #[test]
    fn next_work_at_reflects_core_state() {
        // A fresh core can fetch immediately.
        let core = Core::new(0, CoreConfig::baseline(), alu_loop());
        assert_eq!(core.next_work_at(), 0);

        // A core whose tiny ROB is full of memory-blocked work reports
        // "never" — only finish_load can unblock it.
        let src = Box::new(VecSource::new(
            "chase",
            vec![Instr::load(
                0x400000,
                VirtAddr::new(0x1000),
                Some(1),
                [Some(1), None],
            )],
        ));
        let cfg = CoreConfig {
            rob_size: 8,
            ..CoreConfig::baseline()
        };
        let mut core = Core::new(0, cfg, src);
        let mut mem = StubMem::new(1_000_000, ServedBy::Dram);
        for now in 0..10 {
            core.tick(now, &mut mem);
        }
        assert_eq!(core.rob_occupancy(), 8);
        assert_eq!(core.next_work_at(), Cycle::MAX);
    }

    #[test]
    fn skip_stalled_matches_ticked_stalls() {
        // Two identical cores, both blocked on the same off-chip load:
        // one ticks through 500 dead cycles, the other skips them in one
        // call. Their statistics must be indistinguishable afterwards.
        let mk = || {
            let src = Box::new(VecSource::new(
                "chase",
                vec![Instr::load(
                    0x400000,
                    VirtAddr::new(0x1000),
                    Some(1),
                    [Some(1), None],
                )],
            ));
            let cfg = CoreConfig {
                rob_size: 8,
                ..CoreConfig::baseline()
            };
            Core::new(0, cfg, src)
        };
        let mut ticked = mk();
        let mut skipped = mk();
        let mut mem_t = StubMem::new(1_000_000, ServedBy::Dram);
        let mut mem_s = StubMem::new(1_000_000, ServedBy::Dram);
        for now in 0..10 {
            ticked.tick(now, &mut mem_t);
            skipped.tick(now, &mut mem_s);
        }
        assert_eq!(ticked.next_work_at(), Cycle::MAX);

        for now in 10..510 {
            ticked.tick(now, &mut mem_t);
        }
        skipped.skip_stalled(500);

        // Deliver the head load in both at the same cycle and retire it.
        let tok = mem_t.issued.first().expect("head load issued").token;
        ticked.finish_load(tok, 510, ServedBy::Dram);
        skipped.finish_load(tok, 510, ServedBy::Dram);
        ticked.tick(510, &mut mem_t);
        skipped.tick(510, &mut mem_s);

        assert_eq!(ticked.retired(), 1);
        assert_eq!(ticked.stats(), skipped.stats());
        assert!(ticked.stats().stall_cycles_offchip >= 500);
    }

    #[test]
    fn load_issue_carries_pc_and_vaddr() {
        let src = Box::new(VecSource::new(
            "ld",
            vec![Instr::load(
                0xdead0,
                VirtAddr::new(0xbeef00),
                Some(2),
                [None, None],
            )],
        ));
        let mut core = Core::new(3, CoreConfig::baseline(), src);
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 20);
        let first = mem.issued.first().expect("a load must issue");
        assert_eq!(first.pc, 0xdead0);
        assert_eq!(first.vaddr.raw(), 0xbeef00);
        assert_eq!(first.core, 3);
    }
}
