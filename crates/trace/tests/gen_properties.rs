//! Property tests for the trace generators: determinism per seed, seed
//! sensitivity, and working-set bounds.
//!
//! These are the contracts the rest of the system leans on: the simulator's
//! reproducibility proof rests on generator determinism, figure comparisons
//! across configurations rest on seed stability, and cache-pressure
//! reasoning rests on generators staying inside their declared footprints.

use proptest::prelude::*;

use hermes_trace::gen::canneal::Canneal;
use hermes_trace::gen::pointer_chase::PointerChase;
use hermes_trace::gen::random_access::RandomAccess;
use hermes_trace::gen::server::ServerMix;
use hermes_trace::gen::stream::StreamSweep;
use hermes_trace::gen::Layout;
use hermes_trace::{suite, TraceSource};

/// One naturally-aligned region per logical data structure (see
/// [`Layout`]); generators use indices well below this.
const MAX_REGION_IDX: u64 = 28;

/// The compute-dilution filler touches a tiny hot "stack" region far above
/// the heap (see `gen::dilute`).
const HOT_BASE: u64 = 0x7FFF_0000_0000;
const HOT_SPAN: u64 = 1 << 20;

fn region(idx: u64) -> u64 {
    Layout::new().region(idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same spec (same seed) ⇒ byte-identical instruction stream, for every
    /// workload in the default suite (exercising the Mixed/Diluted wrappers
    /// too, not just the leaf generators).
    #[test]
    fn same_seed_same_stream(which in 0usize..20, n in 200usize..800) {
        let spec = &suite::default_suite()[which];
        let mut a = spec.build();
        let mut b = spec.build();
        for i in 0..n {
            prop_assert_eq!(a.next_instr(), b.next_instr(), "diverged at instruction {}", i);
        }
    }

    /// Different seeds ⇒ observably different streams for every workload in
    /// the default suite (every generator folds the seed into either its
    /// RNG stream or its sweep phase).
    #[test]
    fn different_seeds_different_streams(which in 0usize..20, bump in 1u64..1000) {
        let spec = &suite::default_suite()[which];
        let alt = suite::WorkloadSpec::new(
            spec.name.clone(),
            spec.category,
            spec.config.clone(),
            spec.seed + bump,
        );
        let mut a = spec.build();
        let mut b = alt.build();
        let differs = (0..2000).any(|_| a.next_instr() != b.next_instr());
        prop_assert!(differs, "seed {} and {} produced identical streams", spec.seed, spec.seed + bump);
    }

    /// Every access of every suite workload stays inside the declared
    /// address space: the heap layout regions plus the dilution hot region.
    #[test]
    fn suite_respects_address_space(which in 0usize..20, n in 500usize..1500) {
        let spec = &suite::default_suite()[which];
        let heap = region(0);
        let heap_end = region(MAX_REGION_IDX);
        let mut src = spec.build();
        for _ in 0..n {
            if let Some(m) = src.next_instr().mem {
                let a = m.vaddr.raw();
                let in_heap = (heap..heap_end).contains(&a);
                let in_hot = (HOT_BASE..HOT_BASE + HOT_SPAN).contains(&a);
                prop_assert!(in_heap || in_hot, "{}: access {a:#x} outside address space", spec.name);
            }
        }
    }

    /// Pointer chase: every access falls inside the node array —
    /// `nodes.next_power_of_two()` 64 B nodes at region 0.
    #[test]
    fn pointer_chase_working_set(nodes in 2u64..5000, work in 0u32..4, seed in 0u64..1000) {
        let lo = region(0);
        let hi = lo + nodes.next_power_of_two() * 64;
        let mut g = PointerChase::new(nodes, work, seed);
        for _ in 0..2000 {
            if let Some(m) = g.next_instr().mem {
                prop_assert!((lo..hi).contains(&m.vaddr.raw()));
            }
        }
    }

    /// Random table access: bounded by the power-of-two-rounded table.
    #[test]
    fn random_access_working_set(table in 128u64..(1 << 20), update in any::<bool>(), seed in 0u64..1000) {
        let lo = region(8);
        let hi = lo + table.next_power_of_two();
        let mut g = RandomAccess::new(table, update, seed);
        for _ in 0..2000 {
            if let Some(m) = g.next_instr().mem {
                prop_assert!((lo..hi).contains(&m.vaddr.raw()));
            }
        }
    }

    /// Stream triad: loads stay in arrays A and B, stores in C, all within
    /// `elems * elem_size` of their bases.
    #[test]
    fn stream_working_set(
        elems in 1u64..10_000,
        esz_idx in 0usize..7,
        store in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let elem_size = [1u64, 2, 4, 8, 16, 32, 64][esz_idx];
        let span = elems * elem_size;
        let mut g = StreamSweep::new(elems, elem_size, store, seed);
        for _ in 0..2000 {
            let i = g.next_instr();
            if let Some(m) = i.mem {
                let a = m.vaddr.raw();
                let in_any = [region(1), region(2), region(3)]
                    .iter()
                    .any(|&base| (base..base + span).contains(&a));
                prop_assert!(in_any, "stream access {a:#x} outside its arrays");
                if i.is_store() {
                    prop_assert!((region(3)..region(3) + span).contains(&a), "store outside C");
                }
            }
        }
    }

    /// Canneal: element and location arrays are both bounded by the
    /// power-of-two-rounded element count.
    #[test]
    fn canneal_working_set(elems in 16u64..10_000, seed in 0u64..1000) {
        let span = elems.next_power_of_two() * 64;
        let mut g = Canneal::new(elems, seed);
        for _ in 0..2000 {
            if let Some(m) = g.next_instr().mem {
                let a = m.vaddr.raw();
                let ok = (region(24)..region(24) + span).contains(&a)
                    || (region(25)..region(25) + span).contains(&a);
                prop_assert!(ok, "canneal access {a:#x} outside both arrays");
            }
        }
    }

    /// Server mix: hot-state loads inside `hot_bytes`, session loads inside
    /// the power-of-two-rounded session table, log stores inside the fixed
    /// 32 MiB log window.
    #[test]
    fn server_working_set(
        hot_kib in 4u64..256,
        session_kib in 4u64..4096,
        cold in 0u32..1000,
        seed in 0u64..1000,
    ) {
        let hot_bytes = hot_kib * 1024;
        let session_bytes = session_kib * 1024;
        let mut g = ServerMix::new(hot_bytes, session_bytes, cold, seed);
        for _ in 0..3000 {
            if let Some(m) = g.next_instr().mem {
                let a = m.vaddr.raw();
                let ok = (region(19)..region(19) + hot_bytes).contains(&a)
                    || (region(20)..region(20) + session_bytes.next_power_of_two()).contains(&a)
                    || (region(21)..region(21) + (1 << 25)).contains(&a);
                prop_assert!(ok, "server access {a:#x} outside hot/session/log bounds");
            }
        }
    }
}
