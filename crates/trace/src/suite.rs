//! Workload suite definitions.
//!
//! Maps the paper's five workload categories (Table 5: SPEC06, SPEC17,
//! PARSEC, Ligra, CVP) onto parameterised synthetic generators. Each
//! [`WorkloadSpec`] is a named, seeded, reproducible stand-in for one
//! ChampSim trace; [`default_suite`] is the laptop-scale set used by the
//! experiment binaries by default and [`full_suite`] the extended set
//! enabled by `--full`.

use crate::gen::canneal::Canneal;
use crate::gen::graph::{GraphKernel, GraphWorkload};
use crate::gen::hash_join::HashJoin;
use crate::gen::mixed::MixedPhase;
use crate::gen::pointer_chase::PointerChase;
use crate::gen::random_access::RandomAccess;
use crate::gen::server::ServerMix;
use crate::gen::stencil::Stencil3d;
use crate::gen::stream::StreamSweep;
use crate::gen::streamcluster::StreamCluster;
use crate::source::TraceSource;

/// Workload category, matching the paper's Table 5 grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// SPEC CPU2006-like.
    Spec06,
    /// SPEC CPU2017-like.
    Spec17,
    /// PARSEC-like.
    Parsec,
    /// Ligra graph-processing-like.
    Ligra,
    /// CVP-2 commercial-trace-like.
    Cvp,
}

impl Category {
    /// All categories in the paper's presentation order.
    pub const ALL: [Category; 5] = [
        Category::Spec06,
        Category::Spec17,
        Category::Parsec,
        Category::Ligra,
        Category::Cvp,
    ];

    /// Short display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Category::Spec06 => "SPEC06",
            Category::Spec17 => "SPEC17",
            Category::Parsec => "PARSEC",
            Category::Ligra => "Ligra",
            Category::Cvp => "CVP",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Generator configuration for one workload (the serializable "recipe").
#[derive(Debug, Clone, PartialEq)]
pub enum GenConfig {
    /// Pointer chase: (nodes, work_per_hop).
    PointerChase { nodes: u64, work: u32 },
    /// Stream triad: (elements, elem_size, with_store).
    Stream {
        elems: u64,
        elem_size: u64,
        store: bool,
    },
    /// Strided multi-array: (arrays, stride, footprint, work).
    Strided {
        arrays: usize,
        stride: u64,
        footprint: u64,
        work: u32,
    },
    /// Random table access: (table_bytes, update).
    Random { table_bytes: u64, update: bool },
    /// Graph kernel: (kernel, vertices, avg_degree).
    Graph {
        kernel: GraphKernel,
        vertices: u32,
        avg_degree: u32,
    },
    /// Radii-style multi-source BFS: (vertices, avg_degree).
    Radii { vertices: u32, avg_degree: u32 },
    /// Hash join: (ht_bytes, probe_len).
    HashJoin { ht_bytes: u64, probe_len: u64 },
    /// Server mix: (hot_bytes, session_bytes, cold_per_mille).
    Server {
        hot_bytes: u64,
        session_bytes: u64,
        cold_per_mille: u32,
    },
    /// 3-D stencil: (nx, ny, nz).
    Stencil { nx: u64, ny: u64, nz: u64 },
    /// Stream clustering: (points, medoids, dims).
    StreamCluster {
        points: u64,
        medoids: u64,
        dims: u64,
    },
    /// Canneal swaps: (elems).
    Canneal { elems: u64 },
    /// Phase alternation between two sub-configs.
    Mixed {
        a: Box<GenConfig>,
        b: Box<GenConfig>,
        period: u64,
    },
    /// Compute dilution: `work` ALU instructions after every memory
    /// instruction of the inner config (scales MPKI toward the paper's
    /// ~8-per-kilo-instruction regime).
    Diluted { inner: Box<GenConfig>, work: u32 },
    /// Producer-consumer ring over the shared region (core-aware:
    /// even cores produce, odd cores consume): (slots, payload_lines,
    /// work).
    PcRing {
        slots: u64,
        payload_lines: u32,
        work: u32,
    },
    /// Shared-hot-set server mix (core-aware, decorrelated streams):
    /// (shared_bytes, private_bytes, shared_per_mille, store_per_mille).
    SharedHot {
        shared_bytes: u64,
        private_bytes: u64,
        shared_per_mille: u32,
        store_per_mille: u32,
    },
    /// Spill/reload kernel: every store is reloaded a few instructions
    /// later (store-to-load forwarding): (scratch slots, ALU work).
    WriteReload { slots: u64, work: u32 },
}

/// A named, seeded workload: the unit the experiment harness iterates over.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Trace name, e.g. `mcf-like-1`.
    pub name: String,
    /// Category the workload reports under.
    pub category: Category,
    /// Generator recipe.
    pub config: GenConfig,
    /// Seed controlling all randomness in the generator.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, category: Category, config: GenConfig, seed: u64) -> Self {
        Self {
            name: name.into(),
            category,
            config,
            seed,
        }
    }

    /// Instantiates the generator as core 0 sees it.
    pub fn build(&self) -> Box<dyn TraceSource> {
        self.build_for(0)
    }

    /// Instantiates the generator for one core of a multi-core run.
    ///
    /// Every historical generator ignores `core` (all cores replay the
    /// identical stream, the paper's homogeneous-mix methodology); the
    /// sharing-aware generators derive the core's role and a
    /// decorrelated stream from it.
    pub fn build_for(&self, core: usize) -> Box<dyn TraceSource> {
        build_config(&self.config, self.seed, core)
    }
}

fn build_config(config: &GenConfig, seed: u64, core: usize) -> Box<dyn TraceSource> {
    match config {
        GenConfig::PointerChase { nodes, work } => Box::new(PointerChase::new(*nodes, *work, seed)),
        GenConfig::Stream {
            elems,
            elem_size,
            store,
        } => Box::new(StreamSweep::new(*elems, *elem_size, *store, seed)),
        GenConfig::Strided {
            arrays,
            stride,
            footprint,
            work,
        } => Box::new(StridedMulti::new(*arrays, *stride, *footprint, *work, seed)),
        GenConfig::Random {
            table_bytes,
            update,
        } => Box::new(RandomAccess::new(*table_bytes, *update, seed)),
        GenConfig::Graph {
            kernel,
            vertices,
            avg_degree,
        } => Box::new(GraphWorkload::new(*kernel, *vertices, *avg_degree, seed)),
        GenConfig::Radii {
            vertices,
            avg_degree,
        } => Box::new(GraphWorkload::new_radii(*vertices, *avg_degree, seed)),
        GenConfig::HashJoin {
            ht_bytes,
            probe_len,
        } => Box::new(HashJoin::new(*ht_bytes, *probe_len, seed)),
        GenConfig::Server {
            hot_bytes,
            session_bytes,
            cold_per_mille,
        } => Box::new(ServerMix::new(
            *hot_bytes,
            *session_bytes,
            *cold_per_mille,
            seed,
        )),
        GenConfig::Stencil { nx, ny, nz } => Box::new(Stencil3d::new(*nx, *ny, *nz, seed)),
        GenConfig::StreamCluster {
            points,
            medoids,
            dims,
        } => Box::new(StreamCluster::new(*points, *medoids, *dims, seed)),
        GenConfig::Canneal { elems } => Box::new(Canneal::new(*elems, seed)),
        GenConfig::Mixed { a, b, period } => Box::new(MixedPhase::new(
            build_config(a, seed, core),
            build_config(b, seed ^ 0x5A5A, core),
            *period,
        )),
        GenConfig::Diluted { inner, work } => Box::new(crate::gen::dilute::Dilute::new(
            build_config(inner, seed, core),
            *work,
        )),
        GenConfig::PcRing {
            slots,
            payload_lines,
            work,
        } => Box::new(crate::gen::sharing::PcRing::new(
            *slots,
            *payload_lines,
            *work,
            seed,
            core,
        )),
        GenConfig::SharedHot {
            shared_bytes,
            private_bytes,
            shared_per_mille,
            store_per_mille,
        } => Box::new(crate::gen::sharing::SharedHotSet::new(
            *shared_bytes,
            *private_bytes,
            *shared_per_mille,
            *store_per_mille,
            seed,
            core,
        )),
        GenConfig::WriteReload { slots, work } => Box::new(
            crate::gen::write_reload::WriteReload::new(*slots, *work, seed),
        ),
    }
}

use crate::gen::strided::StridedMulti;

const MB: u64 = 1 << 20;

/// The laptop-scale suite: four representative traces per category
/// (20 total). Used by experiment binaries unless `--full` is passed.
pub fn default_suite() -> Vec<WorkloadSpec> {
    use Category::*;
    use GenConfig::*;
    let dil = |inner: GenConfig, work: u32| Diluted {
        inner: Box::new(inner),
        work,
    };
    vec![
        // --- SPEC06-like ---
        WorkloadSpec::new(
            "mcf-like",
            Spec06,
            dil(
                PointerChase {
                    nodes: 512 * 1024,
                    work: 3,
                },
                12,
            ),
            11,
        ),
        WorkloadSpec::new(
            "lbm-like",
            Spec06,
            dil(
                Stream {
                    elems: 4 << 20,
                    elem_size: 4,
                    store: true,
                },
                5,
            ),
            12,
        ),
        WorkloadSpec::new(
            "cactus-like",
            Spec06,
            dil(
                Strided {
                    arrays: 4,
                    stride: 320,
                    footprint: 24 * MB,
                    work: 2,
                },
                40,
            ),
            13,
        ),
        WorkloadSpec::new(
            "omnetpp-like",
            Spec06,
            dil(
                Random {
                    table_bytes: 12 * MB,
                    update: true,
                },
                16,
            ),
            14,
        ),
        // --- SPEC17-like ---
        WorkloadSpec::new(
            "mcf_s-like",
            Spec17,
            dil(
                PointerChase {
                    nodes: 1 << 20,
                    work: 2,
                },
                16,
            ),
            21,
        ),
        WorkloadSpec::new(
            "fotonik3d-like",
            Spec17,
            dil(
                Stencil {
                    nx: 128,
                    ny: 128,
                    nz: 96,
                },
                4,
            ),
            22,
        ),
        WorkloadSpec::new(
            "xalancbmk_s-like",
            Spec17,
            dil(
                Random {
                    table_bytes: 16 * MB,
                    update: false,
                },
                32,
            ),
            23,
        ),
        WorkloadSpec::new(
            "gcc_s-like",
            Spec17,
            dil(
                Mixed {
                    a: Box::new(PointerChase {
                        nodes: 128 * 1024,
                        work: 6,
                    }),
                    b: Box::new(Server {
                        hot_bytes: 64 << 10,
                        session_bytes: 16 * MB,
                        cold_per_mille: 150,
                    }),
                    period: 30_000,
                },
                6,
            ),
            24,
        ),
        // --- PARSEC-like ---
        WorkloadSpec::new(
            "canneal-like",
            Parsec,
            dil(Canneal { elems: 96 * 1024 }, 12),
            31,
        ),
        WorkloadSpec::new(
            "streamcluster-like",
            Parsec,
            StreamCluster {
                points: 1 << 20,
                medoids: 8,
                dims: 8,
            },
            32,
        ),
        WorkloadSpec::new(
            "facesim-like",
            Parsec,
            dil(
                Stencil {
                    nx: 96,
                    ny: 96,
                    nz: 96,
                },
                4,
            ),
            33,
        ),
        WorkloadSpec::new(
            "raytrace-like",
            Parsec,
            dil(
                PointerChase {
                    nodes: 192 * 1024,
                    work: 8,
                },
                16,
            ),
            34,
        ),
        // --- Ligra-like ---
        WorkloadSpec::new(
            "ligra-bfs",
            Ligra,
            dil(
                Graph {
                    kernel: GraphKernel::Bfs,
                    vertices: 400_000,
                    avg_degree: 8,
                },
                10,
            ),
            41,
        ),
        WorkloadSpec::new(
            "ligra-pagerank",
            Ligra,
            dil(
                Graph {
                    kernel: GraphKernel::PageRank,
                    vertices: 1_200_000,
                    avg_degree: 8,
                },
                8,
            ),
            42,
        ),
        WorkloadSpec::new(
            "ligra-components",
            Ligra,
            dil(
                Graph {
                    kernel: GraphKernel::Components,
                    vertices: 1_000_000,
                    avg_degree: 8,
                },
                8,
            ),
            43,
        ),
        WorkloadSpec::new(
            "ligra-triangle",
            Ligra,
            dil(
                Graph {
                    kernel: GraphKernel::Triangle,
                    vertices: 200_000,
                    avg_degree: 12,
                },
                4,
            ),
            44,
        ),
        // --- CVP-like ---
        WorkloadSpec::new(
            "server-int",
            Cvp,
            dil(
                Server {
                    hot_bytes: 128 << 10,
                    session_bytes: 32 * MB,
                    cold_per_mille: 250,
                },
                2,
            ),
            51,
        ),
        WorkloadSpec::new(
            "server-join",
            Cvp,
            dil(
                HashJoin {
                    ht_bytes: 12 * MB,
                    probe_len: 1 << 18,
                },
                12,
            ),
            52,
        ),
        WorkloadSpec::new(
            "compute-fp",
            Cvp,
            dil(
                Stream {
                    elems: 6 << 20,
                    elem_size: 8,
                    store: false,
                },
                6,
            ),
            53,
        ),
        WorkloadSpec::new(
            "compute-int",
            Cvp,
            dil(
                Mixed {
                    a: Box::new(Random {
                        table_bytes: 12 * MB,
                        update: true,
                    }),
                    b: Box::new(Stream {
                        elems: 2 << 20,
                        elem_size: 4,
                        store: true,
                    }),
                    period: 20_000,
                },
                16,
            ),
            54,
        ),
    ]
}

/// The extended suite (~55 traces): every default trace plus parameter and
/// seed variants, mirroring how the paper's 110 traces contain several
/// simpoints per benchmark.
pub fn full_suite() -> Vec<WorkloadSpec> {
    use Category::*;
    use GenConfig::*;
    let mut v = default_suite();
    let dil = |inner: GenConfig, work: u32| Diluted {
        inner: Box::new(inner),
        work,
    };
    let extra = vec![
        WorkloadSpec::new(
            "mcf-like-2",
            Spec06,
            dil(
                PointerChase {
                    nodes: 256 * 1024,
                    work: 5,
                },
                10,
            ),
            111,
        ),
        WorkloadSpec::new(
            "libquantum-like",
            Spec06,
            dil(
                Stream {
                    elems: 8 << 20,
                    elem_size: 4,
                    store: false,
                },
                6,
            ),
            112,
        ),
        WorkloadSpec::new(
            "soplex-like",
            Spec06,
            dil(
                Random {
                    table_bytes: 24 * MB,
                    update: true,
                },
                14,
            ),
            113,
        ),
        WorkloadSpec::new(
            "gems-like",
            Spec06,
            dil(
                Strided {
                    arrays: 6,
                    stride: 192,
                    footprint: 24 * MB,
                    work: 3,
                },
                14,
            ),
            114,
        ),
        WorkloadSpec::new(
            "milc-like",
            Spec06,
            dil(
                Stencil {
                    nx: 64,
                    ny: 64,
                    nz: 256,
                },
                5,
            ),
            115,
        ),
        WorkloadSpec::new(
            "sphinx-like",
            Spec06,
            dil(
                Stream {
                    elems: 3 << 20,
                    elem_size: 4,
                    store: true,
                },
                8,
            ),
            116,
        ),
        WorkloadSpec::new(
            "mcf_s-like-2",
            Spec17,
            dil(
                PointerChase {
                    nodes: 2 << 20,
                    work: 1,
                },
                18,
            ),
            121,
        ),
        WorkloadSpec::new(
            "roms-like",
            Spec17,
            dil(
                Stream {
                    elems: 5 << 20,
                    elem_size: 8,
                    store: true,
                },
                4,
            ),
            122,
        ),
        WorkloadSpec::new(
            "cam4-like",
            Spec17,
            dil(
                Strided {
                    arrays: 5,
                    stride: 256,
                    footprint: 20 * MB,
                    work: 4,
                },
                12,
            ),
            123,
        ),
        WorkloadSpec::new(
            "pop2-like",
            Spec17,
            dil(
                Stencil {
                    nx: 160,
                    ny: 160,
                    nz: 48,
                },
                6,
            ),
            124,
        ),
        WorkloadSpec::new(
            "lbm_s-like",
            Spec17,
            dil(
                Stream {
                    elems: 7 << 20,
                    elem_size: 4,
                    store: true,
                },
                4,
            ),
            125,
        ),
        WorkloadSpec::new(
            "canneal-like-2",
            Parsec,
            dil(Canneal { elems: 192 * 1024 }, 14),
            131,
        ),
        WorkloadSpec::new(
            "streamcluster-like-2",
            Parsec,
            StreamCluster {
                points: 2 << 20,
                medoids: 16,
                dims: 4,
            },
            132,
        ),
        WorkloadSpec::new(
            "dedup-like",
            Parsec,
            dil(
                HashJoin {
                    ht_bytes: 16 * MB,
                    probe_len: 1 << 17,
                },
                10,
            ),
            133,
        ),
        WorkloadSpec::new(
            "ligra-radii",
            Ligra,
            dil(
                Radii {
                    vertices: 300_000,
                    avg_degree: 8,
                },
                8,
            ),
            141,
        ),
        WorkloadSpec::new(
            "ligra-pagerank-2",
            Ligra,
            dil(
                Graph {
                    kernel: GraphKernel::PageRank,
                    vertices: 800_000,
                    avg_degree: 6,
                },
                8,
            ),
            142,
        ),
        WorkloadSpec::new(
            "ligra-bfs-2",
            Ligra,
            dil(
                Graph {
                    kernel: GraphKernel::Bfs,
                    vertices: 700_000,
                    avg_degree: 5,
                },
                10,
            ),
            143,
        ),
        WorkloadSpec::new(
            "ligra-components-2",
            Ligra,
            dil(
                Graph {
                    kernel: GraphKernel::Components,
                    vertices: 600_000,
                    avg_degree: 10,
                },
                8,
            ),
            144,
        ),
        WorkloadSpec::new(
            "server-int-2",
            Cvp,
            dil(
                Server {
                    hot_bytes: 256 << 10,
                    session_bytes: 32 * MB,
                    cold_per_mille: 180,
                },
                2,
            ),
            151,
        ),
        WorkloadSpec::new(
            "server-join-2",
            Cvp,
            dil(
                HashJoin {
                    ht_bytes: 24 * MB,
                    probe_len: 1 << 19,
                },
                10,
            ),
            152,
        ),
        WorkloadSpec::new(
            "compute-int-2",
            Cvp,
            dil(
                Random {
                    table_bytes: 16 * MB,
                    update: false,
                },
                12,
            ),
            153,
        ),
        WorkloadSpec::new(
            "crypto-like",
            Cvp,
            dil(
                Mixed {
                    a: Box::new(Stream {
                        elems: 4 << 20,
                        elem_size: 8,
                        store: true,
                    }),
                    b: Box::new(Random {
                        table_bytes: 8 * MB,
                        update: true,
                    }),
                    period: 15_000,
                },
                8,
            ),
            154,
        ),
    ];
    v.extend(extra);
    // Seed variants double the count, like multiple simpoints per binary.
    let variants: Vec<WorkloadSpec> = v
        .iter()
        .map(|w| {
            WorkloadSpec::new(
                format!("{}-alt", w.name),
                w.category,
                w.config.clone(),
                w.seed + 1000,
            )
        })
        .collect();
    v.extend(variants);
    v
}

/// TLB-stressing workload variants: footprints far beyond any STLB's
/// 4 KB reach, accessed at page granularity or worse, so address
/// translation — not just the caches — becomes the bottleneck. The
/// `tlb_sweep` experiment sweeps TLB sizes and page sizes over this set;
/// the patterns reuse the regular generators, only scaled until their
/// page working sets dwarf a 1024-entry STLB (4 MB of 4 KB reach).
pub fn tlb_suite() -> Vec<WorkloadSpec> {
    use Category::*;
    use GenConfig::*;
    let dil = |inner: GenConfig, work: u32| Diluted {
        inner: Box::new(inner),
        work,
    };
    vec![
        // A chase over 256 MB: every hop a fresh random page.
        WorkloadSpec::new(
            "tlb-chase",
            Spec06,
            dil(
                PointerChase {
                    nodes: 4 << 20,
                    work: 2,
                },
                8,
            ),
            61,
        ),
        // Random 8 B probes over a 128 MB table: ~32 K distinct pages.
        WorkloadSpec::new(
            "tlb-random",
            Spec17,
            dil(
                Random {
                    table_bytes: 128 * MB,
                    update: false,
                },
                8,
            ),
            62,
        ),
        // Page-granular strides: one line touched per 4 KB page, so the
        // caches barely help and every access needs a fresh translation.
        WorkloadSpec::new(
            "tlb-stride4k",
            Parsec,
            dil(
                Strided {
                    arrays: 4,
                    stride: 4096 + 64,
                    footprint: 96 * MB,
                    work: 2,
                },
                6,
            ),
            63,
        ),
        // A 96 MB hash table: build-probe traffic across ~24 K pages.
        WorkloadSpec::new(
            "tlb-join",
            Cvp,
            dil(
                HashJoin {
                    ht_bytes: 96 * MB,
                    probe_len: 1 << 18,
                },
                6,
            ),
            64,
        ),
    ]
}

/// Sharing workloads at a given shared-access fraction (per mille):
/// a producer-consumer ring (inherently 100% shared; even cores
/// produce, odd cores consume) and a shared-hot-set server mix whose
/// shared fraction follows the knob. Multi-core runs of this suite
/// require `SystemConfig::coherence` — without it, stores to shared
/// lines are silently invisible to other cores. The `sharing_sweep`
/// experiment sweeps the fraction × core count × Hermes grid over it.
pub fn sharing_suite(shared_per_mille: u32) -> Vec<WorkloadSpec> {
    use Category::*;
    use GenConfig::*;
    let dil = |inner: GenConfig, work: u32| Diluted {
        inner: Box::new(inner),
        work,
    };
    vec![
        WorkloadSpec::new(
            "pc-ring",
            Parsec,
            dil(
                PcRing {
                    slots: 4096,
                    payload_lines: 3,
                    work: 4,
                },
                6,
            ),
            71,
        ),
        WorkloadSpec::new(
            format!("shared-hot-{shared_per_mille}"),
            Cvp,
            dil(
                SharedHot {
                    // Small enough to be genuinely hot (L1/L2-resident),
                    // so contended stores *hit* Shared lines and exercise
                    // the upgrade path, not just store-miss RFOs.
                    shared_bytes: 64 << 10,
                    private_bytes: 16 * MB,
                    shared_per_mille,
                    store_per_mille: 300,
                },
                8,
            ),
            72,
        ),
    ]
}

/// A reduced suite for fast smoke tests (one trace per category, smaller
/// footprints).
pub fn smoke_suite() -> Vec<WorkloadSpec> {
    use Category::*;
    use GenConfig::*;
    vec![
        WorkloadSpec::new(
            "smoke-chase",
            Spec06,
            PointerChase {
                nodes: 64 * 1024,
                work: 2,
            },
            1,
        ),
        WorkloadSpec::new(
            "smoke-stream",
            Spec17,
            Stream {
                elems: 1 << 20,
                elem_size: 4,
                store: true,
            },
            2,
        ),
        WorkloadSpec::new("smoke-canneal", Parsec, Canneal { elems: 64 * 1024 }, 3),
        WorkloadSpec::new(
            "smoke-pagerank",
            Ligra,
            Graph {
                kernel: GraphKernel::PageRank,
                vertices: 100_000,
                avg_degree: 6,
            },
            4,
        ),
        WorkloadSpec::new(
            "smoke-server",
            Cvp,
            Server {
                hot_bytes: 64 << 10,
                session_bytes: 12 * MB,
                cold_per_mille: 200,
            },
            5,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn default_suite_covers_all_categories() {
        let suite = default_suite();
        let cats: HashSet<Category> = suite.iter().map(|w| w.category).collect();
        assert_eq!(cats.len(), 5);
        assert_eq!(suite.len(), 20);
    }

    #[test]
    fn tlb_suite_builds_and_touches_many_pages() {
        let suite = tlb_suite();
        assert!(suite.len() >= 4);
        for w in &suite {
            let mut src = w.build();
            let mut pages = std::collections::HashSet::new();
            for _ in 0..20_000 {
                let i = src.next_instr();
                if let Some(m) = i.mem {
                    pages.insert(m.vaddr.page_number());
                }
            }
            assert!(
                pages.len() > 64,
                "{} touched only {} pages in 20k instrs — not TLB-stressing",
                w.name,
                pages.len()
            );
        }
    }

    #[test]
    fn sharing_suite_emits_shared_and_private_traffic() {
        for pm in [0u32, 500] {
            for w in sharing_suite(pm) {
                for core in 0..2 {
                    let mut src = w.build_for(core);
                    let mut mem = 0u64;
                    let mut shared = 0u64;
                    for _ in 0..20_000 {
                        if let Some(m) = src.next_instr().mem {
                            // Ignore the dilution wrapper's hot-stack
                            // filler; only the kernel's traffic matters.
                            if m.vaddr.raw() >= 0x7FFF_0000_0000 {
                                continue;
                            }
                            mem += 1;
                            if m.vaddr.is_shared() {
                                shared += 1;
                            }
                        }
                    }
                    assert!(mem > 0, "{} generated no memory traffic", w.name);
                    if w.name.starts_with("pc-ring") {
                        assert_eq!(shared, mem, "the ring is entirely shared");
                    } else if pm == 0 {
                        assert_eq!(shared, 0, "{} knob 0 must stay private", w.name);
                    } else {
                        assert!(shared > 0, "{} knob {pm} never went shared", w.name);
                    }
                }
            }
        }
    }

    #[test]
    fn historical_generators_ignore_the_core_index() {
        let w = &default_suite()[0];
        let mut a = w.build_for(0);
        let mut b = w.build_for(5);
        for _ in 0..500 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn names_unique() {
        for suite in [default_suite(), full_suite(), smoke_suite(), tlb_suite()] {
            let names: HashSet<&str> = suite.iter().map(|w| w.name.as_str()).collect();
            assert_eq!(names.len(), suite.len());
        }
    }

    #[test]
    fn all_specs_build_and_generate() {
        for w in smoke_suite() {
            let mut src = w.build();
            for _ in 0..100 {
                let _ = src.next_instr();
            }
        }
    }

    #[test]
    fn full_suite_is_superset() {
        let d: HashSet<String> = default_suite().into_iter().map(|w| w.name).collect();
        let f: HashSet<String> = full_suite().into_iter().map(|w| w.name).collect();
        assert!(d.is_subset(&f));
        assert!(f.len() > 40);
    }

    #[test]
    fn build_is_deterministic() {
        let w = &default_suite()[0];
        let mut a = w.build();
        let mut b = w.build();
        for _ in 0..200 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn category_labels() {
        assert_eq!(Category::Spec06.label(), "SPEC06");
        assert_eq!(format!("{}", Category::Ligra), "Ligra");
        assert_eq!(Category::ALL.len(), 5);
    }
}
