//! Binary trace capture and replay.
//!
//! ChampSim distributes workloads as compressed binary trace files; we
//! provide the equivalent: a compact fixed-width record format so that any
//! generator's output can be captured once and replayed bit-identically
//! (useful for regression pinning and for sharing interesting traces).
//!
//! Format: an 8-byte magic (`HERMTRC1`), a u32 record count, then one
//! 24-byte record per instruction.

use std::io::{self, Read, Write};

use hermes_types::VirtAddr;

use crate::instr::{Branch, Instr, MemKind, MemOp};
use crate::source::VecSource;

const MAGIC: &[u8; 8] = b"HERMTRC1";

// Flag bits in the record header byte.
const F_LOAD: u8 = 1 << 0;
const F_STORE: u8 = 1 << 1;
const F_BRANCH: u8 = 1 << 2;
const F_TAKEN: u8 = 1 << 3;

/// Serializes instructions to a writer in the `HERMTRC1` format.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(mut w: W, instrs: &[Instr]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(instrs.len() as u32).to_le_bytes())?;
    for i in instrs {
        let mut flags = 0u8;
        let mut addr = 0u64;
        match i.mem {
            Some(MemOp {
                vaddr,
                kind: MemKind::Load,
            }) => {
                flags |= F_LOAD;
                addr = vaddr.raw();
            }
            Some(MemOp {
                vaddr,
                kind: MemKind::Store,
            }) => {
                flags |= F_STORE;
                addr = vaddr.raw();
            }
            None => {}
        }
        if let Some(b) = i.branch {
            flags |= F_BRANCH;
            if b.taken {
                flags |= F_TAKEN;
            }
        }
        let reg = |r: Option<u8>| r.map(|v| v + 1).unwrap_or(0);
        w.write_all(&i.pc.to_le_bytes())?;
        w.write_all(&addr.to_le_bytes())?;
        w.write_all(&[
            flags,
            reg(i.src_regs[0]),
            reg(i.src_regs[1]),
            reg(i.dst_reg),
            i.exec_latency,
            0,
            0,
            0,
        ])?;
    }
    Ok(())
}

/// Deserializes a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` if the magic or structure is malformed, or any I/O
/// error from the reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<Instr>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let mut nb = [0u8; 4];
    r.read_exact(&mut nb)?;
    let n = u32::from_le_bytes(nb) as usize;
    let mut out = Vec::with_capacity(n);
    let mut rec = [0u8; 24];
    for _ in 0..n {
        r.read_exact(&mut rec)?;
        let pc = u64::from_le_bytes(rec[0..8].try_into().expect("slice width"));
        let addr = u64::from_le_bytes(rec[8..16].try_into().expect("slice width"));
        let flags = rec[16];
        let dereg = |v: u8| if v == 0 { None } else { Some(v - 1) };
        let mem = if flags & F_LOAD != 0 {
            Some(MemOp {
                vaddr: VirtAddr::new(addr),
                kind: MemKind::Load,
            })
        } else if flags & F_STORE != 0 {
            Some(MemOp {
                vaddr: VirtAddr::new(addr),
                kind: MemKind::Store,
            })
        } else {
            None
        };
        let branch = if flags & F_BRANCH != 0 {
            Some(Branch {
                taken: flags & F_TAKEN != 0,
            })
        } else {
            None
        };
        out.push(Instr {
            pc,
            src_regs: [dereg(rec[17]), dereg(rec[18])],
            dst_reg: dereg(rec[19]),
            mem,
            branch,
            exec_latency: rec[20],
        });
    }
    Ok(out)
}

/// Captures `n` instructions from a source into a replayable [`VecSource`].
pub fn capture(src: &mut dyn crate::TraceSource, n: usize) -> VecSource {
    let name = format!("{}-capture", src.name());
    let instrs: Vec<Instr> = (0..n).map(|_| src.next_instr()).collect();
    VecSource::new(name, instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSource;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::alu(0x400000, Some(1), [Some(2), None]),
            Instr::load(
                0x400004,
                VirtAddr::new(0x7fff_0040),
                Some(3),
                [Some(1), None],
            ),
            Instr::store(0x400008, VirtAddr::new(0x7fff_0080), [Some(3), Some(1)]),
            Instr::branch(0x40000c, true, Some(3)),
            Instr::fp(0x400010, Some(4), [Some(3), Some(2)], 4),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let instrs = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &instrs).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(instrs, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn truncated_trace_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn capture_replays_identically() {
        let mut gen = crate::gen::pointer_chase::PointerChase::new(1000, 4, 99);
        let reference: Vec<Instr> = (0..64).map(|_| gen.next_instr()).collect();
        let mut gen2 = crate::gen::pointer_chase::PointerChase::new(1000, 4, 99);
        let mut cap = capture(&mut gen2, 64);
        for r in &reference {
            assert_eq!(*r, cap.next_instr());
        }
    }
}
