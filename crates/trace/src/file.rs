//! Binary trace capture and replay.
//!
//! ChampSim distributes workloads as compressed binary trace files; we
//! provide the equivalent: a compact fixed-width record format so that any
//! generator's output can be captured once and replayed bit-identically
//! (useful for regression pinning and for sharing interesting traces).
//!
//! Two header versions exist:
//!
//! * `HERMTRC1` — 8-byte magic, **u32** record count. The original
//!   format; fine for captures but its count ceiling (~4.3 G records)
//!   is below production trace lengths.
//! * `HERMTRC2` — 8-byte magic, **u64** record count. Written by
//!   [`write_trace`]; readers accept both versions transparently.
//!
//! Both share the same 24-byte record layout. For traces too large to
//! materialise, [`TraceFileSource`] streams records straight from the
//! file (wrapping around at the end, like every generator), so memory
//! stays O(1) regardless of trace length.

use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use hermes_types::VirtAddr;

use crate::instr::{Branch, Instr, MemKind, MemOp};
use crate::source::{TraceSource, VecSource};

const MAGIC_V1: &[u8; 8] = b"HERMTRC1";
const MAGIC_V2: &[u8; 8] = b"HERMTRC2";
const RECORD_BYTES: usize = 24;

// Flag bits in the record header byte.
const F_LOAD: u8 = 1 << 0;
const F_STORE: u8 = 1 << 1;
const F_BRANCH: u8 = 1 << 2;
const F_TAKEN: u8 = 1 << 3;

fn encode_record(i: &Instr) -> [u8; RECORD_BYTES] {
    let mut flags = 0u8;
    let mut addr = 0u64;
    match i.mem {
        Some(MemOp {
            vaddr,
            kind: MemKind::Load,
        }) => {
            flags |= F_LOAD;
            addr = vaddr.raw();
        }
        Some(MemOp {
            vaddr,
            kind: MemKind::Store,
        }) => {
            flags |= F_STORE;
            addr = vaddr.raw();
        }
        None => {}
    }
    if let Some(b) = i.branch {
        flags |= F_BRANCH;
        if b.taken {
            flags |= F_TAKEN;
        }
    }
    let reg = |r: Option<u8>| r.map(|v| v + 1).unwrap_or(0);
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..8].copy_from_slice(&i.pc.to_le_bytes());
    rec[8..16].copy_from_slice(&addr.to_le_bytes());
    rec[16] = flags;
    rec[17] = reg(i.src_regs[0]);
    rec[18] = reg(i.src_regs[1]);
    rec[19] = reg(i.dst_reg);
    rec[20] = i.exec_latency;
    rec
}

fn decode_record(rec: &[u8; RECORD_BYTES]) -> Instr {
    let pc = u64::from_le_bytes(rec[0..8].try_into().expect("slice width"));
    let addr = u64::from_le_bytes(rec[8..16].try_into().expect("slice width"));
    let flags = rec[16];
    let dereg = |v: u8| if v == 0 { None } else { Some(v - 1) };
    let mem = if flags & F_LOAD != 0 {
        Some(MemOp {
            vaddr: VirtAddr::new(addr),
            kind: MemKind::Load,
        })
    } else if flags & F_STORE != 0 {
        Some(MemOp {
            vaddr: VirtAddr::new(addr),
            kind: MemKind::Store,
        })
    } else {
        None
    };
    let branch = if flags & F_BRANCH != 0 {
        Some(Branch {
            taken: flags & F_TAKEN != 0,
        })
    } else {
        None
    };
    Instr {
        pc,
        src_regs: [dereg(rec[17]), dereg(rec[18])],
        dst_reg: dereg(rec[19]),
        mem,
        branch,
        exec_latency: rec[20],
    }
}

/// Reads a header (either version), returning the record count.
fn read_header<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == MAGIC_V1 {
        let mut nb = [0u8; 4];
        r.read_exact(&mut nb)?;
        Ok(u32::from_le_bytes(nb) as u64)
    } else if &magic == MAGIC_V2 {
        let mut nb = [0u8; 8];
        r.read_exact(&mut nb)?;
        Ok(u64::from_le_bytes(nb))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ))
    }
}

/// Serializes instructions in the current (`HERMTRC2`, u64-count) format.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_trace<W: Write>(mut w: W, instrs: &[Instr]) -> io::Result<()> {
    w.write_all(MAGIC_V2)?;
    w.write_all(&(instrs.len() as u64).to_le_bytes())?;
    for i in instrs {
        w.write_all(&encode_record(i))?;
    }
    Ok(())
}

/// Serializes instructions in the legacy `HERMTRC1` (u32-count) format,
/// for interchange with pre-v2 readers.
///
/// # Errors
///
/// Returns `InvalidInput` if the trace exceeds the v1 count ceiling
/// (`u32::MAX` records), or any I/O error from the writer.
pub fn write_trace_v1<W: Write>(mut w: W, instrs: &[Instr]) -> io::Result<()> {
    let n: u32 = instrs.len().try_into().map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "trace exceeds the HERMTRC1 u32 record-count ceiling; use write_trace (HERMTRC2)",
        )
    })?;
    w.write_all(MAGIC_V1)?;
    w.write_all(&n.to_le_bytes())?;
    for i in instrs {
        w.write_all(&encode_record(i))?;
    }
    Ok(())
}

/// Deserializes a trace written by [`write_trace`] or [`write_trace_v1`]
/// (both header versions accepted).
///
/// # Errors
///
/// Returns `InvalidData` if the magic or structure is malformed, or any I/O
/// error from the reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<Instr>> {
    let n = read_header(&mut r)?;
    let mut out = Vec::with_capacity(usize::try_from(n).unwrap_or(0).min(1 << 24));
    let mut rec = [0u8; RECORD_BYTES];
    for _ in 0..n {
        r.read_exact(&mut rec)?;
        out.push(decode_record(&rec));
    }
    Ok(out)
}

/// A [`TraceSource`] streaming records straight from a trace file.
///
/// Unlike [`read_trace`] + [`VecSource`], nothing is materialised: the
/// source holds one buffered reader and wraps back to the first record
/// when the trace ends, so arbitrarily long (v2) traces replay in O(1)
/// memory. Accepts both header versions.
pub struct TraceFileSource {
    name: String,
    reader: BufReader<std::fs::File>,
    count: u64,
    pos: u64,
    data_start: u64,
}

impl std::fmt::Debug for TraceFileSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceFileSource")
            .field("name", &self.name)
            .field("count", &self.count)
            .field("pos", &self.pos)
            .finish()
    }
}

impl TraceFileSource {
    /// Opens a trace file for streaming replay. The workload name is the
    /// file stem.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic, an empty trace (a core
    /// cannot be fed zero instructions), or a file shorter than its
    /// header's record count claims (a truncated capture must fail here,
    /// not panic mid-simulation), or any I/O error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        let mut reader = BufReader::new(std::fs::File::open(path)?);
        let count = read_header(&mut reader)?;
        if count == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "empty trace cannot feed a core",
            ));
        }
        let data_start = reader.stream_position()?;
        let need = count
            .checked_mul(RECORD_BYTES as u64)
            .and_then(|payload| payload.checked_add(data_start));
        let len = reader.get_ref().metadata()?.len();
        if need.is_none_or(|need| len < need) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace file holds fewer than its header's {count} records \
                     ({len} bytes on disk)"
                ),
            ));
        }
        Ok(Self {
            name,
            reader,
            count,
            pos: 0,
            data_start,
        })
    }

    /// Records before the trace wraps.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Always false: [`TraceFileSource::open`] rejects empty traces.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceSource for TraceFileSource {
    fn next_instr(&mut self) -> Instr {
        if self.pos == self.count {
            self.reader
                .seek(SeekFrom::Start(self.data_start))
                .expect("trace file became unseekable during replay");
            self.pos = 0;
        }
        let mut rec = [0u8; RECORD_BYTES];
        self.reader
            .read_exact(&mut rec)
            .expect("trace file truncated or unreadable during replay");
        self.pos += 1;
        decode_record(&rec)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Captures `n` instructions from a source into a replayable [`VecSource`].
pub fn capture(src: &mut dyn crate::TraceSource, n: usize) -> VecSource {
    let name = format!("{}-capture", src.name());
    let instrs: Vec<Instr> = (0..n).map(|_| src.next_instr()).collect();
    VecSource::new(name, instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSource;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::alu(0x400000, Some(1), [Some(2), None]),
            Instr::load(
                0x400004,
                VirtAddr::new(0x7fff_0040),
                Some(3),
                [Some(1), None],
            ),
            Instr::store(0x400008, VirtAddr::new(0x7fff_0080), [Some(3), Some(1)]),
            Instr::branch(0x40000c, true, Some(3)),
            Instr::fp(0x400010, Some(4), [Some(3), Some(2)], 4),
        ]
    }

    fn scratch_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("hermes-trace-{}-{name}.trc", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn v2_round_trip_preserves_everything() {
        let instrs = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &instrs).unwrap();
        assert_eq!(&buf[0..8], MAGIC_V2);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(instrs, back);
    }

    #[test]
    fn v1_round_trip_preserves_everything() {
        let instrs = sample();
        let mut buf = Vec::new();
        write_trace_v1(&mut buf, &instrs).unwrap();
        assert_eq!(&buf[0..8], MAGIC_V1);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(instrs, back);
    }

    #[test]
    fn v1_and_v2_carry_identical_records() {
        let instrs = sample();
        let (mut v1, mut v2) = (Vec::new(), Vec::new());
        write_trace_v1(&mut v1, &instrs).unwrap();
        write_trace(&mut v2, &instrs).unwrap();
        // Same payload, only the header differs (u32 vs u64 count).
        assert_eq!(&v1[12..], &v2[16..]);
        assert_eq!(v2.len(), v1.len() + 4);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn truncated_trace_rejected() {
        for v1 in [false, true] {
            let mut buf = Vec::new();
            if v1 {
                write_trace_v1(&mut buf, &sample()).unwrap();
            } else {
                write_trace(&mut buf, &sample()).unwrap();
            }
            buf.truncate(buf.len() - 3);
            assert!(read_trace(&buf[..]).is_err());
        }
    }

    #[test]
    fn streaming_source_replays_and_wraps_both_versions() {
        let instrs = sample();
        for v1 in [false, true] {
            let mut buf = Vec::new();
            if v1 {
                write_trace_v1(&mut buf, &instrs).unwrap();
            } else {
                write_trace(&mut buf, &instrs).unwrap();
            }
            let path = scratch_file(if v1 { "stream-v1" } else { "stream-v2" }, &buf);
            let mut src = TraceFileSource::open(&path).unwrap();
            assert_eq!(src.len(), instrs.len() as u64);
            assert!(!src.is_empty());
            // Two full laps: the wrap must reproduce the stream exactly.
            for lap in 0..2 {
                for (i, expect) in instrs.iter().enumerate() {
                    assert_eq!(src.next_instr(), *expect, "lap {lap} instr {i}");
                }
            }
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn streaming_source_matches_materialised_read() {
        let mut gen = crate::gen::pointer_chase::PointerChase::new(500, 2, 7);
        let instrs: Vec<Instr> = (0..300).map(|_| gen.next_instr()).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &instrs).unwrap();
        let path = scratch_file("stream-vs-vec", &buf);
        let materialised = read_trace(&buf[..]).unwrap();
        let mut stream = TraceFileSource::open(&path).unwrap();
        for m in &materialised {
            assert_eq!(stream.next_instr(), *m);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn streaming_source_names_after_file_stem() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        let path = scratch_file("name-check", &buf);
        let src = TraceFileSource::open(&path).unwrap();
        assert!(src.name().contains("name-check"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_trace_file_rejected_at_open() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let path = scratch_file("truncated-open", &buf);
        assert!(
            TraceFileSource::open(&path).is_err(),
            "a truncated trace must fail at open, not panic mid-replay"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_trace_file_rejected_by_streaming_source() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        let path = scratch_file("empty", &buf);
        assert!(TraceFileSource::open(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn capture_replays_identically() {
        let mut gen = crate::gen::pointer_chase::PointerChase::new(1000, 4, 99);
        let reference: Vec<Instr> = (0..64).map(|_| gen.next_instr()).collect();
        let mut gen2 = crate::gen::pointer_chase::PointerChase::new(1000, 4, 99);
        let mut cap = capture(&mut gen2, 64);
        for r in &reference {
            assert_eq!(*r, cap.next_instr());
        }
    }
}
