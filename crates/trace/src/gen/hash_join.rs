//! Hash-join probe workload (database / CVP "server" class).
//!
//! Streams a probe relation sequentially while hitting a hash table at
//! random buckets, occasionally chasing a short collision chain. The mix of
//! a prefetchable stream (probe keys) with unprefetchable dependent lookups
//! (bucket + chain) is characteristic of the commercial traces in the
//! paper's CVP category.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug)]
pub struct HashJoin {
    name: String,
    probe_base: u64,
    ht_base: u64,
    chain_base: u64,
    ht_lines: u64,
    probe_len: u64,
    i: u64,
    slot: u32,
    bucket: u64,
    chain_left: u32,
    rng: SmallRng,
    rot: RegRotor,
}

impl HashJoin {
    /// A probe loop over a hash table of `ht_bytes` (rounded to a power of
    /// two) and a probe relation of `probe_len` 8 B keys.
    ///
    /// # Panics
    ///
    /// Panics if `ht_bytes < 4096` or `probe_len == 0`.
    pub fn new(ht_bytes: u64, probe_len: u64, seed: u64) -> Self {
        assert!(ht_bytes >= 4096 && probe_len > 0);
        let l = Layout::new();
        Self {
            name: format!("hashjoin_{}MB", ht_bytes >> 20),
            probe_base: l.region(16),
            ht_base: l.region(17),
            chain_base: l.region(18),
            ht_lines: ht_bytes.next_power_of_two() / 64,
            probe_len,
            i: 0,
            slot: 0,
            bucket: 0,
            chain_left: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x4A4F_494E),
            rot: RegRotor::new(8, 6),
        }
    }
}

impl TraceSource for HashJoin {
    fn next_instr(&mut self) -> Instr {
        match self.slot {
            // Sequential probe-key load (prefetchable stream).
            0 => {
                let addr = self.probe_base + (self.i % self.probe_len) * 8;
                self.i += 1;
                self.slot = 1;
                let r = self.rot.next_reg();
                Instr::load(pc(80), VirtAddr::new(addr), Some(r), [Some(1), None])
            }
            // Hash computation.
            1 => {
                self.bucket = self.rng.gen::<u64>() % self.ht_lines;
                self.slot = 2;
                Instr::alu(pc(81), Some(5), [Some(8), None])
            }
            // Bucket load (random, dependent on hash).
            2 => {
                let addr = self.ht_base + self.bucket * 64;
                // ~30% of probes walk a 1-2 element collision chain.
                self.chain_left = match self.rng.gen::<u8>() % 10 {
                    0..=6 => 0,
                    7 | 8 => 1,
                    _ => 2,
                };
                self.slot = 3;
                Instr::load(pc(82), VirtAddr::new(addr), Some(6), [Some(5), None])
            }
            // Match check branch; taken when no chain remains.
            3 => {
                let done = self.chain_left == 0;
                self.slot = if done { 5 } else { 4 };
                Instr::branch(pc(83), done, Some(6))
            }
            // Chain-node load (dependent pointer chase).
            4 => {
                let addr = self.chain_base + (self.rng.gen::<u64>() % self.ht_lines) * 64;
                self.chain_left -= 1;
                self.slot = 3;
                Instr::load(pc(84), VirtAddr::new(addr), Some(6), [Some(6), None])
            }
            _ => {
                self.slot = 0;
                Instr::branch(pc(85), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_streaming_and_random_loads() {
        let mut g = HashJoin::new(1 << 22, 1 << 16, 1);
        let (mut seq, mut rnd) = (0, 0);
        for _ in 0..5000 {
            let i = g.next_instr();
            match i.pc {
                x if x == pc(80) => seq += 1,
                x if x == pc(82) || x == pc(84) => rnd += 1,
                _ => {}
            }
        }
        assert!(seq > 100 && rnd > 100);
    }

    #[test]
    fn chain_loads_are_dependent() {
        let mut g = HashJoin::new(1 << 20, 1024, 2);
        for _ in 0..10_000 {
            let i = g.next_instr();
            if i.pc == pc(84) {
                assert_eq!(i.src_regs[0], Some(6));
                assert_eq!(i.dst_reg, Some(6));
                return;
            }
        }
        panic!("no chain load observed");
    }

    #[test]
    fn deterministic() {
        let mut a = HashJoin::new(1 << 20, 512, 3);
        let mut b = HashJoin::new(1 << 20, 512, 3);
        for _ in 0..300 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
