//! Uniform random access (GUPS / `xalancbmk`-style table lookups).
//!
//! Independent loads (optionally read-modify-write) hit uniformly random
//! lines of a table much larger than the LLC. With rotating destination
//! registers the core extracts maximal MLP, so misses overlap — many become
//! *non-blocking* in the paper's Fig. 2 terminology. No prefetcher can
//! cover a uniform stream, making this the Hermes-favourable extreme.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug)]
pub struct RandomAccess {
    name: String,
    base: u64,
    line_mask: u64,
    rng: SmallRng,
    update: bool,
    cur_line: u64,
    slot: u32,
    rot: RegRotor,
}

impl RandomAccess {
    /// Random 8 B accesses over a `table_bytes`-sized table (rounded up to
    /// a power of two). `update` adds a dependent store (read-modify-write).
    ///
    /// # Panics
    ///
    /// Panics if `table_bytes < 128`.
    pub fn new(table_bytes: u64, update: bool, seed: u64) -> Self {
        assert!(table_bytes >= 128);
        let lines = (table_bytes.next_power_of_two()) / 64;
        Self {
            name: format!("gups_{}MB", table_bytes >> 20),
            base: Layout::new().region(8),
            line_mask: lines - 1,
            rng: SmallRng::seed_from_u64(seed ^ 0x6A75),
            update,
            cur_line: 0,
            slot: 0,
            rot: RegRotor::new(8, 12),
        }
    }
}

impl TraceSource for RandomAccess {
    fn next_instr(&mut self) -> Instr {
        match self.slot {
            0 => {
                self.cur_line = self.rng.gen::<u64>() & self.line_mask;
                let addr = self.base + self.cur_line * 64 + (self.rng.gen::<u64>() & 7) * 8;
                self.slot = 1;
                let r = self.rot.next_reg();
                Instr::load(pc(30), VirtAddr::new(addr), Some(r), [Some(1), None])
            }
            1 => {
                self.slot = if self.update { 2 } else { 3 };
                Instr::alu(pc(31), Some(25), [Some(8), Some(25)])
            }
            2 => {
                self.slot = 3;
                let addr = self.base + self.cur_line * 64;
                Instr::store(pc(32), VirtAddr::new(addr), [Some(25), Some(1)])
            }
            _ => {
                self.slot = 0;
                Instr::branch(pc(33), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn addresses_spread_over_table() {
        let mut g = RandomAccess::new(1 << 24, false, 3);
        let mut lines = HashSet::new();
        for _ in 0..4000 {
            let i = g.next_instr();
            if i.is_load() {
                lines.insert(i.mem.unwrap().vaddr.line());
            }
        }
        assert!(lines.len() > 900, "poor spread: {}", lines.len());
    }

    #[test]
    fn update_mode_stores_same_line() {
        let mut g = RandomAccess::new(1 << 20, true, 5);
        let mut last_load_line = None;
        for _ in 0..50 {
            let i = g.next_instr();
            if let Some(m) = i.mem {
                if i.is_load() {
                    last_load_line = Some(m.vaddr.line());
                } else {
                    assert_eq!(Some(m.vaddr.line()), last_load_line);
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let mut a = RandomAccess::new(1 << 20, true, 11);
        let mut b = RandomAccess::new(1 << 20, true, 11);
        for _ in 0..200 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
