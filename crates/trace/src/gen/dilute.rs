//! Compute-dilution wrapper.
//!
//! Real benchmarks interleave far more arithmetic and far more *cache-
//! resident* memory traffic (stack spills, locals, small lookup tables)
//! between interesting accesses than a bare kernel loop does: the paper's
//! suite averages ~8 LLC misses per kilo-instruction with only ~5% of
//! loads going off-chip (Fig. 5). [`Dilute`] wraps any generator and
//! inserts a fixed-size filler block after every memory instruction:
//! mostly independent ALU work, with every fourth filler slot a load into
//! a small hot region that always hits the L1 — reproducing both the
//! paper's MPKI density and its off-chip class imbalance without changing
//! the wrapped kernel's memory structure.

use hermes_types::VirtAddr;

use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
pub struct Dilute {
    name: String,
    inner: Box<dyn TraceSource>,
    work_per_mem: u32,
    pending_work: u32,
    slot: u32,
    hot_cursor: u64,
}

/// PC base for the inserted compute block (distinct from generator PCs).
const WORK_PC_BASE: u64 = 0x70_0000;
/// Base virtual address of the hot "stack" region the filler loads touch.
const HOT_BASE: u64 = 0x7FFF_0000_0000;
/// Hot-region size in bytes (well inside the 48 KB L1).
const HOT_BYTES: u64 = 8 * 1024;

impl Dilute {
    /// Inserts `work_per_mem` compute instructions after every load/store
    /// of `inner`.
    ///
    /// # Panics
    ///
    /// Panics if `work_per_mem` is zero (use the inner source directly).
    pub fn new(inner: Box<dyn TraceSource>, work_per_mem: u32) -> Self {
        assert!(work_per_mem > 0, "zero dilution: use the inner generator");
        let name = format!("{}+w{}", inner.name(), work_per_mem);
        Self {
            name,
            inner,
            work_per_mem,
            pending_work: 0,
            slot: 0,
            hot_cursor: 0,
        }
    }
}

impl std::fmt::Debug for Dilute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dilute")
            .field("name", &self.name)
            .field("work_per_mem", &self.work_per_mem)
            .finish()
    }
}

impl TraceSource for Dilute {
    fn next_instr(&mut self) -> Instr {
        if self.pending_work > 0 {
            self.pending_work -= 1;
            self.slot = (self.slot + 1) % 4;
            let dst = 28 + self.slot as u8;
            if self.slot == 3 {
                // Hot load: stack/local traffic that always hits the L1.
                self.hot_cursor = (self.hot_cursor + 24) % HOT_BYTES;
                return Instr::load(
                    WORK_PC_BASE + 16,
                    VirtAddr::new(HOT_BASE + self.hot_cursor),
                    Some(dst),
                    [Some(dst), None],
                );
            }
            // Independent short chains on dedicated registers so the
            // filler adds work, not serial dependencies.
            return Instr::alu(
                WORK_PC_BASE + self.slot as u64 * 4,
                Some(dst),
                [Some(dst), None],
            );
        }
        let i = self.inner.next_instr();
        if i.mem.is_some() {
            self.pending_work = self.work_per_mem;
        }
        i
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::pointer_chase::PointerChase;

    #[test]
    fn inserts_exact_work_after_mem() {
        let inner = Box::new(PointerChase::new(64, 0, 1));
        let mut d = Dilute::new(inner, 3);
        let first = d.next_instr();
        assert!(first.is_load());
        for _ in 0..3 {
            let w = d.next_instr();
            // Filler is ALU work or a hot load; never a store or branch.
            assert!(!w.is_store() && !w.is_branch());
            if let Some(m) = w.mem {
                assert!(m.vaddr.raw() >= HOT_BASE, "filler load outside hot region");
            }
        }
        // Then the inner branch resumes.
        assert!(d.next_instr().is_branch());
    }

    #[test]
    fn hot_loads_stay_in_small_region() {
        let inner = Box::new(PointerChase::new(64, 0, 1));
        let mut d = Dilute::new(inner, 8);
        let mut hot_lines = std::collections::HashSet::new();
        for _ in 0..5000 {
            let i = d.next_instr();
            if let Some(m) = i.mem {
                if m.vaddr.raw() >= HOT_BASE {
                    hot_lines.insert(m.vaddr.line());
                }
            }
        }
        assert!(!hot_lines.is_empty(), "no hot filler loads observed");
        assert!(hot_lines.len() <= (HOT_BYTES / 64 + 1) as usize);
    }

    #[test]
    fn memory_structure_preserved() {
        let mut raw = PointerChase::new(1024, 0, 7);
        let inner = Box::new(PointerChase::new(1024, 0, 7));
        let mut d = Dilute::new(inner, 5);
        // The sequence of memory addresses must be identical.
        let mut raw_addrs = Vec::new();
        let mut diluted_addrs = Vec::new();
        while raw_addrs.len() < 50 {
            if let Some(m) = raw.next_instr().mem {
                raw_addrs.push(m.vaddr);
            }
        }
        while diluted_addrs.len() < 50 {
            if let Some(m) = d.next_instr().mem {
                if m.vaddr.raw() < HOT_BASE {
                    diluted_addrs.push(m.vaddr);
                }
            }
        }
        assert_eq!(raw_addrs, diluted_addrs);
    }

    #[test]
    fn work_uses_distinct_pcs() {
        let inner = Box::new(PointerChase::new(64, 0, 1));
        let mut d = Dilute::new(inner, 2);
        for _ in 0..20 {
            let i = d.next_instr();
            if !i.is_load() && !i.is_branch() && i.pc >= WORK_PC_BASE {
                assert!(i.pc < WORK_PC_BASE + 16);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_work_rejected() {
        let inner = Box::new(PointerChase::new(64, 0, 1));
        let _ = Dilute::new(inner, 0);
    }
}
