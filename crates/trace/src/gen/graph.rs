//! CSR graph-processing workloads (Ligra class: BFS, PageRank, Components,
//! Radii, Triangle).
//!
//! A synthetic power-law graph is materialised in CSR form at construction
//! time; kernels then walk it the way Ligra's push-style operators do:
//!
//! * the *offsets* array is read with unit stride (prefetchable),
//! * the *edge* array is streamed per-vertex (short bursts, prefetchable),
//! * the *per-vertex data* array (`rank`, `visited`, `comp`) is gathered at
//!   random neighbour indices — the irregular, off-chip-heavy load that
//!   prefetchers miss and POPET learns to flag by PC.
//!
//! Target skew is quadratic (hubs get most edges), so low-id vertices stay
//! cache-resident while the long tail misses — reuse behaviour that gives
//! the off-chip predictor a learnable, non-trivial decision boundary.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::VirtAddr;

use super::{pc, Layout};
use crate::instr::Instr;
use crate::source::TraceSource;

/// Which Ligra-style kernel to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKernel {
    /// Frontier-based breadth-first search (also used for Radii with
    /// periodic multi-source restarts).
    Bfs,
    /// Dense per-vertex sweep accumulating neighbour ranks.
    PageRank,
    /// Label propagation with data-dependent branches.
    Components,
    /// Adjacency-list intersection (two simultaneous edge streams).
    Triangle,
}

impl GraphKernel {
    fn as_str(self) -> &'static str {
        match self {
            GraphKernel::Bfs => "bfs",
            GraphKernel::PageRank => "pagerank",
            GraphKernel::Components => "components",
            GraphKernel::Triangle => "triangle",
        }
    }
}

/// Compressed-sparse-row graph materialised host-side.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl CsrGraph {
    /// Synthesises a graph with `vertices` vertices and roughly
    /// `avg_degree` edges per vertex, with quadratically-skewed targets.
    ///
    /// # Panics
    ///
    /// Panics if `vertices < 2` or `avg_degree == 0`.
    pub fn synth(vertices: u32, avg_degree: u32, seed: u64) -> Self {
        assert!(vertices >= 2 && avg_degree >= 1);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6741_5048);
        let mut offsets = Vec::with_capacity(vertices as usize + 1);
        let mut edges = Vec::new();
        offsets.push(0u32);
        for _ in 0..vertices {
            let r: f64 = rng.gen();
            let deg = 1 + (r * r * (2 * avg_degree) as f64) as u32;
            let mut adj: Vec<u32> = (0..deg)
                .map(|_| {
                    let t: f64 = rng.gen();
                    ((t * t * t * vertices as f64) as u32).min(vertices - 1)
                })
                .collect();
            adj.sort_unstable();
            adj.dedup();
            edges.extend_from_slice(&adj);
            offsets.push(edges.len() as u32);
        }
        Self { offsets, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn adj(&self, u: u32) -> &[u32] {
        &self.edges[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }
}

/// A graph kernel as a [`TraceSource`]. See [module docs](self).
#[derive(Debug)]
pub struct GraphWorkload {
    name: String,
    graph: CsrGraph,
    kernel: GraphKernel,
    queue: VecDeque<Instr>,
    // Address bases.
    off_base: u64,
    edge_base: u64,
    data_base: u64,
    data2_base: u64,
    // Kernel cursors.
    u: u32,
    frontier: VecDeque<u32>,
    visited: Vec<bool>,
    rng: SmallRng,
    restart_every: u32,
    pops_since_restart: u32,
}

impl GraphWorkload {
    /// Wraps a synthesised graph with the given kernel.
    pub fn new(kernel: GraphKernel, vertices: u32, avg_degree: u32, seed: u64) -> Self {
        let graph = CsrGraph::synth(vertices, avg_degree, seed);
        let l = Layout::new();
        let visited = vec![false; vertices as usize];
        Self {
            name: format!("ligra_{}_{}v", kernel.as_str(), vertices),
            graph,
            kernel,
            queue: VecDeque::with_capacity(64),
            off_base: l.region(12),
            edge_base: l.region(13),
            data_base: l.region(14),
            data2_base: l.region(15),
            u: 0,
            frontier: VecDeque::new(),
            visited,
            rng: SmallRng::seed_from_u64(seed ^ 0x4C49_4752),
            restart_every: u32::MAX,
            pops_since_restart: 0,
        }
    }

    /// BFS variant with periodic multi-source restarts, emulating Ligra's
    /// Radii computation (which runs BFS from many sources).
    pub fn new_radii(vertices: u32, avg_degree: u32, seed: u64) -> Self {
        let mut w = Self::new(GraphKernel::Bfs, vertices, avg_degree, seed);
        w.name = format!("ligra_radii_{}v", vertices);
        w.restart_every = (vertices / 8).max(64);
        w
    }

    fn off_addr(&self, u: u32) -> u64 {
        self.off_base + u as u64 * 8
    }

    fn edge_addr(&self, idx: usize) -> u64 {
        self.edge_base + idx as u64 * 4
    }

    fn data_addr(&self, v: u32) -> u64 {
        self.data_base + v as u64 * 8
    }

    fn refill_pagerank(&mut self) {
        let u = self.u;
        self.u = (self.u + 1) % self.graph.num_vertices();
        let start = self.graph.offsets[u as usize] as usize;
        self.queue.push_back(Instr::load(
            pc(40),
            VirtAddr::new(self.off_addr(u)),
            Some(2),
            [Some(1), None],
        ));
        // Cap per-vertex work so a hub vertex cannot starve the queue.
        let adj = self.graph.adj(u);
        for (k, &t) in adj.iter().take(32).enumerate() {
            self.queue.push_back(Instr::load(
                pc(41),
                VirtAddr::new(self.edge_addr(start + k)),
                Some(3),
                [Some(2), None],
            ));
            self.queue.push_back(Instr::load(
                pc(42),
                VirtAddr::new(self.data_addr(t)),
                Some(4),
                [Some(3), None],
            ));
            self.queue
                .push_back(Instr::fp(pc(43), Some(24), [Some(4), Some(24)], 4));
        }
        self.queue.push_back(Instr::store(
            pc(44),
            VirtAddr::new(self.data2_base + u as u64 * 8),
            [Some(24), Some(1)],
        ));
        self.queue.push_back(Instr::branch(pc(45), true, None));
    }

    fn refill_components(&mut self) {
        let u = self.u;
        self.u = (self.u + 1) % self.graph.num_vertices();
        let start = self.graph.offsets[u as usize] as usize;
        self.queue.push_back(Instr::load(
            pc(60),
            VirtAddr::new(self.off_addr(u)),
            Some(2),
            [Some(1), None],
        ));
        self.queue.push_back(Instr::load(
            pc(61),
            VirtAddr::new(self.data_addr(u)),
            Some(5),
            [Some(2), None],
        ));
        let adj: Vec<u32> = self.graph.adj(u).iter().take(32).copied().collect();
        for (k, &t) in adj.iter().enumerate() {
            self.queue.push_back(Instr::load(
                pc(62),
                VirtAddr::new(self.edge_addr(start + k)),
                Some(3),
                [Some(2), None],
            ));
            self.queue.push_back(Instr::load(
                pc(63),
                VirtAddr::new(self.data_addr(t)),
                Some(4),
                [Some(3), None],
            ));
            // Label comparison: direction depends on loaded data -> modelled
            // as a hard-to-predict branch (labels keep shrinking early on).
            let taken = t < u; // stable but irregular pattern per (u,t)
            self.queue.push_back(Instr::branch(pc(64), taken, Some(4)));
            if taken {
                self.queue.push_back(Instr::store(
                    pc(65),
                    VirtAddr::new(self.data_addr(u)),
                    [Some(4), Some(1)],
                ));
            }
        }
        self.queue.push_back(Instr::branch(pc(66), true, None));
    }

    fn refill_bfs(&mut self) {
        self.pops_since_restart += 1;
        if self.frontier.is_empty() || self.pops_since_restart >= self.restart_every {
            // New (re)start: clear visited lazily by generation trick would
            // complicate; visited is host-side only, reset is cheap.
            self.pops_since_restart = 0;
            for v in self.visited.iter_mut() {
                *v = false;
            }
            let s = self.rng.gen_range(0..self.graph.num_vertices());
            self.frontier.push_back(s);
            self.visited[s as usize] = true;
        }
        let u = self.frontier.pop_front().expect("frontier refilled above");
        let start = self.graph.offsets[u as usize] as usize;
        let adj: Vec<u32> = self.graph.adj(u).iter().take(32).copied().collect();
        self.queue.push_back(Instr::load(
            pc(50),
            VirtAddr::new(self.off_addr(u)),
            Some(2),
            [Some(1), None],
        ));
        for (k, &t) in adj.iter().enumerate() {
            self.queue.push_back(Instr::load(
                pc(51),
                VirtAddr::new(self.edge_addr(start + k)),
                Some(3),
                [Some(2), None],
            ));
            self.queue.push_back(Instr::load(
                pc(52),
                VirtAddr::new(self.data_addr(t)),
                Some(4),
                [Some(3), None],
            ));
            let unvisited = !self.visited[t as usize];
            self.queue
                .push_back(Instr::branch(pc(53), unvisited, Some(4)));
            if unvisited {
                self.visited[t as usize] = true;
                self.frontier.push_back(t);
                self.queue.push_back(Instr::store(
                    pc(54),
                    VirtAddr::new(self.data_addr(t)),
                    [Some(4), Some(1)],
                ));
            }
        }
        self.queue.push_back(Instr::branch(pc(55), true, None));
    }

    fn refill_triangle(&mut self) {
        let u = self.u;
        self.u = (self.u + 1) % self.graph.num_vertices();
        let start_u = self.graph.offsets[u as usize] as usize;
        let adj_u: Vec<u32> = self.graph.adj(u).iter().take(8).copied().collect();
        // Pre-compute intersection walk host-side, then emit its loads.
        let mut steps: Vec<(usize, usize)> = Vec::new();
        for (k, &v) in adj_u.iter().enumerate() {
            if v <= u {
                continue;
            }
            let start_v = self.graph.offsets[v as usize] as usize;
            let adj_v = self.graph.adj(v);
            let (mut i, mut j) = (0usize, 0usize);
            let mut guard = 0;
            while i < adj_u.len() && j < adj_v.len().min(16) && guard < 24 {
                steps.push((start_u + i, start_v + j));
                if adj_u[i] < adj_v[j] {
                    i += 1;
                } else {
                    j += 1;
                }
                guard += 1;
            }
            let _ = k;
        }
        self.queue.push_back(Instr::load(
            pc(70),
            VirtAddr::new(self.off_addr(u)),
            Some(2),
            [Some(1), None],
        ));
        for (ei, ej) in steps {
            self.queue.push_back(Instr::load(
                pc(71),
                VirtAddr::new(self.edge_addr(ei)),
                Some(3),
                [Some(2), None],
            ));
            self.queue.push_back(Instr::load(
                pc(72),
                VirtAddr::new(self.edge_addr(ej)),
                Some(4),
                [Some(2), None],
            ));
            self.queue
                .push_back(Instr::branch(pc(73), (ei ^ ej) & 1 == 0, Some(4)));
        }
        self.queue.push_back(Instr::branch(pc(74), true, None));
    }
}

impl TraceSource for GraphWorkload {
    fn next_instr(&mut self) -> Instr {
        while self.queue.is_empty() {
            match self.kernel {
                GraphKernel::PageRank => self.refill_pagerank(),
                GraphKernel::Components => self.refill_components(),
                GraphKernel::Bfs => self.refill_bfs(),
                GraphKernel::Triangle => self.refill_triangle(),
            }
        }
        self.queue.pop_front().expect("non-empty after refill")
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_well_formed() {
        let g = CsrGraph::synth(1000, 8, 1);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 1000);
        for u in 0..1000 {
            for &t in g.adj(u) {
                assert!(t < 1000);
            }
        }
    }

    #[test]
    fn targets_skewed_to_hubs() {
        let g = CsrGraph::synth(10_000, 8, 2);
        let low = g.edges.iter().filter(|&&t| t < 2500).count();
        // Quadratic skew puts ~half the mass in the first quarter.
        assert!(
            low * 2 > g.num_edges(),
            "skew too weak: {}/{}",
            low,
            g.num_edges()
        );
    }

    #[test]
    fn pagerank_emits_gather_loads() {
        let mut w = GraphWorkload::new(GraphKernel::PageRank, 500, 6, 3);
        let mut gather = 0;
        for _ in 0..2000 {
            let i = w.next_instr();
            if i.pc == pc(42) {
                gather += 1;
            }
        }
        assert!(gather > 100);
    }

    #[test]
    fn bfs_restarts_when_frontier_empties() {
        let mut w = GraphWorkload::new(GraphKernel::Bfs, 200, 4, 4);
        // Run long enough to exhaust several BFS trees.
        for _ in 0..50_000 {
            let _ = w.next_instr();
        }
        // Must not hang or panic; frontier logic self-restarts.
    }

    #[test]
    fn triangle_reads_two_edge_streams() {
        let mut w = GraphWorkload::new(GraphKernel::Triangle, 500, 8, 5);
        let (mut a, mut b) = (0, 0);
        for _ in 0..5000 {
            let i = w.next_instr();
            if i.pc == pc(71) {
                a += 1;
            }
            if i.pc == pc(72) {
                b += 1;
            }
        }
        assert!(a > 50 && b > 50);
    }

    #[test]
    fn radii_named_and_restarting() {
        let w = GraphWorkload::new_radii(300, 4, 6);
        assert!(w.name().contains("radii"));
        assert!(w.restart_every < u32::MAX);
    }

    #[test]
    fn deterministic() {
        let mut a = GraphWorkload::new(GraphKernel::Components, 400, 5, 9);
        let mut b = GraphWorkload::new(GraphKernel::Components, 400, 5, 9);
        for _ in 0..500 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
