//! Pointer-chasing workload (`mcf` / linked-data-structure class).
//!
//! A single dependent chain of loads walks a pseudo-random permutation of
//! `nodes` cache lines: each load's result is the address of the next load,
//! so there is no memory-level parallelism and every off-chip miss stalls
//! the ROB — the worst case the paper's Fig. 3 quantifies. The permutation
//! is an affine map `next = a*cur + c (mod 2^k)` with odd `c` and
//! `a ≡ 1 (mod 4)` (Hull–Dobell), so the walk visits every node before
//! repeating, needs no backing storage, and produces address deltas that
//! defeat delta/offset prefetchers, as irregular pointer chasing does.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::VirtAddr;

use super::{pc, Layout};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct PointerChase {
    name: String,
    base: u64,
    mask: u64,
    mul: u64,
    add: u64,
    cur: u64,
    work_per_hop: u32,
    work_left: u32,
    slot: u32,
}

impl PointerChase {
    /// A chase over at least `nodes` 64 B nodes (rounded up to a power of
    /// two), with `work_per_hop` dependent ALU instructions between hops.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn new(nodes: u64, work_per_hop: u32, seed: u64) -> Self {
        assert!(nodes >= 2, "need at least two nodes to chase");
        let n = nodes.next_power_of_two();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
        // Hull–Dobell: the affine map has full period modulo a power of two
        // iff `add` is odd and `mul ≡ 1 (mod 4)`. An odd `mul` alone is
        // bijective but can strand the walk on a short cycle.
        let mul = ((rng.gen::<u64>() & (n - 1)) & !0b10) | 1;
        let add = rng.gen::<u64>() & (n - 1) | 1;
        Self {
            name: format!("pointer_chase_{}n", nodes),
            base: Layout::new().region(0),
            mask: n - 1,
            mul,
            add,
            cur: rng.gen::<u64>() & (n - 1),
            work_per_hop,
            work_left: 0,
            slot: 0,
        }
    }

    fn node_addr(&self) -> u64 {
        self.base + self.cur * 64
    }
}

impl TraceSource for PointerChase {
    fn next_instr(&mut self) -> Instr {
        // Loop body: [chase load] [work]* [loop branch]
        match self.slot {
            0 => {
                let addr = self.node_addr();
                self.cur = (self.cur.wrapping_mul(self.mul).wrapping_add(self.add)) & self.mask;
                self.work_left = self.work_per_hop;
                self.slot = if self.work_left > 0 { 1 } else { 2 };
                // r1 <- [r1]: the serially-dependent chase load.
                Instr::load(pc(0), VirtAddr::new(addr), Some(1), [Some(1), None])
            }
            1 => {
                self.work_left -= 1;
                if self.work_left == 0 {
                    self.slot = 2;
                }
                // Work depends on the loaded pointer (r1), keeping it serial.
                Instr::alu(
                    pc(1 + (self.work_left % 4) as u64),
                    Some(2),
                    [Some(1), Some(2)],
                )
            }
            _ => {
                self.slot = 0;
                Instr::branch(pc(8), true, Some(2))
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn visits_many_distinct_lines() {
        let mut g = PointerChase::new(4096, 0, 7);
        let mut lines = HashSet::new();
        for _ in 0..8192 {
            let i = g.next_instr();
            if let Some(m) = i.mem {
                lines.insert(m.vaddr.line());
            }
        }
        // Affine bijection must cycle through a large share of nodes.
        assert!(lines.len() > 1024, "only {} distinct lines", lines.len());
    }

    #[test]
    fn chase_load_is_serially_dependent() {
        let mut g = PointerChase::new(64, 0, 1);
        let ld = g.next_instr();
        assert!(ld.is_load());
        assert_eq!(ld.dst_reg, Some(1));
        assert_eq!(ld.src_regs[0], Some(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PointerChase::new(1024, 2, 42);
        let mut b = PointerChase::new(1024, 2, 42);
        for _ in 0..100 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = PointerChase::new(1024, 0, 1);
        let mut b = PointerChase::new(1024, 0, 2);
        let da: Vec<_> = (0..32).map(|_| a.next_instr()).collect();
        let db: Vec<_> = (0..32).map(|_| b.next_instr()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn work_instructions_interleave() {
        let mut g = PointerChase::new(64, 3, 9);
        let kinds: Vec<bool> = (0..10).map(|_| g.next_instr().is_load()).collect();
        // load, 3x alu, branch, load ...
        assert!(kinds[0]);
        assert!(!kinds[1] && !kinds[2] && !kinds[3] && !kinds[4]);
        assert!(kinds[5]);
    }
}
