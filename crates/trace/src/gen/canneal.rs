//! Random element-swap workload (PARSEC `canneal` class).
//!
//! Simulated-annealing element swaps: two random elements are picked, their
//! descriptors loaded, a dependent field of each chased, costs compared
//! with a data-dependent branch, and (sometimes) both written back. Random
//! dependent loads over a >LLC working set with ~50/50 branches — PARSEC's
//! least prefetchable member.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::VirtAddr;

use super::{pc, Layout};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug)]
pub struct Canneal {
    name: String,
    elem_base: u64,
    loc_base: u64,
    elems: u64,
    rng: SmallRng,
    slot: u32,
    a: u64,
    b: u64,
    accept: bool,
}

impl Canneal {
    /// A swap loop over `elems` 64 B element descriptors (rounded up to a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if `elems < 16`.
    pub fn new(elems: u64, seed: u64) -> Self {
        assert!(elems >= 16);
        let l = Layout::new();
        Self {
            name: format!("canneal_{}k", elems >> 10),
            elem_base: l.region(24),
            loc_base: l.region(25),
            elems: elems.next_power_of_two(),
            rng: SmallRng::seed_from_u64(seed ^ 0x414E_4E4C),
            slot: 0,
            a: 0,
            b: 0,
            accept: false,
        }
    }
}

impl TraceSource for Canneal {
    fn next_instr(&mut self) -> Instr {
        match self.slot {
            0 => {
                self.a = self.rng.gen::<u64>() & (self.elems - 1);
                self.b = self.rng.gen::<u64>() & (self.elems - 1);
                self.accept = self.rng.gen::<bool>();
                self.slot = 1;
                Instr::load(
                    pc(110),
                    VirtAddr::new(self.elem_base + self.a * 64),
                    Some(2),
                    [Some(1), None],
                )
            }
            1 => {
                self.slot = 2;
                Instr::load(
                    pc(111),
                    VirtAddr::new(self.elem_base + self.b * 64),
                    Some(3),
                    [Some(1), None],
                )
            }
            // Dependent location loads (pointer field chase).
            2 => {
                self.slot = 3;
                Instr::load(
                    pc(112),
                    VirtAddr::new(self.loc_base + self.a * 64),
                    Some(4),
                    [Some(2), None],
                )
            }
            3 => {
                self.slot = 4;
                Instr::load(
                    pc(113),
                    VirtAddr::new(self.loc_base + self.b * 64),
                    Some(5),
                    [Some(3), None],
                )
            }
            4 => {
                self.slot = 5;
                Instr::fp(pc(114), Some(24), [Some(4), Some(5)], 3)
            }
            // Accept/reject: data-dependent ~50/50 branch.
            5 => {
                self.slot = if self.accept { 6 } else { 8 };
                Instr::branch(pc(115), self.accept, Some(24))
            }
            6 => {
                self.slot = 7;
                Instr::store(
                    pc(116),
                    VirtAddr::new(self.loc_base + self.a * 64),
                    [Some(5), Some(1)],
                )
            }
            7 => {
                self.slot = 8;
                Instr::store(
                    pc(117),
                    VirtAddr::new(self.loc_base + self.b * 64),
                    [Some(4), Some(1)],
                )
            }
            _ => {
                self.slot = 0;
                Instr::branch(pc(118), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_loop_shape() {
        let mut g = Canneal::new(1 << 16, 1);
        let pcs: Vec<u64> = (0..6).map(|_| g.next_instr().pc).collect();
        assert_eq!(pcs[0], pc(110));
        assert_eq!(pcs[4], pc(114));
        assert_eq!(pcs[5], pc(115));
    }

    #[test]
    fn accept_branch_is_balanced() {
        let mut g = Canneal::new(1 << 12, 2);
        let (mut taken, mut total) = (0, 0);
        for _ in 0..50_000 {
            let i = g.next_instr();
            if i.pc == pc(115) {
                total += 1;
                if i.branch.unwrap().taken {
                    taken += 1;
                }
            }
        }
        let r = taken as f64 / total as f64;
        assert!(r > 0.4 && r < 0.6);
    }

    #[test]
    fn stores_only_on_accept() {
        let mut g = Canneal::new(1 << 12, 3);
        let mut last_accept = false;
        for _ in 0..10_000 {
            let i = g.next_instr();
            if i.pc == pc(115) {
                last_accept = i.branch.unwrap().taken;
            }
            if i.is_store() {
                assert!(last_accept, "store emitted after rejected swap");
            }
        }
    }
}
