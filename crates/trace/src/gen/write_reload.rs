//! Spill/reload workload: every store is reloaded moments later.
//!
//! Models register-pressure spill code and message-buffer staging: the
//! kernel streams an input array (the off-chip-bound part), spills an
//! intermediate to a small circular scratch buffer, and reloads the
//! just-stored word within a handful of instructions — while the store
//! is still sitting in the store queue. On the out-of-order core those
//! reloads resolve by store-to-load forwarding (`forwarded_loads`), a
//! path no other synthetic generator exercises: the streaming suites
//! write words they never read back. A second reload targets the slot
//! stored `slots/2` iterations ago, which has long drained to the L1,
//! so each iteration mixes a forwarded load with an ordinary cache hit.

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct WriteReload {
    name: String,
    /// Circular scratch buffer of 8 B words (the spill area).
    buf: u64,
    /// Streamed input array.
    stream: u64,
    slots: u64,
    work: u32,
    i: u64,
    phase: u32,
    work_left: u32,
    rot: RegRotor,
}

impl WriteReload {
    /// A spill/reload kernel over a scratch buffer of `slots` 8 B words,
    /// with `work` ALU instructions of compute between the store and its
    /// reload.
    ///
    /// # Panics
    ///
    /// Panics if `slots < 2`.
    pub fn new(slots: u64, work: u32, seed: u64) -> Self {
        assert!(slots >= 2, "need at least two scratch slots");
        let l = Layout::new();
        Self {
            name: format!("write_reload_{slots}s{work}w"),
            buf: l.region(1),
            stream: l.region(2),
            slots,
            work,
            i: seed % slots, // start phase varies per seed
            phase: 0,
            work_left: 0,
            rot: RegRotor::new(8, 8),
        }
    }

    #[inline]
    fn slot_addr(&self, iter: u64) -> u64 {
        self.buf + (iter % self.slots) * 8
    }
}

impl TraceSource for WriteReload {
    fn next_instr(&mut self) -> Instr {
        match self.phase {
            // Streamed input: the only load that can go off-chip.
            0 => {
                self.phase = 1;
                self.work_left = self.work;
                let r = self.rot.next_reg();
                Instr::load(
                    pc(0),
                    VirtAddr::new(self.stream + self.i * 8),
                    Some(r),
                    [Some(1), None],
                )
            }
            // Compute on the input before spilling the intermediate.
            1 => {
                if self.work_left > 1 {
                    self.work_left -= 1;
                } else {
                    self.phase = 2;
                }
                Instr::fp(pc(1), Some(24), [Some(8), Some(9)], 4)
            }
            // Spill.
            2 => {
                self.phase = 3;
                Instr::store(
                    pc(2),
                    VirtAddr::new(self.slot_addr(self.i)),
                    [Some(24), None],
                )
            }
            // Reload the word just stored: the store is still in the
            // store queue, so the OoO core forwards it.
            3 => {
                self.phase = 4;
                let r = self.rot.next_reg();
                Instr::load(
                    pc(3),
                    VirtAddr::new(self.slot_addr(self.i)),
                    Some(r),
                    [None, None],
                )
            }
            // Reload a long-drained slot: an ordinary L1 hit.
            4 => {
                self.phase = 5;
                let r = self.rot.next_reg();
                Instr::load(
                    pc(4),
                    VirtAddr::new(self.slot_addr(self.i + self.slots / 2)),
                    Some(r),
                    [None, None],
                )
            }
            _ => {
                self.i += 1;
                self.phase = 0;
                Instr::branch(pc(5), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_store_is_reloaded_immediately() {
        let mut g = WriteReload::new(64, 1, 0);
        let mut pending_store: Option<u64> = None;
        let mut matched = 0;
        for _ in 0..600 {
            let i = g.next_instr();
            if i.is_store() {
                assert!(pending_store.is_none(), "store never reloaded");
                pending_store = Some(i.mem.unwrap().vaddr.raw());
            } else if i.is_load() && i.pc == pc(3) {
                assert_eq!(
                    Some(i.mem.unwrap().vaddr.raw()),
                    pending_store,
                    "reload does not target the just-stored word"
                );
                pending_store = None;
                matched += 1;
            }
        }
        assert!(matched > 50, "only {matched} spill/reload pairs seen");
    }

    #[test]
    fn old_slot_reload_is_distinct_and_resident() {
        let mut g = WriteReload::new(64, 1, 0);
        for _ in 0..600 {
            let i = g.next_instr();
            if i.is_load() && i.pc == pc(4) {
                let a = i.mem.unwrap().vaddr.raw();
                let l = Layout::new();
                assert!(a >= l.region(1) && a < l.region(1) + 64 * 8);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WriteReload::new(32, 2, 7);
        let mut b = WriteReload::new(32, 2, 7);
        for _ in 0..200 {
            assert_eq!(
                format!("{:?}", a.next_instr()),
                format!("{:?}", b.next_instr())
            );
        }
    }
}
