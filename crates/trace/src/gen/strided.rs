//! Multi-array strided sweep (`cactusADM` / HPC kernel class).
//!
//! Several arrays are walked simultaneously with a constant (per-array)
//! stride larger than a cache line. Constant strides are the easy case for
//! stride/offset prefetchers (SPP, MLOP, Bingo all cover it), so this class
//! is where prefetchers shine and Hermes' *additional* benefit is smallest —
//! matching the per-trace spread in the paper's Fig. 13.

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct StridedMulti {
    name: String,
    bases: Vec<u64>,
    stride: u64,
    footprint: u64,
    pos: Vec<u64>,
    arr: usize,
    slot: u32,
    work: u32,
    work_left: u32,
    rot: RegRotor,
}

impl StridedMulti {
    /// `arrays` arrays walked with `stride` bytes per step over `footprint`
    /// bytes each, with `work` ALU ops between loads.
    ///
    /// # Panics
    ///
    /// Panics if `arrays == 0`, `stride == 0`, or `footprint < stride`.
    pub fn new(arrays: usize, stride: u64, footprint: u64, work: u32, seed: u64) -> Self {
        assert!(arrays > 0 && stride > 0 && footprint >= stride);
        let l = Layout::new();
        let bases: Vec<u64> = (0..arrays as u64).map(|k| l.region(4 + k)).collect();
        let pos: Vec<u64> = (0..arrays as u64)
            .map(|k| ((seed ^ k).wrapping_mul(stride)) % footprint)
            .collect();
        Self {
            name: format!("strided_{}x{}B", arrays, stride),
            bases,
            stride,
            footprint,
            pos,
            arr: 0,
            slot: 0,
            work,
            work_left: 0,
            rot: RegRotor::new(8, 8),
        }
    }
}

impl TraceSource for StridedMulti {
    fn next_instr(&mut self) -> Instr {
        match self.slot {
            0 => {
                let addr = self.bases[self.arr] + self.pos[self.arr];
                self.pos[self.arr] = (self.pos[self.arr] + self.stride) % self.footprint;
                let load_pc = pc(10 + self.arr as u64); // one static PC per array
                self.arr = (self.arr + 1) % self.bases.len();
                self.work_left = self.work;
                self.slot = if self.work > 0 { 1 } else { 2 };
                let r = self.rot.next_reg();
                Instr::load(load_pc, VirtAddr::new(addr), Some(r), [Some(1), None])
            }
            1 => {
                self.work_left -= 1;
                if self.work_left == 0 {
                    self.slot = 2;
                }
                Instr::fp(pc(20), Some(24), [Some(8), Some(24)], 3)
            }
            _ => {
                self.slot = 0;
                Instr::branch(pc(21), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_is_constant_per_pc() {
        let mut g = StridedMulti::new(2, 256, 1 << 20, 0, 0);
        let mut by_pc: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for _ in 0..100 {
            let i = g.next_instr();
            if let Some(m) = i.mem {
                by_pc.entry(i.pc).or_default().push(m.vaddr.raw());
            }
        }
        for addrs in by_pc.values() {
            for w in addrs.windows(2) {
                assert_eq!(w[1] - w[0], 256);
            }
        }
    }

    #[test]
    fn arrays_have_distinct_pcs_and_regions() {
        let mut g = StridedMulti::new(3, 128, 1 << 16, 0, 1);
        let mut pcs = std::collections::HashSet::new();
        let mut regions = std::collections::HashSet::new();
        for _ in 0..30 {
            let i = g.next_instr();
            if let Some(m) = i.mem {
                pcs.insert(i.pc);
                regions.insert(m.vaddr.raw() / Layout::REGION);
            }
        }
        assert_eq!(pcs.len(), 3);
        assert_eq!(regions.len(), 3);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_arrays() {
        let _ = StridedMulti::new(0, 64, 1024, 0, 0);
    }
}
