//! Synthetic workload generators.
//!
//! Each submodule implements one workload *class*; [`crate::suite`] maps the
//! paper's five workload categories onto parameterised instances of these
//! classes. All generators are deterministic given their seed.

pub mod canneal;
pub mod dilute;
pub mod graph;
pub mod hash_join;
pub mod mixed;
pub mod pointer_chase;
pub mod random_access;
pub mod server;
pub mod sharing;
pub mod stencil;
pub mod stream;
pub mod streamcluster;
pub mod strided;
pub mod write_reload;

use crate::instr::Reg;

/// Rotating register allocator.
///
/// Streaming generators hand out destination registers round-robin from a
/// window so consecutive loads carry no false dependencies (high memory-
/// level parallelism), mirroring how compiled streaming code unrolls.
#[derive(Debug, Clone)]
pub struct RegRotor {
    base: Reg,
    count: Reg,
    next: Reg,
}

impl RegRotor {
    /// A rotor over registers `base .. base + count`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or exceeds the register file.
    pub fn new(base: Reg, count: Reg) -> Self {
        assert!(count > 0, "empty register window");
        assert!((base as usize + count as usize) <= crate::instr::NUM_REGS);
        Self {
            base,
            count,
            next: 0,
        }
    }

    /// Returns the next register in rotation.
    #[inline]
    pub fn next_reg(&mut self) -> Reg {
        let r = self.base + self.next;
        self.next = (self.next + 1) % self.count;
        r
    }
}

/// Virtual-address-space layout shared by the generators.
///
/// Each logical data structure gets its own naturally-aligned 256 MiB
/// region, so distinct structures never share pages and page-level features
/// behave as they would in a real process image.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    base: u64,
}

impl Layout {
    /// Region size per data structure.
    pub const REGION: u64 = 256 << 20;

    /// A layout rooted at the conventional heap base.
    pub fn new() -> Self {
        Self {
            base: 0x1000_0000_0000,
        }
    }

    /// Base address of region `idx`.
    #[inline]
    pub fn region(&self, idx: u64) -> u64 {
        self.base + idx * Self::REGION
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

/// Layout of the *inter-core shared* address space: same region
/// carving as [`Layout`], rooted at [`hermes_types::SHARED_BASE`], where
/// every core's translation maps a page to the identical physical frame.
/// Only the sharing-aware generators allocate here; simulating these
/// workloads on multiple cores honestly requires
/// `SystemConfig::coherence` to be enabled.
#[derive(Debug, Clone, Copy)]
pub struct SharedLayout {
    base: u64,
}

impl SharedLayout {
    /// A layout rooted at the shared-region base.
    pub fn new() -> Self {
        Self {
            base: hermes_types::SHARED_BASE,
        }
    }

    /// Base address of shared region `idx`.
    ///
    /// # Panics
    ///
    /// Debug-panics past the end of the shared range (256 regions).
    #[inline]
    pub fn region(&self, idx: u64) -> u64 {
        debug_assert!(
            (idx + 1) * Layout::REGION <= hermes_types::SHARED_SIZE,
            "region {idx} exceeds the shared range"
        );
        self.base + idx * Layout::REGION
    }
}

impl Default for SharedLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Text-segment base for generated PCs; generators place their static
/// instructions at `CODE_BASE + slot * 4`.
pub const CODE_BASE: u64 = 0x40_0000;

/// Computes the PC of static-instruction slot `slot`.
#[inline]
pub const fn pc(slot: u64) -> u64 {
    CODE_BASE + slot * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotor_cycles() {
        let mut r = RegRotor::new(8, 3);
        assert_eq!(r.next_reg(), 8);
        assert_eq!(r.next_reg(), 9);
        assert_eq!(r.next_reg(), 10);
        assert_eq!(r.next_reg(), 8);
    }

    #[test]
    #[should_panic]
    fn rotor_rejects_empty() {
        let _ = RegRotor::new(8, 0);
    }

    #[test]
    fn layout_regions_disjoint() {
        let l = Layout::new();
        assert!(l.region(1) - l.region(0) >= Layout::REGION);
        assert_ne!(l.region(0) >> 12, l.region(1) >> 12); // different pages
    }

    #[test]
    fn pcs_word_aligned() {
        assert_eq!(pc(3) - pc(2), 4);
        assert_eq!(pc(0), CODE_BASE);
    }
}
