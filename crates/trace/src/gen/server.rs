//! Branchy server-request mix (CVP integer/server class).
//!
//! Emulates request-handler dispatch: a hot, cache-resident code path with
//! data-dependent branches (poorly predictable), small hot-state accesses,
//! and occasional cold misses into a large session table and log buffer.
//! This class has a *low* off-chip rate with bursty misses — the regime in
//! which an off-chip predictor's false-positive discipline matters most
//! (the paper's key challenge #1: only ~1/20 loads go off-chip).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug)]
pub struct ServerMix {
    name: String,
    hot_base: u64,
    session_base: u64,
    log_base: u64,
    hot_lines: u64,
    session_lines: u64,
    log_pos: u64,
    rng: SmallRng,
    rot: RegRotor,
    /// Remaining instructions in the current handler, as (phase, count).
    phase: u32,
    left: u32,
    cold_miss_per_mille: u32,
}

impl ServerMix {
    /// `hot_bytes` of cache-resident state, `session_bytes` of cold state,
    /// with `cold_miss_per_mille`/1000 of handler iterations touching the
    /// cold session table.
    ///
    /// # Panics
    ///
    /// Panics if either size is below 4 KiB.
    pub fn new(hot_bytes: u64, session_bytes: u64, cold_miss_per_mille: u32, seed: u64) -> Self {
        assert!(hot_bytes >= 4096 && session_bytes >= 4096);
        let l = Layout::new();
        Self {
            name: format!("server_{}MBcold", session_bytes >> 20),
            hot_base: l.region(19),
            session_base: l.region(20),
            log_base: l.region(21),
            hot_lines: hot_bytes / 64,
            session_lines: session_bytes.next_power_of_two() / 64,
            log_pos: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x5345_5256),
            rot: RegRotor::new(8, 6),
            phase: 0,
            left: 0,
            cold_miss_per_mille,
        }
    }
}

impl TraceSource for ServerMix {
    fn next_instr(&mut self) -> Instr {
        match self.phase {
            // Dispatch: unpredictable branch choosing a handler.
            0 => {
                self.left = 4 + (self.rng.gen::<u32>() % 8);
                self.phase = 1;
                Instr::branch(pc(90), self.rng.gen::<bool>(), Some(7))
            }
            // Hot-state work: loads that mostly hit L1/L2.
            1 => {
                self.left -= 1;
                if self.left == 0 {
                    self.phase = 2;
                }
                if self.rng.gen::<u8>() % 3 == 0 {
                    let addr = self.hot_base + (self.rng.gen::<u64>() % self.hot_lines) * 64;
                    let r = self.rot.next_reg();
                    Instr::load(pc(91), VirtAddr::new(addr), Some(r), [Some(1), None])
                } else {
                    Instr::alu(pc(92), Some(7), [Some(8), Some(7)])
                }
            }
            // Possible cold access: session lookup + log append.
            2 => {
                self.phase = 3;
                if self.rng.gen::<u32>() % 1000 < self.cold_miss_per_mille {
                    let addr =
                        self.session_base + (self.rng.gen::<u64>() % self.session_lines) * 64;
                    Instr::load(pc(93), VirtAddr::new(addr), Some(6), [Some(7), None])
                } else {
                    Instr::alu(pc(94), Some(7), [Some(7), None])
                }
            }
            // Log append: sequential store stream.
            _ => {
                let addr = self.log_base + (self.log_pos % (1 << 22)) * 8;
                self.log_pos += 1;
                self.phase = 0;
                Instr::store(pc(95), VirtAddr::new(addr), [Some(7), Some(1)])
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_rate_controls_session_loads() {
        let count_cold = |pm: u32| {
            let mut g = ServerMix::new(1 << 16, 1 << 24, pm, 1);
            (0..50_000).filter(|_| g.next_instr().pc == pc(93)).count()
        };
        let low = count_cold(50);
        let high = count_cold(500);
        assert!(high > low * 3, "cold knob ineffective: {low} vs {high}");
    }

    #[test]
    fn dispatch_branches_are_irregular() {
        let mut g = ServerMix::new(1 << 16, 1 << 22, 100, 2);
        let mut taken = 0;
        let mut total = 0;
        for _ in 0..20_000 {
            let i = g.next_instr();
            if i.pc == pc(90) {
                total += 1;
                if i.branch.unwrap().taken {
                    taken += 1;
                }
            }
        }
        let ratio = taken as f64 / total as f64;
        assert!(
            ratio > 0.35 && ratio < 0.65,
            "dispatch should be ~50/50, got {ratio}"
        );
    }

    #[test]
    fn deterministic() {
        let mut a = ServerMix::new(1 << 16, 1 << 22, 100, 5);
        let mut b = ServerMix::new(1 << 16, 1 << 22, 100, 5);
        for _ in 0..1000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
