//! Sharing-aware workloads: the first generators whose cores touch the
//! *same* physical cache lines (through the shared virtual region, see
//! [`super::SharedLayout`]).
//!
//! Unlike every other generator, these are **core-aware**: the builder
//! receives the core index and derives the core's role (producer vs
//! consumer lanes) and a decorrelated access stream from it, so a
//! homogeneous N-core run — the only shape the experiment engine
//! dispatches — becomes a genuine multi-threaded program instead of N
//! lock-step clones. Running them on more than one core without
//! `SystemConfig::coherence` enabled silently loses store visibility,
//! exactly the incoherence the MESI layer exists to fix.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor, SharedLayout};
use crate::instr::Instr;
use crate::source::TraceSource;

/// A producer-consumer ring over shared memory.
///
/// The ring lives in the shared region: `slots` header lines in one
/// region, each with a `payload_lines`-line payload block in the next.
/// Even cores are producers (store a slot's payload then its header),
/// odd cores are consumers (load the header then the payload) — the
/// classic communication pattern whose writes *must* invalidate remote
/// copies to be visible. Lanes start phase-shifted so multiple
/// producer/consumer pairs do not ping-pong the same slot forever.
#[derive(Debug)]
pub struct PcRing {
    slots: u64,
    payload_lines: u32,
    work: u32,
    header_base: u64,
    payload_base: u64,
    /// Current slot index (pre-wrapped).
    pos: u64,
    /// Step within the current slot: 0 = header, 1..=payload = payload,
    /// then `work` ALU ops.
    step: u32,
    producer: bool,
    rng: SmallRng,
    rot: RegRotor,
}

impl PcRing {
    /// A ring of `slots` slots with `payload_lines` payload lines each
    /// and `work` ALU instructions per slot visit; `core` selects the
    /// role and lane.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `payload_lines` is zero.
    pub fn new(slots: u64, payload_lines: u32, work: u32, seed: u64, core: usize) -> Self {
        assert!(slots > 0 && payload_lines > 0);
        let l = SharedLayout::new();
        let lane = (core / 2) as u64;
        Self {
            slots,
            payload_lines,
            work,
            header_base: l.region(0),
            payload_base: l.region(1),
            // Phase-shift lanes so pairs of cores work different slots.
            pos: (lane * 97) % slots,
            step: 0,
            producer: core.is_multiple_of(2),
            rng: SmallRng::seed_from_u64(seed ^ 0x5043_5249 ^ ((core as u64) << 32)),
            rot: RegRotor::new(8, 6),
        }
    }

    fn header_addr(&self) -> u64 {
        self.header_base + (self.pos % self.slots) * 64
    }

    fn payload_addr(&self, line: u32) -> u64 {
        self.payload_base
            + (self.pos % self.slots) * self.payload_lines as u64 * 64
            + line as u64 * 64
    }
}

impl TraceSource for PcRing {
    fn next_instr(&mut self) -> Instr {
        let payload = self.payload_lines;
        let instr = if self.step == 0 {
            // Header touch: the consumer reads what the producer wrote.
            let a = VirtAddr::new(self.header_addr());
            if self.producer {
                Instr::store(pc(110), a, [Some(7), Some(1)])
            } else {
                Instr::load(pc(111), a, Some(self.rot.next_reg()), [Some(1), None])
            }
        } else if self.step <= payload {
            let a = VirtAddr::new(self.payload_addr(self.step - 1));
            if self.producer {
                Instr::store(pc(112), a, [Some(7), Some(1)])
            } else {
                Instr::load(pc(113), a, Some(self.rot.next_reg()), [Some(1), None])
            }
        } else {
            Instr::alu(pc(114), Some(7), [Some(7), Some(8)])
        };
        self.step += 1;
        if self.step > payload + self.work {
            self.step = 0;
            // Mostly sequential, with an occasional skip so lanes drift.
            self.pos += 1 + (self.rng.gen::<u32>() % 16 == 0) as u64;
        }
        instr
    }

    fn name(&self) -> &str {
        if self.producer {
            "pc_ring(producer)"
        } else {
            "pc_ring(consumer)"
        }
    }
}

/// A server-style mix over a shared hot set.
///
/// Every memory access picks the shared hot set with probability
/// `shared_per_mille`/1000 (any core may read *or write* those lines —
/// the invalidation-traffic knob) and a large per-core private session
/// table otherwise (the off-chip-pressure knob that keeps POPET busy).
/// Streams are decorrelated per core.
#[derive(Debug)]
pub struct SharedHotSet {
    shared_base: u64,
    shared_lines: u64,
    private_base: u64,
    private_lines: u64,
    shared_per_mille: u32,
    store_per_mille: u32,
    rng: SmallRng,
    rot: RegRotor,
    /// Alternates memory and ALU/branch filler.
    phase: u32,
}

impl SharedHotSet {
    /// `shared_bytes` of inter-core shared hot state, `private_bytes` of
    /// per-core cold state; `shared_per_mille` of accesses go to the hot
    /// set, `store_per_mille` of those are stores.
    ///
    /// # Panics
    ///
    /// Panics if either size is below 4 KiB or a per-mille knob exceeds
    /// 1000.
    pub fn new(
        shared_bytes: u64,
        private_bytes: u64,
        shared_per_mille: u32,
        store_per_mille: u32,
        seed: u64,
        core: usize,
    ) -> Self {
        assert!(shared_bytes >= 4096 && private_bytes >= 4096);
        assert!(shared_per_mille <= 1000 && store_per_mille <= 1000);
        Self {
            shared_base: SharedLayout::new().region(2),
            shared_lines: shared_bytes / 64,
            private_base: Layout::new().region(24),
            private_lines: private_bytes.next_power_of_two() / 64,
            shared_per_mille,
            store_per_mille,
            rng: SmallRng::seed_from_u64(seed ^ 0x5348_4F54 ^ ((core as u64) << 32)),
            rot: RegRotor::new(8, 6),
            phase: 0,
        }
    }
}

impl TraceSource for SharedHotSet {
    fn next_instr(&mut self) -> Instr {
        match self.phase {
            0 => {
                self.phase = 1;
                Instr::branch(pc(120), self.rng.gen::<u8>() % 4 == 0, Some(7))
            }
            1 => {
                self.phase = 2;
                let shared = self.rng.gen::<u32>() % 1000 < self.shared_per_mille;
                let addr = if shared {
                    self.shared_base + (self.rng.gen::<u64>() % self.shared_lines) * 64
                } else {
                    self.private_base + (self.rng.gen::<u64>() % self.private_lines) * 64
                };
                let store = shared && self.rng.gen::<u32>() % 1000 < self.store_per_mille;
                if store {
                    Instr::store(pc(121), VirtAddr::new(addr), [Some(7), Some(1)])
                } else {
                    Instr::load(
                        pc(122),
                        VirtAddr::new(addr),
                        Some(self.rot.next_reg()),
                        [Some(1), None],
                    )
                }
            }
            _ => {
                self.phase = 0;
                Instr::alu(pc(123), Some(7), [Some(7), None])
            }
        }
    }

    fn name(&self) -> &str {
        "shared_hot_set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_types::SHARED_BASE;

    fn shared_fraction(src: &mut dyn TraceSource, n: usize) -> (f64, f64) {
        let mut mem = 0u64;
        let mut shared = 0u64;
        let mut stores = 0u64;
        for _ in 0..n {
            let i = src.next_instr();
            if let Some(m) = i.mem {
                mem += 1;
                if m.vaddr.is_shared() {
                    shared += 1;
                }
                if m.kind == crate::instr::MemKind::Store {
                    stores += 1;
                }
            }
        }
        (shared as f64 / mem as f64, stores as f64 / mem as f64)
    }

    #[test]
    fn ring_roles_follow_core_parity() {
        let mut p = PcRing::new(256, 2, 4, 1, 0);
        let mut c = PcRing::new(256, 2, 4, 1, 1);
        let mut p_stores = 0;
        let mut c_loads = 0;
        for _ in 0..1000 {
            if let Some(m) = p.next_instr().mem {
                assert!(m.vaddr.raw() >= SHARED_BASE, "ring lives in shared region");
                assert_eq!(m.kind, crate::instr::MemKind::Store);
                p_stores += 1;
            }
            if let Some(m) = c.next_instr().mem {
                assert_eq!(m.kind, crate::instr::MemKind::Load);
                c_loads += 1;
            }
        }
        assert!(p_stores > 100 && c_loads > 100);
    }

    #[test]
    fn ring_producer_and_consumer_touch_the_same_lines() {
        let lines = |core: usize| {
            let mut g = PcRing::new(64, 2, 0, 7, core);
            let mut s = std::collections::HashSet::new();
            for _ in 0..2000 {
                if let Some(m) = g.next_instr().mem {
                    s.insert(m.vaddr.line());
                }
            }
            s
        };
        let p = lines(0);
        let c = lines(1);
        let overlap = p.intersection(&c).count();
        assert!(
            overlap * 2 > p.len(),
            "producer/consumer must share most of the ring ({overlap} of {})",
            p.len()
        );
    }

    #[test]
    fn hot_set_shared_fraction_follows_knob() {
        for pm in [0u32, 300, 800] {
            let mut g = SharedHotSet::new(1 << 20, 8 << 20, pm, 500, 3, 0);
            let (frac, _) = shared_fraction(&mut g, 60_000);
            let want = pm as f64 / 1000.0;
            assert!(
                (frac - want).abs() < 0.05,
                "shared fraction {frac} for knob {want}"
            );
        }
    }

    #[test]
    fn hot_set_streams_decorrelate_per_core_but_share_lines() {
        let mut a = SharedHotSet::new(1 << 18, 1 << 20, 600, 300, 9, 0);
        let mut b = SharedHotSet::new(1 << 18, 1 << 20, 600, 300, 9, 1);
        let mut identical = 0;
        let mut sa = std::collections::HashSet::new();
        let mut sb = std::collections::HashSet::new();
        for _ in 0..3000 {
            let (ia, ib) = (a.next_instr(), b.next_instr());
            if ia == ib {
                identical += 1;
            }
            if let Some(m) = ia.mem {
                if m.vaddr.is_shared() {
                    sa.insert(m.vaddr.line());
                }
            }
            if let Some(m) = ib.mem {
                if m.vaddr.is_shared() {
                    sb.insert(m.vaddr.line());
                }
            }
        }
        assert!(identical < 2500, "cores must not run in lock step");
        let overlap = sa.intersection(&sb).count();
        assert!(overlap > 0, "hot set must actually be shared");
    }

    #[test]
    fn deterministic_per_core() {
        let mut a = PcRing::new(128, 3, 5, 11, 2);
        let mut b = PcRing::new(128, 3, 5, 11, 2);
        for _ in 0..500 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
        let mut a = SharedHotSet::new(1 << 16, 1 << 20, 400, 200, 11, 3);
        let mut b = SharedHotSet::new(1 << 16, 1 << 20, 400, 200, 11, 3);
        for _ in 0..500 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
