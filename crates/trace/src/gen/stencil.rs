//! 3-D stencil sweep (PARSEC `facesim` / HPC grid class).
//!
//! A seven-point stencil walks a 3-D grid: unit-stride in x, plane-stride
//! in z. The x-neighbours hit the same or adjacent lines; the z-neighbours
//! stride by `nx*ny` elements, giving a second and third constant-stride
//! stream that spatial prefetchers (Bingo/SMS) capture via footprints.

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Stencil3d {
    name: String,
    in_base: u64,
    out_base: u64,
    nx: u64,
    ny: u64,
    nz: u64,
    i: u64,
    slot: u32,
    rot: RegRotor,
}

impl Stencil3d {
    /// A stencil over an `nx × ny × nz` grid of 8 B cells.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is below 4.
    pub fn new(nx: u64, ny: u64, nz: u64, seed: u64) -> Self {
        assert!(nx >= 4 && ny >= 4 && nz >= 4);
        let l = Layout::new();
        Self {
            name: format!("stencil_{}x{}x{}", nx, ny, nz),
            in_base: l.region(22),
            out_base: l.region(23),
            nx,
            ny,
            nz,
            i: (seed * 1237) % (nx * ny * nz),
            slot: 0,
            rot: RegRotor::new(8, 8),
        }
    }

    #[inline]
    fn cell_addr(&self, idx: i64) -> u64 {
        let n = (self.nx * self.ny * self.nz) as i64;
        let wrapped = idx.rem_euclid(n) as u64;
        self.in_base + wrapped * 8
    }
}

impl TraceSource for Stencil3d {
    fn next_instr(&mut self) -> Instr {
        let i = self.i as i64;
        let plane = (self.nx * self.ny) as i64;
        let row = self.nx as i64;
        // Neighbour offsets of the 7-point stencil; each has a static PC.
        const N: usize = 7;
        let offs: [i64; N] = [0, 1, -1, 0, 0, 0, 0];
        let big: [i64; N] = [0, 0, 0, row, -row, plane, -plane];
        match self.slot as usize {
            s if s < N => {
                let addr = self.cell_addr(i + offs[s] + big[s]);
                self.slot += 1;
                let r = self.rot.next_reg();
                Instr::load(
                    pc(100 + s as u64),
                    VirtAddr::new(addr),
                    Some(r),
                    [Some(1), None],
                )
            }
            7 => {
                self.slot = 8;
                Instr::fp(pc(107), Some(24), [Some(8), Some(9)], 4)
            }
            8 => {
                self.slot = 9;
                let addr = self.out_base + self.i * 8;
                Instr::store(pc(108), VirtAddr::new(addr), [Some(24), Some(1)])
            }
            _ => {
                self.i = (self.i + 1) % (self.nx * self.ny * self.nz);
                self.slot = 0;
                Instr::branch(pc(109), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_seven_loads_per_cell() {
        let mut g = Stencil3d::new(32, 32, 32, 0);
        let loads = (0..10).filter(|_| g.next_instr().is_load()).count();
        assert_eq!(loads, 7);
    }

    #[test]
    fn plane_neighbours_stride_by_plane() {
        let g = Stencil3d::new(16, 16, 16, 0);
        let center = g.cell_addr(1000);
        let up = g.cell_addr(1000 + 256);
        assert_eq!(up - center, 256 * 8);
    }

    #[test]
    fn wraps_grid() {
        let g = Stencil3d::new(4, 4, 4, 0);
        // Negative index wraps via rem_euclid.
        let a = g.cell_addr(-1);
        assert!(a >= g.in_base);
    }
}
