//! Streaming sweep workload (`lbm` / STREAM-triad class).
//!
//! Walks large arrays linearly with 4 B elements: `c[i] = a[i] * s + b[i]`.
//! Every 16th load of a given array touches a new cache line — exactly the
//! pattern the paper uses to motivate POPET's *PC ⊕ byte-offset* feature
//! (§6.1.3, feature 2): only loads with byte offset 0 can go off-chip; the
//! other 15 hit the line the first one brought in (or the prefetcher ran
//! ahead of). Loads use rotating registers, so the sweep has high MLP.

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct StreamSweep {
    name: String,
    a: u64,
    b: u64,
    c: u64,
    len_elems: u64,
    elem_size: u64,
    i: u64,
    slot: u32,
    rot: RegRotor,
    with_store: bool,
}

impl StreamSweep {
    /// A triad over arrays of `len_elems` elements of `elem_size` bytes.
    ///
    /// `with_store` controls whether the result array is written (pure-read
    /// sweeps model reduction kernels).
    ///
    /// # Panics
    ///
    /// Panics if `elem_size` is not a power of two in `1..=64` or
    /// `len_elems == 0`.
    pub fn new(len_elems: u64, elem_size: u64, with_store: bool, seed: u64) -> Self {
        assert!(len_elems > 0);
        assert!(elem_size.is_power_of_two() && elem_size <= 64);
        let l = Layout::new();
        Self {
            name: format!("stream_{}x{}B", len_elems, elem_size),
            a: l.region(1),
            b: l.region(2),
            c: l.region(3),
            len_elems,
            elem_size,
            i: seed % len_elems, // start phase varies per seed
            slot: 0,
            rot: RegRotor::new(8, 8),
            with_store,
        }
    }

    #[inline]
    fn off(&self) -> u64 {
        self.i * self.elem_size
    }
}

impl TraceSource for StreamSweep {
    fn next_instr(&mut self) -> Instr {
        match self.slot {
            0 => {
                self.slot = 1;
                let r = self.rot.next_reg();
                Instr::load(
                    pc(0),
                    VirtAddr::new(self.a + self.off()),
                    Some(r),
                    [Some(1), None],
                )
            }
            1 => {
                self.slot = 2;
                let r = self.rot.next_reg();
                Instr::load(
                    pc(1),
                    VirtAddr::new(self.b + self.off()),
                    Some(r),
                    [Some(1), None],
                )
            }
            2 => {
                self.slot = if self.with_store { 3 } else { 4 };
                Instr::fp(pc(2), Some(24), [Some(8), Some(9)], 4)
            }
            3 => {
                self.slot = 4;
                Instr::store(
                    pc(3),
                    VirtAddr::new(self.c + self.off()),
                    [Some(24), Some(1)],
                )
            }
            _ => {
                self.i += 1;
                if self.i >= self.len_elems {
                    self.i = 0;
                }
                self.slot = 0;
                Instr::branch(pc(4), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_offsets_cycle_through_line() {
        let mut g = StreamSweep::new(1 << 20, 4, true, 0);
        let mut offsets = Vec::new();
        for _ in 0..(16 * 5) {
            let i = g.next_instr();
            if i.is_load() && i.pc == pc(0) {
                offsets.push(i.mem.unwrap().vaddr.byte_offset_in_line());
            }
        }
        // Consecutive a[] loads advance by 4 bytes; offset 0 recurs each 16.
        assert_eq!(offsets[0] % 4, 0);
        for w in offsets.windows(2) {
            assert_eq!((w[0] + 4) % 64, w[1] % 64);
        }
    }

    #[test]
    fn loads_use_rotating_registers() {
        let mut g = StreamSweep::new(1024, 4, true, 0);
        let mut dsts = Vec::new();
        for _ in 0..20 {
            let i = g.next_instr();
            if i.is_load() {
                dsts.push(i.dst_reg.unwrap());
            }
        }
        // No immediate reuse of the same destination register.
        for w in dsts.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn wraps_at_array_end() {
        let mut g = StreamSweep::new(4, 4, false, 0);
        let mut first_addrs = Vec::new();
        for _ in 0..40 {
            let i = g.next_instr();
            if i.is_load() && i.pc == pc(0) {
                first_addrs.push(i.mem.unwrap().vaddr.raw());
            }
        }
        assert_eq!(first_addrs[0], first_addrs[4]);
    }

    #[test]
    fn no_store_mode() {
        let mut g = StreamSweep::new(64, 4, false, 0);
        for _ in 0..100 {
            assert!(!g.next_instr().is_store());
        }
    }
}
