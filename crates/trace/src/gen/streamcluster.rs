//! Streaming-clustering workload (PARSEC `streamcluster` class).
//!
//! Streams a large point array once per pass while repeatedly re-reading a
//! small, cache-resident medoid set and doing FP distance work. The stream
//! gives a steady miss rate; the medoids give a strongly-biased "will hit"
//! population — together a clean two-class problem for an off-chip
//! predictor (the paper calls out `streamcluster-6B` as a trace where
//! Hermes alone beats Pythia).

use hermes_types::VirtAddr;

use super::{pc, Layout, RegRotor};
use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct StreamCluster {
    name: String,
    points_base: u64,
    medoid_base: u64,
    points: u64,
    medoids: u64,
    dims: u64,
    i: u64,
    k: u64,
    d: u64,
    slot: u32,
    rot: RegRotor,
}

impl StreamCluster {
    /// `points` stream points of `dims` 8 B coordinates, compared against
    /// `medoids` resident centres.
    ///
    /// # Panics
    ///
    /// Panics if `points`, `medoids`, or `dims` is zero.
    pub fn new(points: u64, medoids: u64, dims: u64, seed: u64) -> Self {
        assert!(points > 0 && medoids > 0 && dims > 0);
        let l = Layout::new();
        Self {
            name: format!("streamcluster_{}k", points >> 10),
            points_base: l.region(26),
            medoid_base: l.region(27),
            points,
            medoids,
            dims,
            i: seed % points,
            k: 0,
            d: 0,
            slot: 0,
            rot: RegRotor::new(8, 8),
        }
    }
}

impl TraceSource for StreamCluster {
    fn next_instr(&mut self) -> Instr {
        match self.slot {
            // Stream the point coordinate (sequential over a huge array).
            0 => {
                let addr = self.points_base + (self.i * self.dims + self.d) * 8;
                self.slot = 1;
                let r = self.rot.next_reg();
                Instr::load(pc(120), VirtAddr::new(addr), Some(r), [Some(1), None])
            }
            // Re-read the medoid coordinate (hot, resident).
            1 => {
                let addr = self.medoid_base + (self.k * self.dims + self.d) * 8;
                self.slot = 2;
                let r = self.rot.next_reg();
                Instr::load(pc(121), VirtAddr::new(addr), Some(r), [Some(1), None])
            }
            2 => {
                self.slot = 3;
                Instr::fp(pc(122), Some(24), [Some(8), Some(24)], 4)
            }
            _ => {
                // Advance the (dim, medoid, point) odometer.
                self.d += 1;
                if self.d == self.dims {
                    self.d = 0;
                    self.k += 1;
                    if self.k == self.medoids {
                        self.k = 0;
                        self.i = (self.i + 1) % self.points;
                    }
                }
                self.slot = 0;
                Instr::branch(pc(123), true, None)
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medoid_set_is_small_and_reused() {
        let mut g = StreamCluster::new(1 << 20, 4, 8, 0);
        let mut medoid_lines = std::collections::HashSet::new();
        for _ in 0..5000 {
            let i = g.next_instr();
            if i.pc == pc(121) {
                medoid_lines.insert(i.mem.unwrap().vaddr.line());
            }
        }
        assert!(medoid_lines.len() <= 4 * 8); // 4 medoids x 8 dims x 8B = 4 lines max
    }

    #[test]
    fn points_stream_sequentially() {
        let mut g = StreamCluster::new(1 << 20, 1, 1, 0);
        let mut addrs = Vec::new();
        for _ in 0..50 {
            let i = g.next_instr();
            if i.pc == pc(120) {
                addrs.push(i.mem.unwrap().vaddr.raw());
            }
        }
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }
}
