//! Phase-alternating composite workload.
//!
//! Switches between two sub-workloads every `period` instructions. POPET's
//! saturation-guarded training (§6.1.2: "helping POPET to quickly adapt its
//! learning to program phase changes") exists exactly for this pattern, so
//! the suite includes phase-changing mixes to exercise it.

use crate::instr::Instr;
use crate::source::TraceSource;

/// See [module docs](self).
pub struct MixedPhase {
    name: String,
    a: Box<dyn TraceSource>,
    b: Box<dyn TraceSource>,
    period: u64,
    emitted: u64,
    in_a: bool,
}

/// PC relocation applied to phase B's instructions: two program phases are
/// different code in a real binary, so their static PCs must not collide.
const B_PC_OFFSET: u64 = 0x8_0000;

impl MixedPhase {
    /// Alternates `a` and `b` every `period` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(a: Box<dyn TraceSource>, b: Box<dyn TraceSource>, period: u64) -> Self {
        assert!(period > 0);
        let name = format!("mixed_{}_{}", a.name(), b.name());
        Self {
            name,
            a,
            b,
            period,
            emitted: 0,
            in_a: true,
        }
    }
}

impl std::fmt::Debug for MixedPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixedPhase")
            .field("name", &self.name)
            .field("period", &self.period)
            .field("in_a", &self.in_a)
            .finish()
    }
}

impl TraceSource for MixedPhase {
    fn next_instr(&mut self) -> Instr {
        self.emitted += 1;
        if self.emitted.is_multiple_of(self.period) {
            self.in_a = !self.in_a;
        }
        if self.in_a {
            self.a.next_instr()
        } else {
            let mut i = self.b.next_instr();
            i.pc += B_PC_OFFSET;
            i
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::pointer_chase::PointerChase;
    use crate::gen::stream::StreamSweep;

    #[test]
    fn phases_alternate() {
        let a = Box::new(PointerChase::new(1024, 0, 1));
        let b = Box::new(StreamSweep::new(1 << 16, 4, true, 1));
        let mut m = MixedPhase::new(a, b, 100);
        let mut first_phase_pcs = std::collections::HashSet::new();
        for _ in 0..99 {
            first_phase_pcs.insert(m.next_instr().pc);
        }
        let mut second_phase_pcs = std::collections::HashSet::new();
        for _ in 0..99 {
            second_phase_pcs.insert(m.next_instr().pc);
        }
        assert!(first_phase_pcs.is_disjoint(&second_phase_pcs));
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        let a = Box::new(PointerChase::new(64, 0, 1));
        let b = Box::new(PointerChase::new(64, 0, 2));
        let _ = MixedPhase::new(a, b, 0);
    }
}
