//! Instruction-trace model and synthetic workload generators.
//!
//! The paper evaluates Hermes on 110 ChampSim traces captured from SPEC
//! CPU2006/2017, PARSEC, Ligra, and CVP-2 workloads. Those traces are not
//! redistributable, so this crate provides the closest synthetic equivalent:
//! deterministic, seeded generators that reproduce the *memory-structure*
//! of each workload class — the property POPET, the prefetchers, and the
//! cache hierarchy actually respond to:
//!
//! * pointer chasing with >LLC working sets (`mcf`-like),
//! * linear streaming where every 16th 4-byte access opens a new line
//!   (`lbm`/STREAM-like; the motivating example for POPET's PC⊕byte-offset
//!   feature, §6.1.3),
//! * multi-array strided sweeps (`cactusADM`-like),
//! * CSR graph traversals with power-law reuse (Ligra BFS / PageRank /
//!   Components / Radii / Triangle),
//! * hash joins and branchy server mixes (CVP-like), and
//! * stencil / streaming-cluster kernels (PARSEC-like).
//!
//! Each generator is an infinite [`TraceSource`]; the simulator pulls
//! instructions one at a time. Generators use a small set of *static PCs*
//! with stable roles (the "neighbour gather" load always has the same PC),
//! because POPET's features correlate program counters with off-chip
//! behaviour.
//!
//! # Example
//!
//! ```
//! use hermes_trace::{suite, TraceSource};
//!
//! let spec = &suite::default_suite()[0];
//! let mut src = spec.build();
//! let instr = src.next_instr();
//! assert!(instr.pc != 0);
//! ```

pub mod file;
pub mod gen;
pub mod instr;
pub mod source;
pub mod suite;

pub use file::TraceFileSource;
pub use instr::{Branch, Instr, MemKind, MemOp, Reg};
pub use source::TraceSource;
pub use suite::{Category, WorkloadSpec};
