//! The simulated instruction format.
//!
//! Modeled after ChampSim's trace record, reduced to what the timing model
//! consumes: a program counter, up to two source registers, one destination
//! register, at most one memory operand, and branch outcome information.

use hermes_types::VirtAddr;

/// An architectural register name. The simulator models a flat file of
/// [`NUM_REGS`] registers; generators allocate them to express real data
/// dependencies (e.g. a pointer-chase load writes the register its own next
/// iteration reads).
pub type Reg = u8;

/// Number of architectural registers the trace format may reference.
pub const NUM_REGS: usize = 64;

/// Whether a memory operand reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// A demand load; occupies a load-queue entry and may go off-chip.
    Load,
    /// A store; occupies a store-queue entry and retires without waiting
    /// for the write to reach memory.
    Store,
}

/// A single memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Virtual address touched.
    pub vaddr: VirtAddr,
    /// Load or store.
    pub kind: MemKind,
}

/// Branch outcome information carried by the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branch {
    /// Ground-truth direction (what the program actually did).
    pub taken: bool,
}

/// One traced instruction.
///
/// # Example
///
/// ```
/// use hermes_trace::{Instr, MemKind};
/// use hermes_types::VirtAddr;
///
/// let ld = Instr::load(0x400_100, VirtAddr::new(0x7000_0000), Some(3), [Some(3), None]);
/// assert_eq!(ld.mem.unwrap().kind, MemKind::Load);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Source registers this instruction reads (None = unused slot).
    pub src_regs: [Option<Reg>; 2],
    /// Destination register written, if any.
    pub dst_reg: Option<Reg>,
    /// Memory operand, if any (at most one, like a RISC load/store).
    pub mem: Option<MemOp>,
    /// Branch outcome, if this is a conditional branch.
    pub branch: Option<Branch>,
    /// Execution latency in cycles once issued (ALU 1, MUL/FP 3–4).
    pub exec_latency: u8,
}

impl Instr {
    /// A plain ALU instruction.
    pub fn alu(pc: u64, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        Self {
            pc,
            src_regs: srcs,
            dst_reg: dst,
            mem: None,
            branch: None,
            exec_latency: 1,
        }
    }

    /// A longer-latency compute instruction (multiply / FP).
    pub fn fp(pc: u64, dst: Option<Reg>, srcs: [Option<Reg>; 2], latency: u8) -> Self {
        Self {
            pc,
            src_regs: srcs,
            dst_reg: dst,
            mem: None,
            branch: None,
            exec_latency: latency,
        }
    }

    /// A load from `vaddr` into `dst`, reading address registers `srcs`.
    pub fn load(pc: u64, vaddr: VirtAddr, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        Self {
            pc,
            src_regs: srcs,
            dst_reg: dst,
            mem: Some(MemOp {
                vaddr,
                kind: MemKind::Load,
            }),
            branch: None,
            exec_latency: 1,
        }
    }

    /// A store to `vaddr`, reading data/address registers `srcs`.
    pub fn store(pc: u64, vaddr: VirtAddr, srcs: [Option<Reg>; 2]) -> Self {
        Self {
            pc,
            src_regs: srcs,
            dst_reg: None,
            mem: Some(MemOp {
                vaddr,
                kind: MemKind::Store,
            }),
            branch: None,
            exec_latency: 1,
        }
    }

    /// A conditional branch with ground-truth direction `taken`, optionally
    /// conditioned on a source register.
    pub fn branch(pc: u64, taken: bool, src: Option<Reg>) -> Self {
        Self {
            pc,
            src_regs: [src, None],
            dst_reg: None,
            mem: None,
            branch: Some(Branch { taken }),
            exec_latency: 1,
        }
    }

    /// Whether this instruction is a demand load.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(
            self.mem,
            Some(MemOp {
                kind: MemKind::Load,
                ..
            })
        )
    }

    /// Whether this instruction is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(
            self.mem,
            Some(MemOp {
                kind: MemKind::Store,
                ..
            })
        )
    }

    /// Whether this instruction is a conditional branch.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.branch.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_types::VirtAddr;

    #[test]
    fn constructors_set_kinds() {
        let a = Instr::alu(0x10, Some(1), [Some(2), Some(3)]);
        assert!(!a.is_load() && !a.is_store() && !a.is_branch());

        let l = Instr::load(0x14, VirtAddr::new(0x1000), Some(4), [Some(1), None]);
        assert!(l.is_load() && !l.is_store());

        let s = Instr::store(0x18, VirtAddr::new(0x2000), [Some(4), Some(5)]);
        assert!(s.is_store() && !s.is_load());

        let b = Instr::branch(0x1c, true, Some(4));
        assert!(b.is_branch());
        assert!(b.branch.unwrap().taken);
    }

    #[test]
    fn fp_latency_carried() {
        let f = Instr::fp(0x20, Some(2), [Some(1), None], 4);
        assert_eq!(f.exec_latency, 4);
    }

    #[test]
    fn instr_is_small() {
        // The trace is the hottest producer in the simulator; keep the
        // record compact (fits in a cache line with room to spare).
        assert!(std::mem::size_of::<Instr>() <= 48);
    }
}
