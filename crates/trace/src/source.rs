//! The [`TraceSource`] abstraction: anything that can feed instructions to
//! a simulated core.

use crate::instr::Instr;

/// An infinite stream of instructions.
///
/// Generators loop forever (the simulator decides how many instructions to
/// warm up and measure, mirroring the paper's warmup/simulation split), so
/// `next_instr` never exhausts.
///
/// # Example
///
/// ```
/// use hermes_trace::{Instr, TraceSource};
///
/// /// A degenerate source: one ALU op forever.
/// struct Nop;
/// impl TraceSource for Nop {
///     fn next_instr(&mut self) -> Instr { Instr::alu(0x400000, None, [None, None]) }
///     fn name(&self) -> &str { "nop" }
/// }
/// let mut s = Nop;
/// assert_eq!(s.next_instr().pc, 0x400000);
/// ```
pub trait TraceSource {
    /// Produces the next instruction in program order.
    fn next_instr(&mut self) -> Instr;

    /// Human-readable name of the workload (used in reports).
    fn name(&self) -> &str;
}

impl TraceSource for Box<dyn TraceSource> {
    fn next_instr(&mut self) -> Instr {
        (**self).next_instr()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A [`TraceSource`] that replays a fixed vector of instructions in a loop.
///
/// Useful in tests and for replaying captured traces (see [`crate::file`]).
#[derive(Debug, Clone)]
pub struct VecSource {
    name: String,
    instrs: Vec<Instr>,
    pos: usize,
}

impl VecSource {
    /// Wraps a non-empty instruction vector.
    ///
    /// # Panics
    ///
    /// Panics if `instrs` is empty — an empty trace cannot feed a core.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        assert!(
            !instrs.is_empty(),
            "VecSource needs at least one instruction"
        );
        Self {
            name: name.into(),
            instrs,
            pos: 0,
        }
    }

    /// Number of distinct instructions before the trace wraps.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Always false: construction rejects empty traces.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl TraceSource for VecSource {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos];
        self.pos += 1;
        if self.pos == self.instrs.len() {
            self.pos = 0;
        }
        i
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_wraps() {
        let a = Instr::alu(1, None, [None, None]);
        let b = Instr::alu(2, None, [None, None]);
        let mut s = VecSource::new("t", vec![a, b]);
        assert_eq!(s.next_instr().pc, 1);
        assert_eq!(s.next_instr().pc, 2);
        assert_eq!(s.next_instr().pc, 1);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic]
    fn vec_source_rejects_empty() {
        let _ = VecSource::new("t", vec![]);
    }

    #[test]
    fn boxed_source_delegates() {
        let a = Instr::alu(7, None, [None, None]);
        let mut s: Box<dyn TraceSource> = Box::new(VecSource::new("boxed", vec![a]));
        assert_eq!(s.next_instr().pc, 7);
        assert_eq!(s.name(), "boxed");
    }
}
