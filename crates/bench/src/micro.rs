//! Fixed-iteration microbenchmarks of the simulator's per-cycle hot
//! paths, cheap enough to run inside `run_all` so their results ride the
//! tracked `BENCH_<n>.json` perf trajectory (the criterion benches in
//! `benches/` measure the same kernels with a proper harness, but CI
//! never archived their output — these numbers live in git history).
//!
//! Methodology: each kernel runs a fixed iteration count around
//! `std::time::Instant` with an untimed warmup pass. That is deliberately
//! simpler than criterion (no outlier rejection, single sample), which is
//! fine for a trajectory: regressions worth acting on are multiples, not
//! percents, and the fixed count keeps a run under ~100 ms total.

use std::hint::black_box;
use std::time::Instant;

use hermes::{LoadContext, OffChipPredictor, Popet};
use hermes_cache::{CacheArray, CacheConfig, ReplacementKind};
use hermes_cpu::port::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
use hermes_cpu::{Core, CoreConfig, CoreModel, OooConfig};
use hermes_ooo::OooCore;
use hermes_trace::source::VecSource;
use hermes_trace::Instr;
use hermes_types::{CoreId, Cycle, LineAddr, VirtAddr};

/// One microbenchmark measurement.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Kernel name (stable across runs; keys the trajectory).
    pub name: &'static str,
    /// Nanoseconds per operation (one predict+train, one cache access,
    /// one core cycle, ...).
    pub ns_per_op: f64,
}

fn time(name: &'static str, iters: u64, mut f: impl FnMut(u64)) -> MicroResult {
    // Untimed warmup: touch caches, fault in lazy state.
    for i in 0..iters / 10 {
        f(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    MicroResult {
        name,
        ns_per_op: start.elapsed().as_nanos() as f64 / iters as f64,
    }
}

/// POPET inference + training: the per-load predictor cost Hermes adds
/// to the issue path.
pub fn popet_predict_train() -> MicroResult {
    let mut popet = Popet::default();
    time("popet_predict_train", 200_000, |i| {
        let ctx = LoadContext::identity(0x400100 + (i % 16) * 4, VirtAddr::new(0x10_0000 + i * 64));
        let p = popet.predict(black_box(&ctx));
        popet.train(&ctx, &p, i.is_multiple_of(20));
        black_box(p.go_offchip);
    })
}

/// LLC array access+fill with SHiP replacement: the per-level cost of a
/// hierarchy lookup.
pub fn llc_access_fill() -> MicroResult {
    let cfg = CacheConfig::new("LLC", 3 << 20, 12, ReplacementKind::Ship, 64);
    let mut cache = CacheArray::new(&cfg);
    time("llc_access_fill_ship", 200_000, |i| {
        let line = LineAddr::new(i % 100_000);
        if !cache.access(black_box(line), (i % 4096) as u16).hit {
            cache.fill(line, false, false, (i % 4096) as u16);
        }
    })
}

/// Memory stub with a fixed on-chip-ish latency, so the core kernels
/// measure pipeline bookkeeping rather than memory modeling.
struct FixedLat {
    latency: Cycle,
    pending: Vec<(Cycle, u64)>,
}

impl MemoryPort for FixedLat {
    fn issue_load(&mut self, req: LoadIssue, now: Cycle) {
        self.pending.push((now + self.latency, req.token));
    }
    fn issue_store(&mut self, _req: StoreIssue, _now: Cycle) {}
}

/// An ALU/load/branch mix shaped like the suite's compute workloads.
fn mix() -> Vec<Instr> {
    vec![
        Instr::load(0x400000, VirtAddr::new(0x1000), Some(1), [None, None]),
        Instr::alu(0x400004, Some(2), [Some(1), None]),
        Instr::alu(0x400008, Some(3), [Some(2), None]),
        Instr::store(0x40000c, VirtAddr::new(0x2000), [Some(3), None]),
        Instr::branch(0x400010, true, Some(3)),
        Instr::alu(0x400014, Some(4), [None, None]),
    ]
}

/// One cycle of the legacy dependency-scheduled core on the mix.
pub fn legacy_core_cycle() -> MicroResult {
    let mut core = Core::new(
        0 as CoreId,
        CoreConfig::baseline(),
        Box::new(VecSource::new("mix", mix())),
    );
    let mut mem = FixedLat {
        latency: 30,
        pending: Vec::new(),
    };
    time("legacy_core_cycle", 200_000, |now| {
        deliver(&mut mem.pending, now, |tok| {
            core.finish_load(tok, now, ServedBy::L2)
        });
        core.tick(now, &mut mem);
    })
}

/// One cycle of the out-of-order ROB/RAT/RS/LSQ core on the same mix —
/// the trajectory line that makes the OoO model's per-cycle overhead
/// visible next to `legacy_core_cycle`.
pub fn ooo_core_cycle() -> MicroResult {
    let cfg = CoreConfig::baseline().with_model(CoreModel::OoO(OooConfig::baseline()));
    let mut core = OooCore::new(
        0 as CoreId,
        cfg,
        OooConfig::baseline(),
        Box::new(VecSource::new("mix", mix())),
    );
    let mut mem = FixedLat {
        latency: 30,
        pending: Vec::new(),
    };
    time("ooo_core_cycle", 200_000, |now| {
        deliver(&mut mem.pending, now, |tok| {
            core.finish_load(tok, now, ServedBy::L2)
        });
        core.tick(now, &mut mem);
    })
}

fn deliver(pending: &mut Vec<(Cycle, u64)>, now: Cycle, mut finish: impl FnMut(u64)) {
    let mut i = 0;
    while i < pending.len() {
        if pending[i].0 <= now {
            let (_, tok) = pending.swap_remove(i);
            finish(tok);
        } else {
            i += 1;
        }
    }
}

/// Runs every microbenchmark (order is the report order).
pub fn run_all_micro() -> Vec<MicroResult> {
    vec![
        popet_predict_train(),
        llc_access_fill(),
        legacy_core_cycle(),
        ooo_core_cycle(),
    ]
}

/// Renders results as a JSON array fragment (no trailing newline), e.g.
/// `[{"name": "popet_predict_train", "ns_per_op": 12.3}, ...]`.
pub fn to_json(results: &[MicroResult]) -> String {
    let mut s = String::from("[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"{}\", \"ns_per_op\": {:.1}}}",
            r.name, r.ns_per_op
        ));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_produce_positive_timings() {
        for r in run_all_micro() {
            assert!(r.ns_per_op > 0.0, "{} measured nothing", r.name);
            assert!(
                r.ns_per_op < 1_000_000.0,
                "{} implausibly slow: {} ns/op",
                r.name,
                r.ns_per_op
            );
        }
    }

    #[test]
    fn json_fragment_is_well_formed() {
        let out = to_json(&[
            MicroResult {
                name: "a",
                ns_per_op: 1.25,
            },
            MicroResult {
                name: "b",
                ns_per_op: 33.0,
            },
        ]);
        assert_eq!(
            out,
            "[{\"name\": \"a\", \"ns_per_op\": 1.2}, {\"name\": \"b\", \"ns_per_op\": 33.0}]"
        );
    }
}
