//! Shared harness for the experiment binaries.
//!
//! Every figure and table in the paper's evaluation has a binary in
//! `src/bin/` (`fig02` … `fig22`, `table3`, `table6`); `run_all` executes
//! everything and regenerates `EXPERIMENTS.md`. All binaries accept:
//!
//! * `--quick` — smaller instruction windows (CI-scale),
//! * `--full`  — the extended suite with longer windows,
//! * `--record` — write the rendered section to `target/experiments/`,
//! * `--jobs N` (or `HERMES_JOBS=N`) — simulation worker threads;
//!   defaults to all host cores, `--jobs 1` reproduces the historical
//!   serial behaviour byte-for-byte.
//!
//! # Execution flow
//!
//! Since PR 2 the binaries do not run simulations directly: they submit
//! `(configuration, trace, window)` batches to the [`hermes_exec`]
//! engine, which deduplicates points sharing a cache key, spreads the
//! unique ones over a work-stealing thread pool, and returns results in
//! input order (so tables are identical at any `--jobs` level). The
//! engine also owns the on-disk result cache — versioned under
//! `target/expcache/v<N>/` and guarded by lock files, so concurrent
//! binaries (and `run_all`'s children) share it safely — and every
//! [`emit`] call writes a machine-readable run manifest to
//! `target/experiments/<id>.json` with per-point wall time and cache
//! provenance.
//!
//! Harness entry points, in decreasing granularity:
//!
//! * [`run_suite`] — one configuration across the whole suite, in
//!   parallel;
//! * [`prewarm`] — batch-simulate an arbitrary `(tag, config, workload)`
//!   grid up front so that a binary's existing per-point logic turns
//!   into pure cache reads (used by the sweep figures);
//! * [`run_cached`] — a single point (hits the warm cache in the common
//!   case).

pub mod micro;

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use hermes::{HermesConfig, PredictorKind};
use hermes_exec::{Engine, Job, Manifest, Outcome};
use hermes_sim::SystemConfig;
use hermes_trace::{suite, Category, WorkloadSpec};

pub use hermes_exec::{RunLite, CACHE_SCHEMA_VERSION};
pub use hermes_sim::report::{category_geomeans, category_means, f3, pct, speedup, Table};

/// Simulation scale selected on the command line.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub instr: u64,
    /// Workloads to sweep.
    pub suite: Vec<WorkloadSpec>,
    /// Whether to write the section under `target/experiments/`.
    pub record: bool,
    /// Number of traces used for expensive (multi-core / multi-point)
    /// sweeps.
    pub sweep_traces: usize,
    /// Simulation worker threads (`--jobs` / `HERMES_JOBS`; defaults to
    /// all host cores).
    pub jobs: usize,
}

impl Scale {
    /// Parses `--quick` / `--full` / `--record` / `--jobs N` from
    /// `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let full = args.iter().any(|a| a == "--full");
        let record = args.iter().any(|a| a == "--record");
        let jobs = hermes_exec::jobs_from_env(parse_jobs_flag(&args));
        epoch(); // anchor process wall time for manifests
        if full {
            Scale {
                warmup: 50_000,
                instr: 250_000,
                suite: suite::full_suite(),
                record,
                sweep_traces: 16,
                jobs,
            }
        } else if quick {
            Scale {
                warmup: 10_000,
                instr: 40_000,
                suite: suite::default_suite(),
                record,
                sweep_traces: 6,
                jobs,
            }
        } else {
            Scale {
                warmup: 20_000,
                instr: 100_000,
                suite: suite::default_suite(),
                record,
                sweep_traces: 8,
                jobs,
            }
        }
    }

    /// A subsample of the suite for expensive sweeps, keeping category
    /// diversity (round-robin across categories).
    pub fn sweep_suite(&self) -> Vec<WorkloadSpec> {
        let mut by_cat: Vec<Vec<&WorkloadSpec>> = Category::ALL
            .iter()
            .map(|c| self.suite.iter().filter(|w| w.category == *c).collect())
            .collect();
        let mut out = Vec::new();
        let mut i = 0;
        while out.len() < self.sweep_traces.min(self.suite.len()) {
            let cat = i % by_cat.len();
            if let Some(w) = by_cat[cat].pop() {
                out.push(w.clone());
            }
            i += 1;
            if by_cat.iter().all(|v| v.is_empty()) {
                break;
            }
        }
        out
    }

    fn job(&self, tag: &str, cfg: &SystemConfig, spec: &WorkloadSpec) -> Job {
        Job::new(tag, cfg.clone(), spec.clone(), self.warmup, self.instr)
    }
}

/// Extracts `--jobs N` / `--jobs=N` from raw args (`None` if absent).
///
/// An unusable value (not a number, or zero) warns on stderr and is then
/// ignored — falling through to `HERMES_JOBS` / all cores — rather than
/// silently doing the opposite of a throttling request.
fn parse_jobs_flag(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    let mut jobs = None;
    while let Some(a) = it.next() {
        let raw = if a == "--jobs" {
            Some(it.next().map(String::as_str).unwrap_or(""))
        } else {
            a.strip_prefix("--jobs=")
        };
        if let Some(raw) = raw {
            jobs = match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => {
                    eprintln!(
                        "warning: ignoring invalid --jobs value {raw:?} \
                         (want an integer >= 1); using HERMES_JOBS or all cores"
                    );
                    None
                }
            };
        }
    }
    jobs
}

/// The process-wide engine, created on first use with the scale's worker
/// count (one engine per binary invocation).
fn engine(scale: &Scale) -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| Engine::new(scale.jobs))
}

/// Process start anchor for manifest wall times.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Engine outcomes accumulated since the last [`emit`], for the manifest.
fn outcome_log() -> &'static Mutex<Vec<Outcome>> {
    static LOG: OnceLock<Mutex<Vec<Outcome>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_outcomes(outs: &[Outcome]) {
    outcome_log()
        .lock()
        .expect("outcome log poisoned")
        .extend_from_slice(outs);
}

/// Runs one (configuration, workload) point with on-disk caching.
///
/// `tag` must uniquely describe the configuration (e.g.
/// `"pythia+hermesO-popet"`); it becomes part of the cache key together
/// with the trace name and window.
pub fn run_cached(tag: &str, cfg: &SystemConfig, spec: &WorkloadSpec, scale: &Scale) -> RunLite {
    let outs = engine(scale).run_batch(std::slice::from_ref(&scale.job(tag, cfg, spec)));
    record_outcomes(&outs);
    outs.into_iter().next().expect("one job in, one out").result
}

/// Runs a configuration across the whole suite — in parallel across
/// `scale.jobs` workers — and returns (spec, result) in suite order.
pub fn run_suite(tag: &str, cfg: &SystemConfig, scale: &Scale) -> Vec<(WorkloadSpec, RunLite)> {
    let jobs: Vec<Job> = scale
        .suite
        .iter()
        .map(|spec| scale.job(tag, cfg, spec))
        .collect();
    let outs = engine(scale).run_batch(&jobs);
    record_outcomes(&outs);
    scale
        .suite
        .iter()
        .cloned()
        .zip(outs.into_iter().map(|o| o.result))
        .collect()
}

/// Batch-simulates an arbitrary `(tag, config, workload)` grid, warming
/// the cache so subsequent [`run_cached`] calls are pure reads.
///
/// Sweep binaries build their whole grid up front, `prewarm` it (the
/// engine dedups shared baselines and fans out across workers), and then
/// keep their original per-point logic unchanged — output stays
/// byte-identical to the serial version at every `--jobs` level.
pub fn prewarm(points: Vec<(String, SystemConfig, WorkloadSpec)>, scale: &Scale) {
    let jobs: Vec<Job> = points
        .into_iter()
        .map(|(tag, cfg, spec)| Job::new(tag, cfg, spec, scale.warmup, scale.instr))
        .collect();
    let outs = engine(scale).run_batch(&jobs);
    record_outcomes(&outs);
}

/// Cross product helper for [`prewarm`]: every configuration × every
/// workload.
pub fn cross(
    points: &[(String, SystemConfig)],
    specs: &[WorkloadSpec],
) -> Vec<(String, SystemConfig, WorkloadSpec)> {
    points
        .iter()
        .flat_map(|(tag, cfg)| {
            specs
                .iter()
                .map(move |spec| (tag.clone(), cfg.clone(), spec.clone()))
        })
        .collect()
}

/// Standard named configurations used across many figures.
pub mod configs {
    use super::*;
    use hermes_prefetch::PrefetcherKind;

    /// (tag, config) for the no-prefetching normalisation baseline.
    pub fn nopf() -> (&'static str, SystemConfig) {
        (
            "nopf",
            SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
        )
    }

    /// The Table 4 baseline (Pythia, no Hermes).
    pub fn pythia() -> (&'static str, SystemConfig) {
        ("pythia", SystemConfig::baseline_1c())
    }

    /// Pythia + Hermes variant with the given predictor.
    pub fn pythia_hermes(variant: char, pred: PredictorKind) -> (String, SystemConfig) {
        let hermes = match variant {
            'o' => HermesConfig::hermes_o(pred),
            'p' => HermesConfig::hermes_p(pred),
            _ => panic!("variant must be 'o' or 'p'"),
        };
        (
            format!("pythia+hermes{}-{}", variant, pred.label()),
            SystemConfig::baseline_1c().with_hermes(hermes),
        )
    }

    /// Hermes alone (no prefetcher).
    pub fn hermes_alone(variant: char, pred: PredictorKind) -> (String, SystemConfig) {
        let (tag, cfg) = pythia_hermes(variant, pred);
        (
            format!("{}-alone", tag),
            cfg.with_prefetcher(PrefetcherKind::None),
        )
    }
}

/// Computes per-workload speedups of `x` over `base` (Eq. 2), paired with
/// categories for aggregation.
pub fn speedups(
    base: &[(WorkloadSpec, RunLite)],
    x: &[(WorkloadSpec, RunLite)],
) -> Vec<(Category, f64)> {
    base.iter()
        .zip(x)
        .map(|((spec, b), (_, v))| (spec.category, speedup(v.ipc, b.ipc)))
        .collect()
}

/// Renders a figure section: prints to stdout, optionally records it
/// under `target/experiments/<id>.md`, and always writes the JSON run
/// manifest `target/experiments/<id>.json` covering every simulation
/// point obtained since the previous `emit`.
pub fn emit(id: &str, title: &str, body: &str, scale: &Scale) {
    let section = format!("## {id}: {title}\n\n{body}\n");
    println!("{section}");
    let dir = PathBuf::from("target/experiments");
    if scale.record {
        let _ = fs::create_dir_all(&dir);
        let _ = fs::write(dir.join(format!("{id}.md")), section);
    }
    let outs = std::mem::take(&mut *outcome_log().lock().expect("outcome log poisoned"));
    let manifest = Manifest::from_outcomes(id, scale.jobs, epoch().elapsed(), &outs);
    match manifest.write(&dir) {
        Ok(path) => eprintln!(
            "  manifest: {} ({})",
            path.display(),
            manifest.summary_line()
        ),
        Err(e) => eprintln!("warning: failed to write manifest for {id}: {e}"),
    }
}

/// Builds a markdown table of per-category geomean speedups, one row per
/// configuration — the standard shape of the paper's bar figures.
pub fn speedup_table(rows: &[(String, Vec<(Category, f64)>)]) -> String {
    let mut headers = vec!["config".to_string()];
    if let Some((_, first)) = rows.first() {
        for (name, _) in category_geomeans(first) {
            headers.push(name);
        }
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    for (label, samples) in rows {
        let mut cells = vec![label.clone()];
        for (_, v) in category_geomeans(samples) {
            cells.push(f3(v));
        }
        t.row(&cells);
    }
    t.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_suite_spans_categories() {
        let scale = Scale {
            warmup: 1,
            instr: 1,
            suite: suite::default_suite(),
            record: false,
            sweep_traces: 5,
            jobs: 1,
        };
        let sub = scale.sweep_suite();
        assert_eq!(sub.len(), 5);
        let cats: std::collections::HashSet<_> = sub.iter().map(|w| w.category).collect();
        assert_eq!(cats.len(), 5, "sweep subsample must span all categories");
    }

    #[test]
    fn config_tags_unique() {
        use hermes::PredictorKind::*;
        let tags: Vec<String> = vec![
            configs::nopf().0.to_string(),
            configs::pythia().0.to_string(),
            configs::pythia_hermes('o', Popet).0,
            configs::pythia_hermes('p', Popet).0,
            configs::pythia_hermes('o', Hmp).0,
            configs::pythia_hermes('o', Ttp).0,
            configs::pythia_hermes('o', Ideal).0,
            configs::hermes_alone('o', Popet).0,
        ];
        let set: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(set.len(), tags.len());
    }

    #[test]
    fn jobs_flag_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_jobs_flag(&args(&["bin", "--jobs", "4"])), Some(4));
        assert_eq!(parse_jobs_flag(&args(&["bin", "--jobs=7"])), Some(7));
        assert_eq!(parse_jobs_flag(&args(&["bin", "--quick"])), None);
        assert_eq!(parse_jobs_flag(&args(&["bin", "--jobs", "bogus"])), None);
    }

    #[test]
    fn cross_builds_full_grid() {
        let specs = suite::smoke_suite();
        let points = vec![
            ("a".to_string(), SystemConfig::baseline_1c()),
            ("b".to_string(), SystemConfig::baseline_1c()),
        ];
        let grid = cross(&points, &specs);
        assert_eq!(grid.len(), 2 * specs.len());
        assert_eq!(grid[0].0, "a");
        assert_eq!(grid[specs.len()].0, "b");
    }
}
