//! Shared harness for the experiment binaries.
//!
//! Every figure and table in the paper's evaluation has a binary in
//! `src/bin/` (`fig02` … `fig22`, `table3`, `table6`); `run_all` executes
//! everything and regenerates `EXPERIMENTS.md`. All binaries accept:
//!
//! * `--quick` — smaller instruction windows (CI-scale),
//! * `--full`  — the extended suite with longer windows,
//! * `--record` — write the rendered section to `target/experiments/`.
//!
//! Results of individual (configuration, trace) simulations are cached in
//! `target/expcache/` keyed by configuration tag, trace name, and window,
//! so figures sharing baselines (most of them) do not re-simulate.

use std::fs;
use std::path::PathBuf;

use hermes::{HermesConfig, PredictorKind};
use hermes_sim::{system::run_one, RunStats, SystemConfig};
use hermes_trace::{suite, Category, WorkloadSpec};

pub use hermes_sim::report::{category_geomeans, category_means, f3, pct, speedup, Table};

/// Simulation scale selected on the command line.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub instr: u64,
    /// Workloads to sweep.
    pub suite: Vec<WorkloadSpec>,
    /// Whether to write the section under `target/experiments/`.
    pub record: bool,
    /// Number of traces used for expensive (multi-core / multi-point)
    /// sweeps.
    pub sweep_traces: usize,
}

impl Scale {
    /// Parses `--quick` / `--full` / `--record` from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let full = args.iter().any(|a| a == "--full");
        let record = args.iter().any(|a| a == "--record");
        if full {
            Scale {
                warmup: 50_000,
                instr: 250_000,
                suite: suite::full_suite(),
                record,
                sweep_traces: 16,
            }
        } else if quick {
            Scale {
                warmup: 10_000,
                instr: 40_000,
                suite: suite::default_suite(),
                record,
                sweep_traces: 6,
            }
        } else {
            Scale {
                warmup: 20_000,
                instr: 100_000,
                suite: suite::default_suite(),
                record,
                sweep_traces: 8,
            }
        }
    }

    /// A subsample of the suite for expensive sweeps, keeping category
    /// diversity (round-robin across categories).
    pub fn sweep_suite(&self) -> Vec<WorkloadSpec> {
        let mut by_cat: Vec<Vec<&WorkloadSpec>> = Category::ALL
            .iter()
            .map(|c| self.suite.iter().filter(|w| w.category == *c).collect())
            .collect();
        let mut out = Vec::new();
        let mut i = 0;
        while out.len() < self.sweep_traces.min(self.suite.len()) {
            let cat = i % by_cat.len();
            if let Some(w) = by_cat[cat].pop() {
                out.push(w.clone());
            }
            i += 1;
            if by_cat.iter().all(|v| v.is_empty()) {
                break;
            }
        }
        out
    }
}

/// Flat, cacheable per-run measurement record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunLite {
    /// Instructions per cycle (core 0 for single-core runs; arithmetic
    /// mean across cores for multi-core runs).
    pub ipc: f64,
    /// LLC demand misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Fraction of loads served off-chip.
    pub offchip_rate: f64,
    /// Off-chip predictor accuracy (Eq. 3).
    pub accuracy: f64,
    /// Off-chip predictor coverage (Eq. 4).
    pub coverage: f64,
    /// Total main-memory requests (reads + writes).
    pub mm_requests: f64,
    /// ROB stall cycles attributed to off-chip loads.
    pub stall_offchip: f64,
    /// Off-chip loads that blocked retirement.
    pub blocking: f64,
    /// Off-chip loads that never blocked retirement.
    pub nonblocking: f64,
    /// Average stall cycles per off-chip load.
    pub stalls_per_offchip: f64,
    /// Average on-chip (hierarchy) portion of an off-chip load's latency.
    pub onchip_portion: f64,
    /// Average total off-chip load latency.
    pub offchip_latency: f64,
    /// Dynamic energy total (power model).
    pub energy: f64,
    /// Dynamic energy in the DRAM/bus component.
    pub energy_bus: f64,
    /// Dynamic energy in L1/L2/LLC.
    pub energy_caches: f64,
    /// Dynamic energy in predictor + prefetcher metadata.
    pub energy_meta: f64,
    /// Measured cycles.
    pub cycles: f64,
}

impl RunLite {
    /// Extracts the record from full run statistics.
    pub fn from_stats(r: &RunStats) -> Self {
        let n = r.cores.len() as f64;
        let mean = |f: &dyn Fn(&hermes_sim::stats::CoreRunStats) -> f64| {
            r.cores.iter().map(f).sum::<f64>() / n
        };
        let p = r.pred_total();
        Self {
            ipc: mean(&|c| c.ipc()),
            llc_mpki: mean(&|c| c.llc_mpki()),
            offchip_rate: mean(&|c| c.offchip_rate()),
            accuracy: p.accuracy(),
            coverage: p.coverage(),
            mm_requests: r.main_memory_requests() as f64,
            stall_offchip: mean(&|c| c.core.stall_cycles_offchip as f64),
            blocking: mean(&|c| c.core.offchip_blocking as f64),
            nonblocking: mean(&|c| c.core.offchip_nonblocking as f64),
            stalls_per_offchip: mean(&|c| c.core.stalls_per_offchip_load()),
            onchip_portion: mean(&|c| c.avg_onchip_portion()),
            offchip_latency: mean(&|c| c.avg_offchip_latency()),
            energy: r.power.total(),
            energy_bus: r.power.bus,
            energy_caches: r.power.l1 + r.power.l2 + r.power.llc,
            energy_meta: r.power.predictor + r.power.prefetcher,
            cycles: r.total_cycles as f64,
        }
    }

    fn to_kv(&self) -> String {
        format!(
            "ipc={}\nllc_mpki={}\noffchip_rate={}\naccuracy={}\ncoverage={}\nmm_requests={}\nstall_offchip={}\nblocking={}\nnonblocking={}\nstalls_per_offchip={}\nonchip_portion={}\noffchip_latency={}\nenergy={}\nenergy_bus={}\nenergy_caches={}\nenergy_meta={}\ncycles={}\n",
            self.ipc, self.llc_mpki, self.offchip_rate, self.accuracy, self.coverage,
            self.mm_requests, self.stall_offchip, self.blocking, self.nonblocking,
            self.stalls_per_offchip, self.onchip_portion, self.offchip_latency,
            self.energy, self.energy_bus, self.energy_caches, self.energy_meta, self.cycles,
        )
    }

    fn from_kv(s: &str) -> Option<Self> {
        let mut r = RunLite::default();
        let mut keys = 0;
        for line in s.lines() {
            let (k, v) = line.split_once('=')?;
            let v: f64 = v.parse().ok()?;
            match k {
                "ipc" => r.ipc = v,
                "llc_mpki" => r.llc_mpki = v,
                "offchip_rate" => r.offchip_rate = v,
                "accuracy" => r.accuracy = v,
                "coverage" => r.coverage = v,
                "mm_requests" => r.mm_requests = v,
                "stall_offchip" => r.stall_offchip = v,
                "blocking" => r.blocking = v,
                "nonblocking" => r.nonblocking = v,
                "stalls_per_offchip" => r.stalls_per_offchip = v,
                "onchip_portion" => r.onchip_portion = v,
                "offchip_latency" => r.offchip_latency = v,
                "energy" => r.energy = v,
                "energy_bus" => r.energy_bus = v,
                "energy_caches" => r.energy_caches = v,
                "energy_meta" => r.energy_meta = v,
                "cycles" => r.cycles = v,
                _ => return None,
            }
            keys += 1;
        }
        // A truncated or empty file (e.g. from an interrupted writer) must
        // be treated as a miss, not as an all-zero record.
        if keys == 17 && r.cycles > 0.0 {
            Some(r)
        } else {
            None
        }
    }
}

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from("target/expcache");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Runs one (configuration, workload) point with on-disk caching.
///
/// `tag` must uniquely describe the configuration (e.g.
/// `"pythia+hermesO-popet"`); it becomes part of the cache key together
/// with the trace name and window.
pub fn run_cached(tag: &str, cfg: &SystemConfig, spec: &WorkloadSpec, scale: &Scale) -> RunLite {
    let file = cache_dir().join(format!(
        "{}__{}__{}_{}_{}c.kv",
        tag.replace(['/', ' '], "_"),
        spec.name,
        scale.warmup,
        scale.instr,
        cfg.cores
    ));
    if let Ok(s) = fs::read_to_string(&file) {
        if let Some(r) = RunLite::from_kv(&s) {
            return r;
        }
    }
    eprintln!("  sim: {} x {} ...", tag, spec.name);
    let stats = run_one(cfg.clone(), spec, scale.warmup, scale.instr);
    let lite = RunLite::from_stats(&stats);
    let tmp = file.with_extension("kv.tmp");
    if fs::write(&tmp, lite.to_kv()).is_ok() {
        let _ = fs::rename(&tmp, &file);
    }
    lite
}

/// Runs a configuration across the whole suite; returns (spec, result).
pub fn run_suite(tag: &str, cfg: &SystemConfig, scale: &Scale) -> Vec<(WorkloadSpec, RunLite)> {
    scale
        .suite
        .iter()
        .map(|spec| (spec.clone(), run_cached(tag, cfg, spec, scale)))
        .collect()
}

/// Standard named configurations used across many figures.
pub mod configs {
    use super::*;
    use hermes_prefetch::PrefetcherKind;

    /// (tag, config) for the no-prefetching normalisation baseline.
    pub fn nopf() -> (&'static str, SystemConfig) {
        (
            "nopf",
            SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
        )
    }

    /// The Table 4 baseline (Pythia, no Hermes).
    pub fn pythia() -> (&'static str, SystemConfig) {
        ("pythia", SystemConfig::baseline_1c())
    }

    /// Pythia + Hermes variant with the given predictor.
    pub fn pythia_hermes(variant: char, pred: PredictorKind) -> (String, SystemConfig) {
        let hermes = match variant {
            'o' => HermesConfig::hermes_o(pred),
            'p' => HermesConfig::hermes_p(pred),
            _ => panic!("variant must be 'o' or 'p'"),
        };
        (
            format!("pythia+hermes{}-{}", variant, pred.label()),
            SystemConfig::baseline_1c().with_hermes(hermes),
        )
    }

    /// Hermes alone (no prefetcher).
    pub fn hermes_alone(variant: char, pred: PredictorKind) -> (String, SystemConfig) {
        let (tag, cfg) = pythia_hermes(variant, pred);
        (
            format!("{}-alone", tag),
            cfg.with_prefetcher(PrefetcherKind::None),
        )
    }
}

/// Computes per-workload speedups of `x` over `base` (Eq. 2), paired with
/// categories for aggregation.
pub fn speedups(
    base: &[(WorkloadSpec, RunLite)],
    x: &[(WorkloadSpec, RunLite)],
) -> Vec<(Category, f64)> {
    base.iter()
        .zip(x)
        .map(|((spec, b), (_, v))| (spec.category, speedup(v.ipc, b.ipc)))
        .collect()
}

/// Renders a figure section: prints to stdout and optionally records it
/// under `target/experiments/<id>.md`.
pub fn emit(id: &str, title: &str, body: &str, scale: &Scale) {
    let section = format!("## {id}: {title}\n\n{body}\n");
    println!("{section}");
    if scale.record {
        let dir = PathBuf::from("target/experiments");
        let _ = fs::create_dir_all(&dir);
        let _ = fs::write(dir.join(format!("{id}.md")), section);
    }
}

/// Builds a markdown table of per-category geomean speedups, one row per
/// configuration — the standard shape of the paper's bar figures.
pub fn speedup_table(rows: &[(String, Vec<(Category, f64)>)]) -> String {
    let mut headers = vec!["config".to_string()];
    if let Some((_, first)) = rows.first() {
        for (name, _) in category_geomeans(first) {
            headers.push(name);
        }
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);
    for (label, samples) in rows {
        let mut cells = vec![label.clone()];
        for (_, v) in category_geomeans(samples) {
            cells.push(f3(v));
        }
        t.row(&cells);
    }
    t.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runlite_kv_round_trip() {
        let r = RunLite {
            ipc: 1.25,
            llc_mpki: 7.5,
            accuracy: 0.77,
            cycles: 123.0,
            ..Default::default()
        };
        let back = RunLite::from_kv(&r.to_kv()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn kv_rejects_garbage() {
        assert!(RunLite::from_kv("bogus=1\n").is_none());
        assert!(RunLite::from_kv("ipc=notanumber\n").is_none());
        assert!(
            RunLite::from_kv("").is_none(),
            "empty file must be a cache miss"
        );
        assert!(
            RunLite::from_kv("ipc=1.0\n").is_none(),
            "partial file must be a cache miss"
        );
    }

    #[test]
    fn sweep_suite_spans_categories() {
        let scale = Scale {
            warmup: 1,
            instr: 1,
            suite: suite::default_suite(),
            record: false,
            sweep_traces: 5,
        };
        let sub = scale.sweep_suite();
        assert_eq!(sub.len(), 5);
        let cats: std::collections::HashSet<_> = sub.iter().map(|w| w.category).collect();
        assert_eq!(cats.len(), 5, "sweep subsample must span all categories");
    }

    #[test]
    fn config_tags_unique() {
        use hermes::PredictorKind::*;
        let tags: Vec<String> = vec![
            configs::nopf().0.to_string(),
            configs::pythia().0.to_string(),
            configs::pythia_hermes('o', Popet).0,
            configs::pythia_hermes('p', Popet).0,
            configs::pythia_hermes('o', Hmp).0,
            configs::pythia_hermes('o', Ttp).0,
            configs::pythia_hermes('o', Ideal).0,
            configs::hermes_alone('o', Popet).0,
        ];
        let set: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(set.len(), tags.len());
    }
}
