//! Fig. 20 (Appendix B.2) — sensitivity to LLC size (3 → 24 MB per core).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{cross, emit, f3, prewarm, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

/// One LLC-size point's configurations, in `[baseline, Hermes-alone,
/// Pythia, Pythia+Hermes-O]` order. Single source for both the prewarm
/// grid and the measurement loop, so the tags can't drift apart.
fn point_cfgs(mb: u64) -> [(String, SystemConfig); 4] {
    let size = mb << 20;
    let nopf = SystemConfig::baseline_1c()
        .with_llc_size(size)
        .with_prefetcher(PrefetcherKind::None);
    [
        (format!("llc{mb}-nopf"), nopf.clone()),
        (
            format!("llc{mb}-hermes-alone"),
            nopf.with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
        (
            format!("llc{mb}-pythia"),
            SystemConfig::baseline_1c().with_llc_size(size),
        ),
        (
            format!("llc{mb}-pythia+hermesO"),
            SystemConfig::baseline_1c()
                .with_llc_size(size)
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ]
}

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();

    let mbs = [3u64, 6, 12, 24];

    // Batch-simulate the whole LLC-size sweep before the measurement loop.
    let grid: Vec<(String, SystemConfig)> = mbs.iter().flat_map(|&mb| point_cfgs(mb)).collect();
    prewarm(cross(&grid, &subsuite), &scale);

    let mut t = Table::new(&[
        "LLC MB/core",
        "Hermes-O",
        "Pythia",
        "Pythia+Hermes-O",
        "Hermes gain",
    ]);
    let mut gains = Vec::new();
    for mb in mbs {
        let [base, hermes_alone, pythia, combo] = point_cfgs(mb);
        let sp = |(tag, cfg): &(String, SystemConfig)| -> f64 {
            let v: Vec<f64> = subsuite
                .iter()
                .map(|spec| {
                    let b = run_cached(&base.0, &base.1, spec, &scale);
                    run_cached(tag, cfg, spec, &scale).ipc / b.ipc
                })
                .collect();
            geomean(&v)
        };
        let h = sp(&hermes_alone);
        let p = sp(&pythia);
        let c = sp(&combo);
        gains.push(c / p - 1.0);
        t.row(&[
            mb.to_string(),
            f3(h),
            f3(p),
            f3(c),
            format!("{:+.1}%", (c / p - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Hermes' gain over Pythia: {:+.1}% at 3 MB vs {:+.1}% at 24 MB (paper: +5.4% shrinking to +1.3%). Note: at this window scale the working sets touched stay well above even the 24 MB LLC, so the shrink is weaker than at paper scale where footprints begin to fit.",
        gains[0] * 100.0,
        gains[3] * 100.0,
    );
    emit(
        "fig20",
        "Sensitivity to LLC size",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
