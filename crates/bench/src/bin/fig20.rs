//! Fig. 20 (Appendix B.2) — sensitivity to LLC size (3 → 24 MB per core).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();

    let mut t = Table::new(&[
        "LLC MB/core",
        "Hermes-O",
        "Pythia",
        "Pythia+Hermes-O",
        "Hermes gain",
    ]);
    let mut gains = Vec::new();
    for mb in [3u64, 6, 12, 24] {
        let size = mb << 20;
        let nopf = SystemConfig::baseline_1c()
            .with_llc_size(size)
            .with_prefetcher(PrefetcherKind::None);
        let sp = |tag: &str, cfg: &SystemConfig| -> f64 {
            let v: Vec<f64> = subsuite
                .iter()
                .map(|spec| {
                    let b = run_cached(&format!("llc{mb}-nopf"), &nopf, spec, &scale);
                    run_cached(&format!("llc{mb}-{tag}"), cfg, spec, &scale).ipc / b.ipc
                })
                .collect();
            geomean(&v)
        };
        let h = sp(
            "hermes-alone",
            &nopf
                .clone()
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        );
        let p = sp("pythia", &SystemConfig::baseline_1c().with_llc_size(size));
        let c = sp(
            "pythia+hermesO",
            &SystemConfig::baseline_1c()
                .with_llc_size(size)
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        );
        gains.push(c / p - 1.0);
        t.row(&[
            mb.to_string(),
            f3(h),
            f3(p),
            f3(c),
            format!("{:+.1}%", (c / p - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Hermes' gain over Pythia: {:+.1}% at 3 MB vs {:+.1}% at 24 MB (paper: +5.4% shrinking to +1.3%). Note: at this window scale the working sets touched stay well above even the 24 MB LLC, so the shrink is weaker than at paper scale where footprints begin to fit.",
        gains[0] * 100.0,
        gains[3] * 100.0,
    );
    emit(
        "fig20",
        "Sensitivity to LLC size",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
