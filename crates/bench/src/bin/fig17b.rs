//! Fig. 17b — Hermes combined with each baseline prefetcher (Pythia,
//! Bingo, SPP, MLOP, SMS): prefetcher alone vs +Hermes-P vs +Hermes-O.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{configs, emit, f3, run_suite, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);

    let mut t = Table::new(&[
        "prefetcher",
        "alone",
        "+Hermes-P",
        "+Hermes-O",
        "Hermes-O gain",
    ]);
    let mut all_positive = true;
    for pf in PrefetcherKind::PAPER_SET {
        let cfg = SystemConfig::baseline_1c().with_prefetcher(pf);
        let sp = |tag: &str, c: &SystemConfig| -> f64 {
            let runs = run_suite(tag, c, &scale);
            let v: Vec<f64> = base
                .iter()
                .zip(&runs)
                .map(|((_, b), (_, x))| x.ipc / b.ipc)
                .collect();
            geomean(&v)
        };
        let alone = sp(&format!("{}-only", pf.label()), &cfg);
        let p = sp(
            &format!("{}+hermesP", pf.label()),
            &cfg.clone()
                .with_hermes(HermesConfig::hermes_p(PredictorKind::Popet)),
        );
        let o = sp(
            &format!("{}+hermesO", pf.label()),
            &cfg.clone()
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        );
        if o < alone {
            all_positive = false;
        }
        t.row(&[
            pf.label().to_string(),
            f3(alone),
            f3(p),
            f3(o),
            format!("{:+.1}%", (o / alone - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Hermes-O on top of every prefetcher: {} (paper: consistent gains of +5.1%..+7.7% across Bingo/SPP/MLOP/SMS and +5.4% on Pythia).",
        if all_positive { "positive for all five" } else { "not uniformly positive at this scale" },
    );
    emit(
        "fig17b",
        "Hermes with different baseline prefetchers",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
