//! `sharing_sweep` — Hermes under genuine inter-core sharing, over the
//! directory-MESI coherence layer.
//!
//! Sweeps shared-access fraction × core count × {baseline, Hermes-O/
//! POPET} over the sharing suite (producer-consumer ring + shared-hot-set
//! server mix), every point with `SystemConfig::coherence` enabled — the
//! first experiment whose cores touch the *same* physical lines. The
//! trends under study: invalidation and dirty-intervention traffic grows
//! with the shared fraction and the core count; coherence misses are
//! *on-chip* events POPET must learn to separate from true off-chip
//! misses, so its accuracy — and Hermes's win — is squeezed exactly where
//! sharing is heaviest.
//!
//! Flags: the usual `--quick` / `--full` / `--record` / `--jobs N`, plus
//! `--smoke` — a CI-scale mode (2 cores, tiny windows, reduced grid)
//! proving nonzero invalidation traffic on every push.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_suite, speedup_table, speedups, Scale, Table};
use hermes_cache::CoherenceConfig;
use hermes_sim::SystemConfig;
use hermes_trace::suite;
use hermes_types::geomean;

fn main() {
    let mut scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (core_counts, fractions): (&[usize], &[u32]) = if smoke {
        scale.warmup = 2_000;
        scale.instr = 6_000;
        (&[2], &[0, 500])
    } else {
        (&[2, 4], &[0, 250, 500])
    };

    let mut t = Table::new(&[
        "cores",
        "shared",
        "inv/core",
        "fwd/core",
        "upg/core",
        "IPC base",
        "IPC +HermesO",
        "speedup",
    ]);
    let mut speedup_rows = Vec::new();
    for &cores in core_counts {
        for &frac in fractions {
            scale.suite = suite::sharing_suite(frac);
            let cfg = SystemConfig {
                cores,
                ..SystemConfig::baseline_1c()
            }
            .with_coherence(CoherenceConfig::baseline());
            let hermes_cfg = cfg
                .clone()
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
            let tag = format!("share{frac}-{cores}c");
            let base = run_suite(&format!("{tag}-base"), &cfg, &scale);
            let herm = run_suite(&format!("{tag}-hermesO-popet"), &hermes_cfg, &scale);
            let gm = |rs: &[(hermes_trace::WorkloadSpec, hermes_bench::RunLite)]| {
                geomean(&rs.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>())
            };
            let mean = |rs: &[(hermes_trace::WorkloadSpec, hermes_bench::RunLite)],
                        f: &dyn Fn(&hermes_bench::RunLite) -> f64| {
                rs.iter().map(|(_, r)| f(r)).sum::<f64>() / rs.len() as f64
            };
            let (ipc_b, ipc_h) = (gm(&base), gm(&herm));
            t.row(&[
                cores.to_string(),
                format!("{:.0}%", frac as f64 / 10.0),
                f3(mean(&base, &|r| r.coh_invalidations)),
                f3(mean(&base, &|r| r.coh_dirty_forwards)),
                f3(mean(&base, &|r| r.coh_upgrades)),
                f3(ipc_b),
                f3(ipc_h),
                f3(ipc_h / ipc_b),
            ]);
            speedup_rows.push((tag, speedups(&base, &herm)));
        }
    }

    let body = format!(
        "Sharing suite (producer-consumer ring + shared-hot-set mix), \
         {}+{} instructions/core, MESI coherence on (24-cycle directory \
         round trip), homogeneous mixes (the core index selects each \
         core's role/lane). `shared` is the hot-set shared-access \
         fraction; the ring is inherently 100% shared. Coherence columns \
         are per-core means over the baseline runs.\n\n{}\n\
         Per-category Hermes-O/POPET speedup by sharing point:\n\n{}\n\
         Reading: invalidations and dirty interventions rise with the \
         shared fraction and core count; they are on-chip misses POPET \
         must learn *not* to call off-chip, so Hermes's edge narrows as \
         sharing grows — the honest multi-core regime Fig. 13 of the \
         paper runs in.",
        scale.warmup,
        scale.instr,
        t.to_markdown(),
        speedup_table(&speedup_rows),
    );
    emit(
        "sharing_sweep",
        "Hermes under inter-core sharing (MESI coherence, shared fraction x cores)",
        &body,
        &scale,
    );
}
