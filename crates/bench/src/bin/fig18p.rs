//! Fig. 18 — runtime dynamic power of Hermes, Pythia, and the
//! combination, normalized to the no-prefetching system.

use hermes::PredictorKind;
use hermes_bench::{configs, emit, f3, run_suite, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);

    let named = [
        ("Hermes-O", configs::hermes_alone('o', PredictorKind::Popet)),
        ("Pythia", {
            let (t, c) = configs::pythia();
            (t.to_string(), c)
        }),
        (
            "Pythia + Hermes-O",
            configs::pythia_hermes('o', PredictorKind::Popet),
        ),
    ];
    let mut t = Table::new(&[
        "config",
        "normalized dynamic power",
        "bus/DRAM share",
        "caches share",
        "metadata share",
    ]);
    let mut summary_vals = Vec::new();
    for (label, (tag, cfg)) in named {
        let runs = run_suite(&tag, &cfg, &scale);
        // Normalized power = (energy / cycles) vs baseline, averaged.
        let ratios: Vec<f64> = base
            .iter()
            .zip(&runs)
            .map(|((_, b), (_, x))| (x.energy / x.cycles) / (b.energy / b.cycles))
            .collect();
        let p = hermes_types::mean(&ratios);
        summary_vals.push((label, p));
        let tot: f64 = runs.iter().map(|(_, r)| r.energy).sum();
        let bus: f64 = runs.iter().map(|(_, r)| r.energy_bus).sum();
        let caches: f64 = runs.iter().map(|(_, r)| r.energy_caches).sum();
        let meta: f64 = runs.iter().map(|(_, r)| r.energy_meta).sum();
        t.row(&[
            label.to_string(),
            f3(p),
            f3(bus / tot),
            f3(caches / tot),
            f3(meta / tot),
        ]);
    }
    let summary = format!(
        "Dynamic power over no-prefetching: Hermes {:+.1}%, Pythia {:+.1}%, both {:+.1}% (paper: +3.6%, +8.7%, +10.2%). Power here tracks (memory traffic)/(runtime): our suite is more memory-intensive than the paper's, so absolute deltas are larger; the per-performance cost ordering (Hermes cheaper per 1% speedup) is checked in fig15(b).",
        (summary_vals[0].1 - 1.0) * 100.0,
        (summary_vals[1].1 - 1.0) * 100.0,
        (summary_vals[2].1 - 1.0) * 100.0,
    );
    emit(
        "fig18p",
        "Normalized dynamic power",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
