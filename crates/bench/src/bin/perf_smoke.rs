//! `perf_smoke` — guard the per-cycle hot paths against regression.
//!
//! Runs the fixed-iteration microbenchmarks from `hermes_bench::micro`
//! (POPET inference, LLC lookup, one cycle of each core model) and
//! compares each kernel against the most recent tracked `BENCH_<n>.json`
//! at the repo root. A kernel more than 25% slower than its recorded
//! baseline fails the run; kernels with no baseline entry (newly added)
//! pass with a note. The tolerance is deliberately generous — the
//! baselines were recorded on a different machine than CI, so only
//! multiples matter — and can be widened via `PERF_SMOKE_TOLERANCE`
//! (a float multiplier, default `1.25`).
//!
//! Exit status: 0 when every kernel is within tolerance, 1 otherwise.

use std::fs;

/// Scrapes `{"name": "...", "ns_per_op": <f>}` pairs from the
/// `"microbench"` array of a `BENCH_<n>.json`. Same light-scrape
/// philosophy as `run_all`'s manifest reader: the writer is in-tree
/// with a fixed key order, so shape surprises degrade to an empty
/// baseline (which passes) rather than a parse error.
fn scrape_microbench(text: &str) -> Vec<(String, f64)> {
    let Some(section) = text.split("\"microbench\":").nth(1) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for frag in section.split("{\"name\": \"").skip(1) {
        let Some(name_end) = frag.find('"') else {
            continue;
        };
        let name = &frag[..name_end];
        let Some(v) = frag.split("\"ns_per_op\": ").nth(1) else {
            continue;
        };
        let end = v
            .find(|c: char| c != '.' && !c.is_ascii_digit())
            .unwrap_or(v.len());
        if let Ok(ns) = v[..end].parse::<f64>() {
            out.push((name.to_string(), ns));
        }
    }
    out
}

/// Path of the highest-numbered `BENCH_<n>.json` in the current
/// directory, if any.
fn latest_bench() -> Option<String> {
    (1u32..)
        .map(|n| format!("BENCH_{n}.json"))
        .take_while(|p| std::path::Path::new(p).exists())
        .last()
}

fn main() {
    let tolerance: f64 = std::env::var("PERF_SMOKE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.25);
    let baseline = match latest_bench() {
        Some(path) => {
            let text = fs::read_to_string(&path).unwrap_or_default();
            let b = scrape_microbench(&text);
            eprintln!("baseline: {path} ({} kernels)", b.len());
            b
        }
        None => {
            eprintln!("no tracked BENCH_<n>.json found; nothing to compare against");
            Vec::new()
        }
    };

    // Best-of-5: the micro harness takes one sample per kernel, which
    // on a noisy shared runner can swing 2x. The per-kernel minimum
    // across passes is the classic noise-robust estimator — a kernel
    // only fails when even its best pass is over tolerance.
    let mut best = hermes_bench::micro::run_all_micro();
    for _ in 0..4 {
        for (b, r) in best.iter_mut().zip(hermes_bench::micro::run_all_micro()) {
            assert_eq!(b.name, r.name, "kernel order must be stable");
            b.ns_per_op = b.ns_per_op.min(r.ns_per_op);
        }
    }

    let mut failed = false;
    for r in best {
        match baseline.iter().find(|(n, _)| n == r.name) {
            Some((_, base)) => {
                let ratio = r.ns_per_op / base;
                let verdict = if ratio > tolerance {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                eprintln!(
                    "  {:<24} {:>8.1} ns/op vs {:>8.1} baseline ({:>5.2}x) {}",
                    r.name, r.ns_per_op, base, ratio, verdict
                );
            }
            None => {
                eprintln!(
                    "  {:<24} {:>8.1} ns/op (no baseline entry; skipped)",
                    r.name, r.ns_per_op
                );
            }
        }
    }
    if failed {
        eprintln!(
            "perf smoke FAILED: hot-path kernel(s) >{:.0}% over baseline",
            (tolerance - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    eprintln!("perf smoke ok");
}

#[cfg(test)]
mod tests {
    use super::scrape_microbench;

    #[test]
    fn scraper_reads_the_run_all_writer_shape() {
        let bench = concat!(
            "{\n  \"experiments\": [\n",
            "    {\"name\": \"fig02\", \"ok\": true, \"wall_s\": 1.785, ",
            "\"sim_cycles\": 5940295, \"cycles_per_sec\": 3327867}\n",
            "  ],\n",
            "  \"microbench\": [{\"name\": \"popet_predict_train\", \"ns_per_op\": 62.4}, ",
            "{\"name\": \"llc_access_fill_ship\", \"ns_per_op\": 19.0}],\n",
            "  \"total_wall_s\": 714.4\n}\n",
        );
        assert_eq!(
            scrape_microbench(bench),
            vec![
                ("popet_predict_train".to_string(), 62.4),
                ("llc_access_fill_ship".to_string(), 19.0),
            ]
        );
        // Experiments entries must not leak into the baseline.
        assert!(scrape_microbench("{\"experiments\": []}").is_empty());
    }
}
