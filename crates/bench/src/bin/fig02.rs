//! Fig. 2 — distribution of ROB-blocking vs non-blocking off-chip loads
//! and LLC MPKI, in the no-prefetching system and with Pythia.

use hermes_bench::{configs, emit, f3, pct, run_suite, Scale, Table};
use hermes_trace::Category;

fn main() {
    let scale = Scale::from_args();
    let (t0, c0) = configs::nopf();
    let (t1, c1) = configs::pythia();
    let nopf = run_suite(t0, &c0, &scale);
    let pythia = run_suite(t1, &c1, &scale);

    let mut t = Table::new(&[
        "category",
        "config",
        "off-chip loads (vs no-pf)",
        "blocking share",
        "LLC MPKI",
    ]);
    for cat in Category::ALL {
        for (label, runs) in [("no-prefetching", &nopf), ("Pythia", &pythia)] {
            let rows: Vec<_> = runs.iter().filter(|(s, _)| s.category == cat).collect();
            if rows.is_empty() {
                continue;
            }
            let n = rows.len() as f64;
            let offchip: f64 = rows
                .iter()
                .map(|(_, r)| r.blocking + r.nonblocking)
                .sum::<f64>()
                / n;
            let base_off: f64 = nopf
                .iter()
                .filter(|(s, _)| s.category == cat)
                .map(|(_, r)| r.blocking + r.nonblocking)
                .sum::<f64>()
                / n;
            let blocking: f64 = rows.iter().map(|(_, r)| r.blocking).sum::<f64>() / n;
            let mpki: f64 = rows.iter().map(|(_, r)| r.llc_mpki).sum::<f64>() / n;
            t.row(&[
                cat.label().to_string(),
                label.to_string(),
                f3(offchip / base_off.max(1.0)),
                pct(blocking / offchip.max(1.0)),
                f3(mpki),
            ]);
        }
    }
    // Paper's headline numbers: Pythia removes ~half the off-chip loads;
    // ~71% of the remainder block retirement.
    let tot_nopf: f64 = nopf.iter().map(|(_, r)| r.blocking + r.nonblocking).sum();
    let tot_py: f64 = pythia.iter().map(|(_, r)| r.blocking + r.nonblocking).sum();
    let blk_py: f64 = pythia.iter().map(|(_, r)| r.blocking).sum();
    let summary = format!(
        "Pythia leaves {} of the no-prefetching system's off-chip loads; {} of the remaining off-chip loads block retirement (paper: ~50% and 71.4%).",
        pct(tot_py / tot_nopf.max(1.0)),
        pct(blk_py / tot_py.max(1.0)),
    );
    emit(
        "fig02",
        "Blocking vs non-blocking off-chip loads",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
