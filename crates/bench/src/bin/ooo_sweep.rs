//! `ooo_sweep` — how much of "Ideal Hermes" survives real MLP, by ROB
//! depth and LSQ size, on the cycle-driven out-of-order core.
//!
//! The legacy dependency-scheduled model resolves every load the moment
//! its operands are ready, so it overstates memory-level parallelism:
//! nothing ever waits for a reservation-station slot or a load-queue
//! entry. The OoO model (`hermes-ooo`) makes the window explicit —
//! ROB/RAT/RS/LSQ with per-cycle wakeup/select — which means hiding
//! off-chip latency now costs real window occupancy. Two axes:
//!
//! * **ROB depth** (64…512, LQ/SQ at baseline): baseline, Hermes-O/POPET
//!   and Ideal Hermes per depth — geomean IPC, speedups, fraction of the
//!   Ideal upside POPET captures, mean ROB occupancy, store-to-load
//!   forwards.
//! * **LSQ pressure** (ROB pinned at 256, LQ/SQ swept together from
//!   starved to baseline): when the load queue is the limiter, the core
//!   cannot keep enough loads in flight to hide DRAM no matter how deep
//!   the ROB is, and Hermes' early fire pays *more* — the request is in
//!   DRAM before the load even wins its LSQ slot.
//!
//! The sweep suite additionally carries a `spill-reload` workload
//! (`GenConfig::WriteReload`) whose every store is reloaded moments
//! later, so the LSQ axis exercises store-to-load forwarding and
//! store-queue pressure, not just load-queue depth.
//!
//! Flags: the usual `--quick` / `--full` / `--record` / `--jobs N`, plus
//! `--smoke` — a CI-scale mode (tiny windows, two points per axis).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_suite, RunLite, Scale, Table};
use hermes_cpu::{CoreModel, OooConfig};
use hermes_sim::SystemConfig;
use hermes_trace::suite::{Category, GenConfig};
use hermes_trace::WorkloadSpec;
use hermes_types::geomean;

fn main() {
    let mut scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (robs, lsqs): (&[usize], &[(usize, usize)]) = if smoke {
        scale.warmup = 2_000;
        scale.instr = 6_000;
        (&[128, 512], &[(16, 8), (128, 72)])
    } else {
        (
            &[64, 128, 256, 512],
            &[(16, 8), (32, 16), (64, 36), (128, 72)],
        )
    };
    scale.suite = scale.sweep_suite();
    // A spill/reload kernel: the one workload class that reloads
    // just-stored words, keeping `fwd loads` and store-queue pressure
    // honest on both axes.
    scale.suite.push(WorkloadSpec::new(
        "spill-reload",
        Category::Spec17,
        GenConfig::WriteReload { slots: 64, work: 2 },
        11,
    ));

    let gm = |rs: &[(WorkloadSpec, RunLite)]| {
        geomean(&rs.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>())
    };
    let mean = |rs: &[(WorkloadSpec, RunLite)], f: &dyn Fn(&RunLite) -> f64| {
        rs.iter().map(|(_, r)| f(r)).sum::<f64>() / rs.len() as f64
    };

    let mut t = Table::new(&[
        "ROB",
        "IPC base",
        "spd POPET",
        "spd Ideal",
        "% of Ideal",
        "ROB occ",
        "fwd loads",
    ]);
    let mut curve = Vec::new();
    for &rob in robs {
        let base_cfg = SystemConfig::baseline_1c()
            .with_rob(rob)
            .with_core_model(CoreModel::OoO(OooConfig::baseline()));
        let popet_cfg = base_cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let ideal_cfg = base_cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal));

        let tag = format!("ooo-rob{rob}");
        let base = run_suite(&format!("{tag}-base"), &base_cfg, &scale);
        let popet = run_suite(&format!("{tag}-hermesO-popet"), &popet_cfg, &scale);
        let ideal = run_suite(&format!("{tag}-hermesO-ideal"), &ideal_cfg, &scale);

        let ipc_b = gm(&base);
        let sp_p = gm(&popet) / ipc_b;
        let sp_i = gm(&ideal) / ipc_b;
        // Fraction of the Ideal *upside* POPET captures; degenerate when
        // Ideal itself gains nothing (tiny smoke windows), so clamp the
        // denominator away from zero.
        let frac = (sp_p - 1.0) / (sp_i - 1.0).max(1e-9);
        curve.push((rob, sp_p, sp_i));
        t.row(&[
            rob.to_string(),
            f3(ipc_b),
            f3(sp_p),
            f3(sp_i),
            format!("{:.0}%", frac * 100.0),
            f3(mean(&base, &|r| r.rob_occ_mean)),
            format!("{:.0}", mean(&base, &|r| r.forwarded_loads)),
        ]);
    }

    const LSQ_ROB: usize = 256;
    let mut lt = Table::new(&["LQ/SQ", "IPC base", "spd POPET", "lsq stalls", "fwd loads"]);
    let mut lsq_curve = Vec::new();
    for &(lq, sq) in lsqs {
        let base_cfg = SystemConfig::baseline_1c()
            .with_rob(LSQ_ROB)
            .with_lq(lq)
            .with_sq(sq)
            .with_core_model(CoreModel::OoO(OooConfig::baseline()));
        let popet_cfg = base_cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let tag = format!("ooo-lsq{lq}x{sq}");
        let base = run_suite(&format!("{tag}-base"), &base_cfg, &scale);
        let popet = run_suite(&format!("{tag}-hermesO-popet"), &popet_cfg, &scale);
        let ipc_b = gm(&base);
        let sp_p = gm(&popet) / ipc_b;
        lsq_curve.push((lq, sq, ipc_b, sp_p));
        lt.row(&[
            format!("{lq}/{sq}"),
            f3(ipc_b),
            f3(sp_p),
            format!("{:.0}", mean(&base, &|r| r.lsq_full_stalls)),
            format!("{:.0}", mean(&base, &|r| r.forwarded_loads)),
        ]);
    }

    let (first, last) = (curve[0], curve[curve.len() - 1]);
    let (lfirst, llast) = (lsq_curve[0], lsq_curve[lsq_curve.len() - 1]);
    let body = format!(
        "Single-core sweep suite plus the `spill-reload` kernel, {}+{} \
         instructions, `CoreModel::OoO` (unified {}-entry RS, issue \
         width {}).\n\n\
         **ROB depth** (LQ/SQ at baseline {}/{}): `spd POPET` / `spd \
         Ideal` are geomean speedups of Hermes-O with the perceptron \
         predictor / the oracle over the same-ROB baseline; `% of \
         Ideal` is the fraction of the oracle's upside POPET captures; \
         `ROB occ` is the baseline's mean occupied ROB entries per \
         cycle and `fwd loads` the mean store-to-load forwards per \
         core.\n\n{}\n\
         Reading: with a real window the baseline extracts its own MLP — \
         base IPC rises with ROB depth, and the window itself hides a \
         growing share of off-chip latency. Hermes' relative gain \
         therefore *shrinks* as the ROB deepens (Ideal {} at {} entries \
         → {} at {}), reproducing the direction of the paper's Fig. 19 \
         mechanistically rather than by the legacy model's \
         dependency-scheduling approximation. POPET captures ≳90% of \
         the oracle's upside at every depth, so the predictor is never \
         the bottleneck. `fwd loads` is now non-zero: the `spill-reload` \
         workload reloads every stored word while the store still sits \
         in the store queue, exercising the forwarding path end-to-end.\n\n\
         **LSQ pressure** (ROB pinned at {}, LQ/SQ swept together): \
         `lsq stalls` counts dispatch cycles blocked on a full LSQ \
         partition in the baseline.\n\n{}\n\
         Reading: a starved LSQ ({}/{}) caps in-flight loads well below \
         what the {}-entry ROB could sustain — IPC drops to {} vs {} at \
         baseline LQ/SQ — and POPET's speedup is largest exactly there \
         ({} vs {}): firing the DRAM read at predict time sidesteps the \
         queue the load is still waiting to enter, so Hermes recovers \
         latency the window cannot. As the LSQ grows toward baseline \
         the core regains its own MLP and the two curves converge.",
        scale.warmup,
        scale.instr,
        OooConfig::baseline().rs_entries,
        OooConfig::baseline().issue_width,
        hermes_cpu::CoreConfig::baseline().lq_size,
        hermes_cpu::CoreConfig::baseline().sq_size,
        t.to_markdown(),
        f3(first.2),
        first.0,
        f3(last.2),
        last.0,
        LSQ_ROB,
        lt.to_markdown(),
        lfirst.0,
        lfirst.1,
        LSQ_ROB,
        f3(lfirst.2),
        f3(llast.2),
        f3(lfirst.3),
        f3(llast.3),
    );
    emit(
        "ooo_sweep",
        "Hermes on the out-of-order core: speedup vs ROB depth and LSQ size",
        &body,
        &scale,
    );
}
