//! `ooo_sweep` — how much of "Ideal Hermes" survives real MLP, by ROB
//! depth, on the cycle-driven out-of-order core.
//!
//! The legacy dependency-scheduled model resolves every load the moment
//! its operands are ready, so it overstates memory-level parallelism:
//! nothing ever waits for a reservation-station slot or a load-queue
//! entry. The OoO model (`hermes-ooo`) makes the window explicit —
//! ROB/RAT/RS/LSQ with per-cycle wakeup/select — which means hiding
//! off-chip latency now costs real window occupancy. This sweep runs
//! baseline, Hermes-O/POPET, and Ideal Hermes at ROB sizes 64…512 under
//! `CoreModel::OoO` and reports, per depth: geomean IPC, speedups, the
//! fraction of the Ideal upside POPET captures, mean ROB occupancy, and
//! store-to-load forwards — the microarchitectural story behind the
//! speedup curve.
//!
//! Flags: the usual `--quick` / `--full` / `--record` / `--jobs N`, plus
//! `--smoke` — a CI-scale mode (tiny windows, two ROB points).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_suite, RunLite, Scale, Table};
use hermes_cpu::{CoreModel, OooConfig};
use hermes_sim::SystemConfig;
use hermes_trace::WorkloadSpec;
use hermes_types::geomean;

fn main() {
    let mut scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let robs: &[usize] = if smoke {
        scale.warmup = 2_000;
        scale.instr = 6_000;
        &[128, 512]
    } else {
        &[64, 128, 256, 512]
    };
    scale.suite = scale.sweep_suite();

    let mut t = Table::new(&[
        "ROB",
        "IPC base",
        "spd POPET",
        "spd Ideal",
        "% of Ideal",
        "ROB occ",
        "fwd loads",
    ]);
    let mut curve = Vec::new();
    for &rob in robs {
        let base_cfg = SystemConfig::baseline_1c()
            .with_rob(rob)
            .with_core_model(CoreModel::OoO(OooConfig::baseline()));
        let popet_cfg = base_cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let ideal_cfg = base_cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal));

        let tag = format!("ooo-rob{rob}");
        let base = run_suite(&format!("{tag}-base"), &base_cfg, &scale);
        let popet = run_suite(&format!("{tag}-hermesO-popet"), &popet_cfg, &scale);
        let ideal = run_suite(&format!("{tag}-hermesO-ideal"), &ideal_cfg, &scale);

        let gm = |rs: &[(WorkloadSpec, RunLite)]| {
            geomean(&rs.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>())
        };
        let mean = |rs: &[(WorkloadSpec, RunLite)], f: &dyn Fn(&RunLite) -> f64| {
            rs.iter().map(|(_, r)| f(r)).sum::<f64>() / rs.len() as f64
        };
        let ipc_b = gm(&base);
        let sp_p = gm(&popet) / ipc_b;
        let sp_i = gm(&ideal) / ipc_b;
        // Fraction of the Ideal *upside* POPET captures; degenerate when
        // Ideal itself gains nothing (tiny smoke windows), so clamp the
        // denominator away from zero.
        let frac = (sp_p - 1.0) / (sp_i - 1.0).max(1e-9);
        curve.push((rob, sp_p, sp_i));
        t.row(&[
            rob.to_string(),
            f3(ipc_b),
            f3(sp_p),
            f3(sp_i),
            format!("{:.0}%", frac * 100.0),
            f3(mean(&base, &|r| r.rob_occ_mean)),
            format!("{:.0}", mean(&base, &|r| r.forwarded_loads)),
        ]);
    }

    let (first, last) = (curve[0], curve[curve.len() - 1]);
    let body = format!(
        "Single-core sweep suite, {}+{} instructions, `CoreModel::OoO` \
         (unified {}-entry RS, issue width {}), ROB swept {}→{} with \
         LQ/SQ held at baseline. `spd POPET` / `spd Ideal` are geomean \
         speedups of Hermes-O with the perceptron predictor / the oracle \
         over the same-ROB baseline; `% of Ideal` is the fraction of the \
         oracle's upside POPET captures; `ROB occ` is the baseline's mean \
         occupied ROB entries per cycle and `fwd loads` the mean \
         store-to-load forwards per core (both from the new per-core OoO \
         counters).\n\n{}\n\
         Reading: with a real window the baseline extracts its own MLP — \
         base IPC rises with ROB depth, and the window itself hides a \
         growing share of off-chip latency. Hermes' relative gain \
         therefore *shrinks* as the ROB deepens (Ideal {} at {} entries \
         → {} at {}), reproducing the direction of the paper's Fig. 19 \
         mechanistically rather than by the legacy model's \
         dependency-scheduling approximation. The shrink flattens once \
         the window stops filling (mean occupancy saturates well below \
         the largest ROBs — the {}-entry unified RS and the LQ/SQ become \
         the limiters), which is exactly where early DRAM fire keeps \
         paying. POPET captures ≳90% of the oracle's upside at every \
         depth, so the predictor is never the bottleneck. `fwd loads` is \
         0 across this suite: the synthetic generators stream writes and \
         essentially never reload a just-stored word, so store-to-load \
         forwarding — unit-tested in `hermes-ooo` — stays idle here.",
        scale.warmup,
        scale.instr,
        OooConfig::baseline().rs_entries,
        OooConfig::baseline().issue_width,
        robs[0],
        robs[robs.len() - 1],
        t.to_markdown(),
        f3(first.2),
        first.0,
        f3(last.2),
        last.0,
        OooConfig::baseline().rs_entries,
    );
    emit(
        "ooo_sweep",
        "Hermes on the out-of-order core: speedup vs ROB depth",
        &body,
        &scale,
    );
}
