//! Fig. 17a — sensitivity to main-memory bandwidth (200 → 12800 MTPS):
//! Hermes alone, Pythia, and Pythia + Hermes.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{cross, emit, f3, prewarm, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

fn base_cfg(mtps: u64) -> SystemConfig {
    SystemConfig::baseline_1c()
        .with_mtps(mtps)
        .with_prefetcher(PrefetcherKind::None)
}

fn point_cfgs(mtps: u64) -> [(&'static str, SystemConfig); 3] {
    [
        (
            "hermesO-alone",
            base_cfg(mtps).with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
        ("pythia", SystemConfig::baseline_1c().with_mtps(mtps)),
        (
            "pythia+hermesO",
            SystemConfig::baseline_1c()
                .with_mtps(mtps)
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ]
}

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();
    let mtps_points = [200u64, 400, 800, 1600, 3200, 6400, 12800];

    // Whole sweep grid up front: the engine dedups shared baselines and
    // fans the unique points out across all workers.
    let mut grid: Vec<(String, SystemConfig)> = Vec::new();
    for mtps in mtps_points {
        grid.push((format!("mtps{mtps}-nopf"), base_cfg(mtps)));
        for (tag, cfg) in point_cfgs(mtps) {
            grid.push((format!("mtps{mtps}-{tag}"), cfg));
        }
    }
    prewarm(cross(&grid, &subsuite), &scale);

    let mut t = Table::new(&["MTPS", "Hermes-O", "Pythia", "Pythia+Hermes-O"]);
    let mut crossover = None;
    for mtps in mtps_points {
        let base_cfg = base_cfg(mtps);
        let cfgs = point_cfgs(mtps);
        let mut speedups = Vec::new();
        for (tag, cfg) in &cfgs {
            let v: Vec<f64> = subsuite
                .iter()
                .map(|spec| {
                    let b = run_cached(&format!("mtps{mtps}-nopf"), &base_cfg, spec, &scale);
                    let r = run_cached(&format!("mtps{mtps}-{tag}"), cfg, spec, &scale);
                    r.ipc / b.ipc
                })
                .collect();
            speedups.push(geomean(&v));
        }
        if speedups[0] > speedups[1] && crossover.is_none() {
            crossover = Some(mtps);
        }
        t.row(&[
            mtps.to_string(),
            f3(speedups[0]),
            f3(speedups[1]),
            f3(speedups[2]),
        ]);
    }
    let summary = match crossover {
        Some(m) => format!(
            "Hermes alone beats Pythia alone at constrained bandwidth (≤{m} MTPS here; paper: at 200–400 MTPS), because accurate Hermes requests waste less bandwidth than speculative prefetches."
        ),
        None => "Hermes+Pythia tops Pythia at every bandwidth point; Hermes-alone crossover not observed at this scale (paper sees it at 200–400 MTPS).".to_string(),
    };
    emit(
        "fig17a",
        "Sensitivity to main-memory bandwidth",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
