//! Fig. 19 (Appendix B.1) — sensitivity to ROB size (256 → 1024).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();

    let mut t = Table::new(&[
        "ROB",
        "Hermes-O",
        "Pythia",
        "Pythia+Hermes-O",
        "Hermes gain",
    ]);
    let mut gains = Vec::new();
    for rob in [256usize, 512, 768, 1024] {
        let nopf = SystemConfig::baseline_1c()
            .with_rob(rob)
            .with_prefetcher(PrefetcherKind::None);
        let sp = |tag: &str, cfg: &SystemConfig| -> f64 {
            let v: Vec<f64> = subsuite
                .iter()
                .map(|spec| {
                    let b = run_cached(&format!("rob{rob}-nopf"), &nopf, spec, &scale);
                    run_cached(&format!("rob{rob}-{tag}"), cfg, spec, &scale).ipc / b.ipc
                })
                .collect();
            geomean(&v)
        };
        let h = sp(
            "hermes-alone",
            &nopf
                .clone()
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        );
        let p = sp("pythia", &SystemConfig::baseline_1c().with_rob(rob));
        let c = sp(
            "pythia+hermesO",
            &SystemConfig::baseline_1c()
                .with_rob(rob)
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        );
        gains.push(c / p - 1.0);
        t.row(&[
            rob.to_string(),
            f3(h),
            f3(p),
            f3(c),
            format!("{:+.1}%", (c / p - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Pythia+Hermes beats Pythia at every ROB size: {:+.1}% at 256 entries, {:+.1}% at 1024 (paper: +6.7% and +5.3% — bigger windows tolerate more latency, so the gain shrinks slightly).",
        gains[0] * 100.0,
        gains[3] * 100.0,
    );
    emit(
        "fig19",
        "Sensitivity to ROB size",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
