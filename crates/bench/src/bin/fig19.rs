//! Fig. 19 (Appendix B.1) — sensitivity to ROB size (256 → 1024).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{cross, emit, f3, prewarm, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

/// One ROB point's configurations, in `[baseline, Hermes-alone, Pythia,
/// Pythia+Hermes-O]` order. Single source for both the prewarm grid and
/// the measurement loop, so the tags can't drift apart.
fn point_cfgs(rob: usize) -> [(String, SystemConfig); 4] {
    let nopf = SystemConfig::baseline_1c()
        .with_rob(rob)
        .with_prefetcher(PrefetcherKind::None);
    [
        (format!("rob{rob}-nopf"), nopf.clone()),
        (
            format!("rob{rob}-hermes-alone"),
            nopf.with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
        (
            format!("rob{rob}-pythia"),
            SystemConfig::baseline_1c().with_rob(rob),
        ),
        (
            format!("rob{rob}-pythia+hermesO"),
            SystemConfig::baseline_1c()
                .with_rob(rob)
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ]
}

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();

    let robs = [256usize, 512, 768, 1024];

    // Batch-simulate the whole ROB sweep before the measurement loop.
    let grid: Vec<(String, SystemConfig)> = robs.iter().flat_map(|&rob| point_cfgs(rob)).collect();
    prewarm(cross(&grid, &subsuite), &scale);

    let mut t = Table::new(&[
        "ROB",
        "Hermes-O",
        "Pythia",
        "Pythia+Hermes-O",
        "Hermes gain",
    ]);
    let mut gains = Vec::new();
    for rob in robs {
        let [base, hermes_alone, pythia, combo] = point_cfgs(rob);
        let sp = |(tag, cfg): &(String, SystemConfig)| -> f64 {
            let v: Vec<f64> = subsuite
                .iter()
                .map(|spec| {
                    let b = run_cached(&base.0, &base.1, spec, &scale);
                    run_cached(tag, cfg, spec, &scale).ipc / b.ipc
                })
                .collect();
            geomean(&v)
        };
        let h = sp(&hermes_alone);
        let p = sp(&pythia);
        let c = sp(&combo);
        gains.push(c / p - 1.0);
        t.row(&[
            rob.to_string(),
            f3(h),
            f3(p),
            f3(c),
            format!("{:+.1}%", (c / p - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Pythia+Hermes beats Pythia at every ROB size: {:+.1}% at 256 entries, {:+.1}% at 1024 (paper: +6.7% and +5.3% — bigger windows tolerate more latency, so the gain shrinks slightly).",
        gains[0] * 100.0,
        gains[3] * 100.0,
    );
    emit(
        "fig19",
        "Sensitivity to ROB size",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
