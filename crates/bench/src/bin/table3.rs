//! Table 3 — storage overhead of Hermes, computed from the live
//! configuration.

use hermes::storage;
use hermes::PopetConfig;
use hermes_bench::{emit, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let cfg = PopetConfig::paper();
    let lq = hermes_cpu::CoreConfig::baseline().lq_size;

    let mut t = Table::new(&["structure", "description", "size (KB)"]);
    for row in storage::table3(&cfg, lq) {
        t.row(&[
            row.structure.clone(),
            row.description.clone(),
            format!("{:.2}", row.kb()),
        ]);
    }
    let total_kb = storage::hermes_total_bits(&cfg, lq) as f64 / 8.0 / 1024.0;
    t.row(&[
        "Total".to_string(),
        String::new(),
        format!("{:.2}", total_kb),
    ]);
    let summary = format!(
        "Total Hermes storage: {:.2} KB per core (paper: 4.0 KB).",
        total_kb
    );
    emit(
        "table3",
        "Hermes storage overhead",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
