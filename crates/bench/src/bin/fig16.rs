//! Fig. 16 — eight-core speedups: Pythia vs Pythia + Hermes-{HMP, TTP,
//! POPET}, normalized to the no-prefetching eight-core system.
//!
//! Homogeneous mixes (eight copies of one trace per run) for a
//! category-diverse subsample, plus heterogeneous MIX runs, as in §7.1.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{cross, emit, f3, prewarm, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

fn main() {
    let mut scale = Scale::from_args();
    // Eight-core runs cost ~8x; shorten the per-core window.
    scale.warmup /= 2;
    scale.instr /= 2;
    let subsuite = scale.sweep_suite();

    let configs: Vec<(String, SystemConfig)> = vec![
        (
            "no-prefetching".into(),
            SystemConfig::baseline_8c().with_prefetcher(PrefetcherKind::None),
        ),
        ("Pythia".into(), SystemConfig::baseline_8c()),
        (
            "Pythia+Hermes-HMP".into(),
            SystemConfig::baseline_8c().with_hermes(HermesConfig::hermes_o(PredictorKind::Hmp)),
        ),
        (
            "Pythia+Hermes-TTP".into(),
            SystemConfig::baseline_8c().with_hermes(HermesConfig::hermes_o(PredictorKind::Ttp)),
        ),
        (
            "Pythia+Hermes-POPET".into(),
            SystemConfig::baseline_8c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ];

    // Batch-simulate the whole grid up front (the engine dedups and runs
    // it across all workers); the loop below then reads the warm cache
    // through the same `points` entries, so the keys can't drift apart.
    let points: Vec<(String, SystemConfig)> = configs
        .iter()
        .map(|(tag, cfg)| (format!("8c-{tag}"), cfg.clone()))
        .collect();
    prewarm(cross(&points, &subsuite), &scale);

    // speedups[cfg][trace]
    let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut t = Table::new(&[
        "8-core mix",
        "Pythia",
        "+Hermes-HMP",
        "+Hermes-TTP",
        "+Hermes-POPET",
    ]);
    for spec in &subsuite {
        let mut ipcs = Vec::new();
        for (tag, cfg) in &points {
            let r = run_cached(tag, cfg, spec, &scale);
            ipcs.push(r.ipc);
        }
        for (i, ipc) in ipcs.iter().enumerate() {
            per_cfg[i].push(ipc / ipcs[0]);
        }
        t.row(&[
            format!("8x {}", spec.name),
            f3(ipcs[1] / ipcs[0]),
            f3(ipcs[2] / ipcs[0]),
            f3(ipcs[3] / ipcs[0]),
            f3(ipcs[4] / ipcs[0]),
        ]);
    }
    let g: Vec<f64> = per_cfg.iter().map(|v| geomean(v)).collect();
    t.row(&[
        "GEOMEAN".to_string(),
        f3(g[1]),
        f3(g[2]),
        f3(g[3]),
        f3(g[4]),
    ]);
    let summary = format!(
        "Over Pythia: Hermes-HMP {:+.1}%, Hermes-TTP {:+.1}%, Hermes-POPET {:+.1}% (paper: +0.6%, -2.1%, +5.1%). Shape check: POPET gains under bandwidth pressure; TTP's inaccuracy costs it.",
        (g[2] / g[1] - 1.0) * 100.0,
        (g[3] / g[1] - 1.0) * 100.0,
        (g[4] / g[1] - 1.0) * 100.0,
    );
    emit(
        "fig16",
        "Eight-core speedups",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
