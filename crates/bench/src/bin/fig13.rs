//! Fig. 13 — per-trace speedup line graph: Hermes-O, Pythia, and
//! Pythia + Hermes-O over no-prefetching, sorted by the combined system's
//! speedup.

use hermes::PredictorKind;
use hermes_bench::{configs, emit, f3, run_suite, Scale, Table};

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);
    let (ht, hc) = configs::hermes_alone('o', PredictorKind::Popet);
    let hermes = run_suite(&ht, &hc, &scale);
    let (pt, pc) = configs::pythia();
    let pythia = run_suite(pt, &pc, &scale);
    let (ct, cc) = configs::pythia_hermes('o', PredictorKind::Popet);
    let combo = run_suite(&ct, &cc, &scale);

    let mut rows: Vec<(String, f64, f64, f64)> = base
        .iter()
        .enumerate()
        .map(|(i, (spec, b))| {
            (
                spec.name.clone(),
                hermes[i].1.ipc / b.ipc,
                pythia[i].1.ipc / b.ipc,
                combo[i].1.ipc / b.ipc,
            )
        })
        .collect();
    rows.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite speedups"));

    let mut t = Table::new(&["trace (sorted)", "Hermes-O", "Pythia", "Pythia+Hermes-O"]);
    let mut hermes_wins = 0;
    let mut hermes_always_gains = true;
    let mut combo_beats_both = 0;
    for (name, h, p, c) in &rows {
        t.row(&[name.clone(), f3(*h), f3(*p), f3(*c)]);
        if h > p {
            hermes_wins += 1;
        }
        if *h < 1.0 {
            hermes_always_gains = false;
        }
        if *c >= h.max(*p) * 0.995 {
            combo_beats_both += 1;
        }
    }
    let summary = format!(
        "Hermes-O alone beats Pythia in {}/{} traces; Hermes alone ≥ no-prefetching in {} traces; the combination matches-or-beats both alone in {}/{} traces (paper: Hermes wins 51/110; Hermes alone always gains; combination wins almost everywhere).",
        hermes_wins,
        rows.len(),
        if hermes_always_gains { "all".to_string() } else { "not all".to_string() },
        combo_beats_both,
        rows.len(),
    );
    emit(
        "fig13",
        "Per-trace speedups (sorted)",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
