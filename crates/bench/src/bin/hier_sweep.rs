//! `hier_sweep` — end-to-end comparison of 2-, 3-, and 4-level cache
//! topologies through the `hermes-exec` engine.
//!
//! For each topology the sweep runs the suite twice — baseline and
//! Hermes-O/POPET — and reports geomean IPC plus the per-category Hermes
//! speedup. The interesting trend: the deeper the hierarchy, the larger
//! the on-chip latency an off-chip load pays before reaching the memory
//! controller, and the more Hermes has to hide (§4 of the paper treats
//! the 55-cycle three-level walk as fixed; here it is a knob).
//!
//! Flags: the usual `--quick` / `--full` / `--record` / `--jobs N`, plus
//! `--smoke` — a CI-scale mode (2 cores, tiny windows, smoke suite) used
//! by the workflow to exercise non-default topologies and multicore
//! sharing on every push.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_suite, speedup_table, speedups, Scale, Table};
use hermes_cache::{CacheConfig, LevelConfig, ReplacementKind};
use hermes_sim::SystemConfig;
use hermes_trace::suite;
use hermes_types::geomean;

/// The three topologies under comparison, shallow to deep.
fn topologies() -> Vec<(&'static str, SystemConfig)> {
    let base = SystemConfig::baseline_1c();
    let two = base.clone().with_levels(vec![
        LevelConfig::private(base.l1.clone()),
        // No mid level, LLC latency unchanged: the on-chip walk shrinks
        // to 45 cycles (vs 55), so hier2 trades L2 capacity for a
        // shorter path — and gives Hermes 10 fewer cycles to hide.
        LevelConfig::shared(base.llc_per_core.clone()),
    ]);
    let three = base.clone();
    let four = base.clone().with_levels(vec![
        LevelConfig::private(base.l1.clone()),
        LevelConfig::private(base.l2.clone()),
        LevelConfig::private(
            CacheConfig::new("L3", 2 << 20, 16, ReplacementKind::Lru, 48).with_latency(15),
        ),
        LevelConfig::shared(base.llc_per_core.clone()),
    ]);
    vec![("hier2", two), ("hier3", three), ("hier4", four)]
}

fn main() {
    let mut scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = if smoke {
        scale.warmup = 2_000;
        scale.instr = 6_000;
        scale.suite = suite::smoke_suite();
        2
    } else {
        1
    };

    let mut ipc_rows = Vec::new();
    let mut speedup_rows = Vec::new();
    for (tag, topo) in topologies() {
        let cfg = SystemConfig { cores, ..topo };
        let hermes_cfg = cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let base_runs = run_suite(&format!("{tag}-base"), &cfg, &scale);
        let hermes_runs = run_suite(&format!("{tag}-hermesO-popet"), &hermes_cfg, &scale);
        let base_ipc = geomean(&base_runs.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>());
        let hermes_ipc = geomean(&hermes_runs.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>());
        ipc_rows.push((
            tag,
            cfg.level_configs().len(),
            cfg.hierarchy_latency(),
            base_ipc,
            hermes_ipc,
        ));
        speedup_rows.push((tag.to_string(), speedups(&base_runs, &hermes_runs)));
    }

    let mut t = Table::new(&[
        "topology",
        "levels",
        "onchip latency",
        "geomean IPC",
        "geomean IPC +HermesO",
        "speedup",
    ]);
    for (tag, levels, lat, base, hermes) in &ipc_rows {
        t.row(&[
            tag.to_string(),
            levels.to_string(),
            format!("{lat} cyc"),
            f3(*base),
            f3(*hermes),
            f3(hermes / base),
        ]);
    }
    let body = format!(
        "{}-core, {} workloads, {}+{} instructions/core.\n\n{}\n\
         Per-category Hermes-O/POPET speedup by topology:\n\n{}",
        cores,
        scale.suite.len(),
        scale.warmup,
        scale.instr,
        t.to_markdown(),
        speedup_table(&speedup_rows),
    );
    emit(
        "hier_sweep",
        "IPC and Hermes speedup across 2/3/4-level cache topologies",
        &body,
        &scale,
    );
}
