//! `tlb_sweep` — how address-translation pressure changes Hermes's win.
//!
//! Sweeps the vm subsystem over the TLB-stressing suite: dTLB sizes ×
//! page sizes (4 KB vs 2 MB huge pages) × {baseline, Hermes-O/POPET},
//! plus the historical free-translation reference (`vm: None`). The
//! tension under study: a TLB miss gates the *physical* address, and
//! Hermes-O cannot launch its speculative DRAM read before the PFN is
//! known — so the walk latency Hermes cannot hide grows exactly on the
//! loads it targets, while huge pages (512× the TLB reach, one fewer
//! radix level) claw the win back.
//!
//! Flags: the usual `--quick` / `--full` / `--record` / `--jobs N`, plus
//! `--smoke` — a CI-scale mode (2 cores, shared STLB, tiny windows,
//! reduced grid) exercising multicore translation sharing on every push.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_suite, speedup_table, speedups, Scale, Table};
use hermes_sim::SystemConfig;
use hermes_trace::suite;
use hermes_types::geomean;
use hermes_vm::{TlbConfig, VmConfig};

fn main() {
    let mut scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    scale.suite = suite::tlb_suite();
    let cores = if smoke {
        scale.warmup = 2_000;
        scale.instr = 6_000;
        2
    } else {
        1
    };

    let dtlb_sizes: &[usize] = if smoke { &[16, 64] } else { &[16, 64, 256] };
    let page_cfgs: &[(u32, &str)] = &[(0, "4K"), (1000, "2M")];

    // (tag, dtlb label, page label, vm config); `None` = free translation.
    let mut grid: Vec<(String, String, &str, Option<VmConfig>)> =
        vec![("novm".into(), "-".into(), "-", None)];
    for &(pm, pages) in page_cfgs {
        for &entries in dtlb_sizes {
            let vm = VmConfig::baseline()
                .with_dtlb(TlbConfig::new(entries, 4, 0))
                .with_huge_page_pm(pm)
                // The smoke mode runs 2 cores: share the STLB so CI
                // exercises the scaled shared structure too.
                .with_shared_stlb(smoke);
            grid.push((
                format!("d{entries}-{pages}"),
                entries.to_string(),
                pages,
                Some(vm),
            ));
        }
    }

    let mut t = Table::new(&[
        "config",
        "dTLB",
        "pages",
        "dTLB MPKI",
        "STLB MPKI",
        "walk cyc",
        "IPC base",
        "IPC +HermesO",
        "speedup",
    ]);
    let mut speedup_rows = Vec::new();
    for (tag, dtlb, pages, vm) in &grid {
        let mut cfg = SystemConfig {
            cores,
            ..SystemConfig::baseline_1c()
        };
        if let Some(vm) = vm {
            cfg = cfg.with_vm(vm.clone());
        }
        let hermes_cfg = cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let base = run_suite(&format!("tlb-{tag}-base"), &cfg, &scale);
        let herm = run_suite(&format!("tlb-{tag}-hermesO-popet"), &hermes_cfg, &scale);
        let gm = |rs: &[(hermes_trace::WorkloadSpec, hermes_bench::RunLite)],
                  f: &dyn Fn(&hermes_bench::RunLite) -> f64| {
            geomean(&rs.iter().map(|(_, r)| f(r)).collect::<Vec<_>>())
        };
        let mean = |rs: &[(hermes_trace::WorkloadSpec, hermes_bench::RunLite)],
                    f: &dyn Fn(&hermes_bench::RunLite) -> f64| {
            rs.iter().map(|(_, r)| f(r)).sum::<f64>() / rs.len() as f64
        };
        let (ipc_b, ipc_h) = (gm(&base, &|r| r.ipc), gm(&herm, &|r| r.ipc));
        t.row(&[
            tag.clone(),
            dtlb.clone(),
            pages.to_string(),
            f3(mean(&base, &|r| r.dtlb_mpki)),
            f3(mean(&base, &|r| r.stlb_mpki)),
            f3(mean(&base, &|r| r.walk_cycles)),
            f3(ipc_b),
            f3(ipc_h),
            f3(ipc_h / ipc_b),
        ]);
        speedup_rows.push((tag.clone(), speedups(&base, &herm)));
    }

    let body = format!(
        "{}-core, {} TLB-stressing workloads, {}+{} instructions/core; \
         STLB {} per core{}, 32-entry page-walk cache. `novm` is the \
         historical free translation.\n\n{}\n\
         Per-category Hermes-O/POPET speedup by translation config:\n\n{}\n\
         Reading: translation pressure (small dTLB, 4 KB pages) adds \
         walk latency that gates Hermes's speculative issue, while 2 MB \
         pages recover most of the free-translation win (512x reach, one \
         fewer radix level per walk).",
        cores,
        scale.suite.len(),
        scale.warmup,
        scale.instr,
        VmConfig::baseline().stlb.entries,
        if smoke { " (shared)" } else { "" },
        t.to_markdown(),
        speedup_table(&speedup_rows),
    );
    emit(
        "tlb_sweep",
        "Hermes speedup under real address-translation pressure (TLB sizes x page sizes)",
        &body,
        &scale,
    );
}
