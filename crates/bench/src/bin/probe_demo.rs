//! `probe_demo` — exercises the hermes-probe observability layer
//! end-to-end and emits its artifacts.
//!
//! Runs Hermes-O/POPET on the pointer chase (with the vm subsystem on, so
//! page-walk events and walk-latency histograms are populated) with the
//! probe attached, then writes:
//!
//! * `target/experiments/probe_demo_trace.json` — sampled per-load
//!   lifecycle traces in Chrome/Perfetto `trace_event` format (open in
//!   `ui.perfetto.dev`);
//! * `target/experiments/probe_demo_intervals.jsonl` — the interval
//!   metrics timeline, one JSON object per interval.
//!
//! Both artifacts are validated with the probe's own JSON checker before
//! the binary reports success, and the run's statistics are compared
//! against an identical probe-off run — the binary exits nonzero on
//! invalid JSON, a missing timeline, or any statistics divergence, which
//! makes it the CI gate for the observability layer. This binary runs the
//! simulator directly (not through the result cache): its product is the
//! artifacts, not cacheable scalars.
//!
//! Flags: `--quick` / `--full` / `--record` as usual, plus `--smoke` for
//! a CI-scale run.

use std::fs;
use std::path::PathBuf;

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, Scale, Table};
use hermes_probe::{validate_json, LatClass, ProbeConfig};
use hermes_sim::system::run_one;
use hermes_sim::SystemConfig;
use hermes_trace::suite;
use hermes_vm::VmConfig;

fn main() {
    let mut scale = Scale::from_args();
    if std::env::args().any(|a| a == "--smoke") {
        scale.warmup = 2_000;
        scale.instr = 8_000;
    }
    let spec = &suite::smoke_suite()[0]; // pointer chase: off-chip bound
    let cfg = SystemConfig::baseline_1c()
        .with_vm(VmConfig::baseline())
        .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
    // The baseline 20k-cycle interval gives ~20 snapshots on the smoke
    // window (a memory-bound chase runs at well under 0.1 IPC); 1-in-16
    // sampling keeps the trace readable while catching plenty of loads.
    let probe = ProbeConfig::baseline().with_sample_period(16);

    let plain = run_one(cfg.clone(), spec, scale.warmup, scale.instr);
    let probed = run_one(cfg.with_probe(probe), spec, scale.warmup, scale.instr);

    // The probe must be invisible to the simulation proper.
    let mut failures = Vec::new();
    if plain.total_cycles != probed.total_cycles
        || plain.dram.reads_demand != probed.dram.reads_demand
        || plain.cores[0].pred != probed.cores[0].pred
    {
        failures.push(format!(
            "probe perturbed the run: {} vs {} cycles",
            plain.total_cycles, probed.total_cycles
        ));
    }
    let report = probed.probe.as_ref().expect("probe was configured");

    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    let trace_path = dir.join("probe_demo_trace.json");
    let intervals_path = dir.join("probe_demo_intervals.jsonl");

    let trace = report.to_chrome_trace();
    if let Err((off, msg)) = validate_json(&trace) {
        failures.push(format!("trace JSON invalid at byte {off}: {msg}"));
    }
    fs::write(&trace_path, &trace).expect("write trace");

    let jsonl = report.to_interval_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    if lines.len() < 2 {
        failures.push(format!(
            "interval timeline has {} snapshots, need >= 2",
            lines.len()
        ));
    }
    for (i, l) in lines.iter().enumerate() {
        if let Err((off, msg)) = validate_json(l) {
            failures.push(format!("interval line {i} invalid at byte {off}: {msg}"));
        }
    }
    fs::write(&intervals_path, &jsonl).expect("write intervals");

    let mut t = Table::new(&["metric", "value"]);
    let off = report.lat_hist(LatClass::Offchip);
    t.row(&["traced loads".into(), format!("{}", report.traces.len())]);
    t.row(&[
        "lifecycle events".into(),
        format!(
            "{}",
            report
                .traces
                .iter()
                .map(|tr| tr.events.len())
                .sum::<usize>()
        ),
    ]);
    t.row(&["interval snapshots".into(), format!("{}", lines.len())]);
    t.row(&["off-chip loads (hist)".into(), format!("{}", off.count())]);
    t.row(&["off-chip latency p50".into(), f3(off.quantile_log2(0.5))]);
    t.row(&["off-chip latency p95".into(), f3(off.quantile_log2(0.95))]);
    t.row(&[
        "LLC-hit latency p50".into(),
        f3(report.lat_hist(LatClass::Llc).quantile_log2(0.5)),
    ]);
    t.row(&[
        "walk latency p95".into(),
        f3(report.lat_walk.quantile_log2(0.95)),
    ]);

    let body = format!(
        "Pointer chase, {}+{} instructions, Hermes-O/POPET with the vm \
         subsystem on, probe sampling 1-in-16 loads. A probe-off run of \
         the identical configuration produced identical statistics \
         (checked cycle-for-cycle by this binary). Artifacts:\n\n\
         * `{}` — Chrome/Perfetto trace (open in ui.perfetto.dev)\n\
         * `{}` — interval metrics timeline (JSONL)\n\n{}",
        scale.warmup,
        scale.instr,
        trace_path.display(),
        intervals_path.display(),
        t.to_markdown(),
    );
    emit(
        "probe_demo",
        "Observability probe: lifecycle traces, interval timeline, latency histograms",
        &body,
        &scale,
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("probe_demo FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "probe_demo OK: {} traces, {} snapshots, artifacts validated",
        report.traces.len(),
        lines.len()
    );
}
