//! Fig. 9 — accuracy and coverage of POPET vs HMP vs TTP, measured
//! passively in the baseline system with Pythia.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, pct, run_suite, Scale, Table};
use hermes_sim::SystemConfig;
use hermes_trace::Category;

fn main() {
    let scale = Scale::from_args();
    let preds = [PredictorKind::Hmp, PredictorKind::Ttp, PredictorKind::Popet];
    let mut results = Vec::new();
    for pred in preds {
        let cfg = SystemConfig::baseline_1c().with_hermes(HermesConfig::passive(pred));
        let tag = format!("passive-{}", pred.label());
        results.push((pred, run_suite(&tag, &cfg, &scale)));
    }

    let mut t = Table::new(&["category", "predictor", "accuracy", "coverage"]);
    let mut avg = Vec::new();
    for (pred, runs) in &results {
        let mut accs = Vec::new();
        let mut covs = Vec::new();
        for cat in Category::ALL {
            let rows: Vec<_> = runs.iter().filter(|(s, _)| s.category == cat).collect();
            if rows.is_empty() {
                continue;
            }
            let n = rows.len() as f64;
            let acc: f64 = rows.iter().map(|(_, r)| r.accuracy).sum::<f64>() / n;
            let cov: f64 = rows.iter().map(|(_, r)| r.coverage).sum::<f64>() / n;
            accs.push(acc);
            covs.push(cov);
            t.row(&[
                cat.label().to_string(),
                pred.label().to_string(),
                pct(acc),
                pct(cov),
            ]);
        }
        avg.push((pred, hermes_types::mean(&accs), hermes_types::mean(&covs)));
    }
    for (pred, acc, cov) in &avg {
        t.row(&[
            "AVG".to_string(),
            pred.label().to_string(),
            pct(*acc),
            pct(*cov),
        ]);
    }
    let popet = avg
        .iter()
        .find(|(p, _, _)| **p == PredictorKind::Popet)
        .expect("ran POPET");
    let hmp = avg
        .iter()
        .find(|(p, _, _)| **p == PredictorKind::Hmp)
        .expect("ran HMP");
    let ttp = avg
        .iter()
        .find(|(p, _, _)| **p == PredictorKind::Ttp)
        .expect("ran TTP");
    let summary = format!(
        "POPET: {} accuracy / {} coverage; HMP: {} / {}; TTP: {} / {} (paper: 77.1%/74.3%, 47%/22.3%, 16.6%/94.8%). POPET {} HMP on coverage; TTP has the top coverage as in the paper. Caveat: the paper's TTP accuracy collapse (16.6%) comes from LLC churn forgetting L1-resident hot lines over 500M-instruction windows; at this window scale the LLC does not turn over even once, so TTP looks far better here than it would at paper scale (see DESIGN.md §2).",
        pct(popet.1), pct(popet.2), pct(hmp.1), pct(hmp.2), pct(ttp.1), pct(ttp.2),
        if popet.2 > hmp.2 { "beats" } else { "does not beat" },
    );
    emit(
        "fig09",
        "Off-chip predictor accuracy and coverage",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
