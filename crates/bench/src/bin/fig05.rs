//! Fig. 5 — fraction of loads that go off-chip and LLC MPKI in the
//! baseline system with Pythia.

use hermes_bench::{configs, emit, f3, pct, run_suite, Scale, Table};
use hermes_trace::Category;

fn main() {
    let scale = Scale::from_args();
    let (tag, cfg) = configs::pythia();
    let runs = run_suite(tag, &cfg, &scale);

    let mut t = Table::new(&["category", "off-chip load rate", "LLC MPKI"]);
    let mut rates = Vec::new();
    let mut mpkis = Vec::new();
    for cat in Category::ALL {
        let rows: Vec<_> = runs.iter().filter(|(s, _)| s.category == cat).collect();
        if rows.is_empty() {
            continue;
        }
        let n = rows.len() as f64;
        let rate: f64 = rows.iter().map(|(_, r)| r.offchip_rate).sum::<f64>() / n;
        let mpki: f64 = rows.iter().map(|(_, r)| r.llc_mpki).sum::<f64>() / n;
        rates.push(rate);
        mpkis.push(mpki);
        t.row(&[cat.label().to_string(), pct(rate), f3(mpki)]);
    }
    t.row(&[
        "AVG".to_string(),
        pct(hermes_types::mean(&rates)),
        f3(hermes_types::mean(&mpkis)),
    ]);
    let summary = format!(
        "With Pythia, {} of loads go off-chip at {:.1} LLC MPKI on average (paper: 5.1% and 7.9) — the class-imbalance challenge POPET must learn under.",
        pct(hermes_types::mean(&rates)),
        hermes_types::mean(&mpkis),
    );
    emit(
        "fig05",
        "Off-chip load rate and LLC MPKI under Pythia",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
