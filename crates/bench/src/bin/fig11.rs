//! Fig. 11 — per-trace accuracy and coverage of POPET with each single
//! feature: no one feature wins everywhere.

use hermes::{Feature, HermesConfig, PopetConfig, PredictorKind};
use hermes_bench::{emit, pct, run_suite, Scale, Table};
use hermes_sim::SystemConfig;

fn main() {
    let scale = Scale::from_args();
    let features = Feature::SELECTED;
    // results[f] = suite runs for that single feature.
    let mut results = Vec::new();
    for feat in features {
        let cfg = SystemConfig::baseline_1c()
            .with_popet(PopetConfig::with_features(&[feat]))
            .with_hermes(HermesConfig::passive(PredictorKind::Popet));
        let tag = format!("popet-f{:?}", feat);
        results.push(run_suite(&tag, &cfg, &scale));
    }

    let mut hdr: Vec<String> = vec!["trace".to_string()];
    hdr.extend(features.iter().map(|f| format!("{} acc/cov", f.label())));
    hdr.push("best feature".to_string());
    let hdr_refs: Vec<&str> = hdr.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr_refs);

    let mut wins = vec![0usize; features.len()];
    for (i, (spec, _)) in results[0].iter().enumerate() {
        let mut cells = vec![spec.name.clone()];
        let mut best = 0;
        for (fi, runs) in results.iter().enumerate() {
            let r = &runs[i].1;
            cells.push(format!("{}/{}", pct(r.accuracy), pct(r.coverage)));
            if r.accuracy > results[best][i].1.accuracy {
                best = fi;
            }
        }
        wins[best] += 1;
        cells.push(features[best].label().to_string());
        t.row(&cells);
    }
    let mut summary = String::from("Per-feature accuracy wins across traces: ");
    for (f, w) in features.iter().zip(&wins) {
        summary.push_str(&format!("{} = {}; ", f.label(), w));
    }
    summary.push_str(
        "(paper: 47/29/20/9/5 across 110 traces — the point being that no single feature dominates, motivating multi-feature learning).",
    );
    emit(
        "fig11",
        "Per-trace single-feature accuracy/coverage",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
