//! Fig. 21 (Appendix B.3) — POPET accuracy/coverage under each baseline
//! prefetcher and with no prefetcher at all.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, pct, run_suite, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;

fn main() {
    let scale = Scale::from_args();
    let mut t = Table::new(&["system", "POPET accuracy", "POPET coverage"]);
    let mut rows = Vec::new();
    for pf in PrefetcherKind::PAPER_SET
        .iter()
        .copied()
        .chain([PrefetcherKind::None])
    {
        let cfg = SystemConfig::baseline_1c()
            .with_prefetcher(pf)
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let tag = format!("{}+hermesO-acc", pf.label());
        let runs = run_suite(&tag, &cfg, &scale);
        let n = runs.len() as f64;
        let acc: f64 = runs.iter().map(|(_, r)| r.accuracy).sum::<f64>() / n;
        let cov: f64 = runs.iter().map(|(_, r)| r.coverage).sum::<f64>() / n;
        let label = if pf == PrefetcherKind::None {
            "Hermes alone".to_string()
        } else {
            format!("{} + Hermes", pf.label())
        };
        rows.push((label.clone(), acc, cov));
        t.row(&[label, pct(acc), pct(cov)]);
    }
    let alone = rows.last().expect("ran at least one config");
    let with_pf_acc = hermes_types::mean(
        &rows[..rows.len() - 1]
            .iter()
            .map(|r| r.1)
            .collect::<Vec<_>>(),
    );
    let summary = format!(
        "Without a prefetcher POPET reaches {} accuracy vs {} averaged across prefetchers (paper: 88.9% vs 73–80%) — prefetch traffic genuinely makes off-chip prediction harder (§3.2, challenge 2).",
        pct(alone.1),
        pct(with_pf_acc),
    );
    emit(
        "fig21",
        "POPET accuracy/coverage vs baseline prefetcher",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
