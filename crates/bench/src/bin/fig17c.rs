//! Fig. 17c — sensitivity to the Hermes request issue latency (0 → 24
//! cycles).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{configs, cross, emit, f3, prewarm, run_cached, Scale, Table};
use hermes_sim::SystemConfig;
use hermes_types::geomean;

/// The per-latency configuration — single source for both the prewarm
/// grid and the measurement loop, so tag and config can't drift apart.
fn lat_cfg(lat: u32) -> (String, SystemConfig) {
    (
        format!("pythia+hermes-lat{lat}"),
        SystemConfig::baseline_1c()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet).with_issue_latency(lat)),
    )
}

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();
    let (bt, bc) = configs::nopf();
    let (pt, pc) = configs::pythia();
    let lats = [0u32, 3, 6, 9, 12, 15, 18, 21, 24];

    // Batch-simulate every point before the measurement loops.
    let mut grid: Vec<(String, SystemConfig)> =
        vec![(bt.to_string(), bc.clone()), (pt.to_string(), pc.clone())];
    grid.extend(lats.iter().map(|&lat| lat_cfg(lat)));
    prewarm(cross(&grid, &subsuite), &scale);

    let pythia_sp: Vec<f64> = subsuite
        .iter()
        .map(|spec| {
            let b = run_cached(bt, &bc, spec, &scale);
            run_cached(pt, &pc, spec, &scale).ipc / b.ipc
        })
        .collect();

    let mut t = Table::new(&[
        "issue latency (cycles)",
        "Pythia+Hermes-O speedup",
        "gain over Pythia",
    ]);
    let mut prev = f64::INFINITY;
    let mut monotone_non_increasing = true;
    for lat in lats {
        let (tag, cfg) = lat_cfg(lat);
        let v: Vec<f64> = subsuite
            .iter()
            .map(|spec| {
                let b = run_cached(bt, &bc, spec, &scale);
                run_cached(&tag, &cfg, spec, &scale).ipc / b.ipc
            })
            .collect();
        let sp = geomean(&v);
        if sp > prev + 0.003 {
            monotone_non_increasing = false;
        }
        prev = sp;
        t.row(&[
            lat.to_string(),
            f3(sp),
            format!("{:+.1}%", (sp / geomean(&pythia_sp) - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Pythia alone: {:.3}. Speedup decays with issue latency but stays above Pythia even at 24 cycles: {} (paper: +5.7% at 0 cycles, +3.6% at 24).",
        geomean(&pythia_sp),
        if monotone_non_increasing { "monotone shape reproduced" } else { "non-monotone at this scale" },
    );
    emit(
        "fig17c",
        "Sensitivity to Hermes request issue latency",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
