//! Fig. 3 — average ROB-stall cycles per off-chip load and the portion
//! removable by eliminating the on-chip cache-hierarchy access latency.

use hermes_bench::{configs, emit, f3, pct, run_suite, Scale, Table};
use hermes_trace::Category;

fn main() {
    let scale = Scale::from_args();
    let (tag, cfg) = configs::pythia();
    let runs = run_suite(tag, &cfg, &scale);

    let mut t = Table::new(&[
        "category",
        "stall cycles per off-chip load",
        "on-chip (removable) portion",
        "removable share",
    ]);
    let mut all_stall = Vec::new();
    let mut all_onchip = Vec::new();
    for cat in Category::ALL {
        let rows: Vec<_> = runs.iter().filter(|(s, _)| s.category == cat).collect();
        if rows.is_empty() {
            continue;
        }
        let n = rows.len() as f64;
        let stall: f64 = rows.iter().map(|(_, r)| r.stalls_per_offchip).sum::<f64>() / n;
        let onchip: f64 = rows.iter().map(|(_, r)| r.onchip_portion).sum::<f64>() / n;
        all_stall.push(stall);
        all_onchip.push(onchip);
        t.row(&[
            cat.label().to_string(),
            f3(stall),
            f3(onchip),
            pct(onchip / stall.max(1e-9)),
        ]);
    }
    let avg_stall = hermes_types::mean(&all_stall);
    let avg_onchip = hermes_types::mean(&all_onchip);
    t.row(&[
        "AVG".to_string(),
        f3(avg_stall),
        f3(avg_onchip),
        pct(avg_onchip / avg_stall.max(1e-9)),
    ]);
    let summary = format!(
        "An off-chip load stalls the core for {:.1} cycles on average; {} of that is on-chip hierarchy traversal Hermes can remove (paper: 147.1 cycles, 40.1%).",
        avg_stall,
        pct(avg_onchip / avg_stall.max(1e-9)),
    );
    emit(
        "fig03",
        "Stall cycles caused by off-chip loads",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
