//! Fig. 12 — single-core speedups: Hermes-P/O alone, Pythia, and
//! Pythia + Hermes-P/O, normalized to no-prefetching.

use hermes::PredictorKind;
use hermes_bench::{configs, emit, run_suite, speedup_table, speedups, Scale};

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);

    let mut rows = Vec::new();
    for (label, (tag, cfg)) in [
        ("Hermes-P", configs::hermes_alone('p', PredictorKind::Popet)),
        ("Hermes-O", configs::hermes_alone('o', PredictorKind::Popet)),
        ("Pythia (baseline)", {
            let (t, c) = configs::pythia();
            (t.to_string(), c)
        }),
        (
            "Pythia + Hermes-P",
            configs::pythia_hermes('p', PredictorKind::Popet),
        ),
        (
            "Pythia + Hermes-O",
            configs::pythia_hermes('o', PredictorKind::Popet),
        ),
    ] {
        let runs = run_suite(&tag, &cfg, &scale);
        rows.push((label.to_string(), speedups(&base, &runs)));
    }
    let geo = |r: &Vec<(hermes_trace::Category, f64)>| {
        hermes_types::geomean(&r.iter().map(|&(_, v)| v).collect::<Vec<_>>())
    };
    let summary = format!(
        "Geomean speedups over no-prefetching: Hermes-P {:.3}, Hermes-O {:.3}, Pythia {:.3}, Pythia+Hermes-P {:.3}, Pythia+Hermes-O {:.3} (paper: 1.089, 1.115, 1.205, 1.247, 1.256). Shape check: Hermes stacks on Pythia; O beats P.",
        geo(&rows[0].1), geo(&rows[1].1), geo(&rows[2].1), geo(&rows[3].1), geo(&rows[4].1),
    );
    emit(
        "fig12",
        "Single-core speedup",
        &format!("{}\n{}", speedup_table(&rows), summary),
        &scale,
    );
}
