//! Fig. 14 — Hermes with different off-chip predictors (HMP, TTP, POPET)
//! and the Ideal oracle, all combined with Pythia.

use hermes::PredictorKind;
use hermes_bench::{configs, emit, run_suite, speedup_table, speedups, Scale};

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);

    let mut rows = Vec::new();
    let (pt, pc) = configs::pythia();
    rows.push((
        "Pythia (baseline)".to_string(),
        speedups(&base, &run_suite(pt, &pc, &scale)),
    ));
    for pred in [
        PredictorKind::Hmp,
        PredictorKind::Ttp,
        PredictorKind::Popet,
        PredictorKind::Ideal,
    ] {
        let (tag, cfg) = configs::pythia_hermes('o', pred);
        let label = format!("Pythia + Hermes-{}", pred.label());
        rows.push((label, speedups(&base, &run_suite(&tag, &cfg, &scale))));
    }
    let geo = |r: &Vec<(hermes_trace::Category, f64)>| {
        hermes_types::geomean(&r.iter().map(|&(_, v)| v).collect::<Vec<_>>())
    };
    let popet_gain = geo(&rows[3].1) / geo(&rows[0].1) - 1.0;
    let ideal_gain = geo(&rows[4].1) / geo(&rows[0].1) - 1.0;
    let summary = format!(
        "Over Pythia: Hermes-HMP {:+.1}%, Hermes-TTP {:+.1}%, Hermes-POPET {:+.1}%, Ideal {:+.1}% (paper: +0.8%, +1.7%, +5.4%, +6.2%). POPET reaches {:.0}% of the Ideal upside (paper: ~90%). Caveat: at short windows TTP behaves near-ideal because the LLC never churns (see fig09 note); the paper's TTP penalty needs paper-scale windows.",
        (geo(&rows[1].1) / geo(&rows[0].1) - 1.0) * 100.0,
        (geo(&rows[2].1) / geo(&rows[0].1) - 1.0) * 100.0,
        popet_gain * 100.0,
        ideal_gain * 100.0,
        100.0 * popet_gain / ideal_gain.max(1e-9),
    );
    emit(
        "fig14",
        "Hermes with different off-chip predictors",
        &format!("{}\n{}", speedup_table(&rows), summary),
        &scale,
    );
}
