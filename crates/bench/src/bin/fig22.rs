//! Fig. 22 (Appendix B.4) — main-memory request overhead of each
//! prefetcher alone and combined with Hermes.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{configs, emit, pct, run_suite, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);

    let overhead = |runs: &[(hermes_trace::WorkloadSpec, hermes_bench::RunLite)]| -> f64 {
        hermes_types::mean(
            &base
                .iter()
                .zip(runs)
                .map(|((_, b), (_, x))| x.mm_requests / b.mm_requests.max(1.0) - 1.0)
                .collect::<Vec<_>>(),
        )
    };

    let mut t = Table::new(&["prefetcher", "alone", "+Hermes-O", "Hermes adds"]);
    for pf in PrefetcherKind::PAPER_SET {
        let cfg = SystemConfig::baseline_1c().with_prefetcher(pf);
        let alone = overhead(&run_suite(&format!("{}-only", pf.label()), &cfg, &scale));
        let with_h = overhead(&run_suite(
            &format!("{}+hermesO", pf.label()),
            &cfg.clone()
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
            &scale,
        ));
        t.row(&[
            pf.label().to_string(),
            pct(alone),
            pct(with_h),
            pct(with_h - alone),
        ]);
    }
    let summary = "Shape check vs paper (Fig. 22): adding Hermes to any prefetcher costs only a few percent extra main-memory requests (paper: +5.8%..+15.6%), far below the prefetchers' own overhead.";
    emit(
        "fig22",
        "Main-memory request overhead by prefetcher",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
