//! Fig. 17 (second, τ_act) — effect of the activation threshold on
//! POPET's accuracy/coverage and Hermes' speedup.

use hermes::{HermesConfig, PopetConfig, PredictorKind};
use hermes_bench::{configs, cross, emit, f3, pct, prewarm, run_cached, Scale, Table};
use hermes_sim::SystemConfig;
use hermes_types::geomean;

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();

    let taus: Vec<i32> = (-38..=2).step_by(4).collect();
    let tau_cfg = |tau: i32| {
        SystemConfig::baseline_1c()
            .with_popet(PopetConfig::paper().with_tau_act(tau))
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
    };

    // Batch-simulate the whole τ_act sweep before the measurement loop.
    let (bt, bc) = configs::nopf();
    let mut grid: Vec<(String, SystemConfig)> = vec![(bt.to_string(), bc.clone())];
    for &tau in &taus {
        grid.push((format!("pythia+hermes-tau{tau}"), tau_cfg(tau)));
    }
    prewarm(cross(&grid, &subsuite), &scale);

    let mut t = Table::new(&["tau_act", "accuracy", "coverage", "Pythia+Hermes speedup"]);
    let mut accs = Vec::new();
    let mut covs = Vec::new();
    for &tau in &taus {
        let cfg = tau_cfg(tau);
        let mut acc = Vec::new();
        let mut cov = Vec::new();
        let mut sp = Vec::new();
        for spec in &subsuite {
            let b = run_cached(bt, &bc, spec, &scale);
            let r = run_cached(&format!("pythia+hermes-tau{tau}"), &cfg, spec, &scale);
            acc.push(r.accuracy);
            cov.push(r.coverage);
            sp.push(r.ipc / b.ipc);
        }
        let (a, c) = (hermes_types::mean(&acc), hermes_types::mean(&cov));
        accs.push(a);
        covs.push(c);
        t.row(&[tau.to_string(), pct(a), pct(c), f3(geomean(&sp))]);
    }
    let acc_rises = accs.windows(2).filter(|w| w[1] >= w[0] - 0.02).count();
    let cov_falls = covs.windows(2).filter(|w| w[1] <= w[0] + 0.02).count();
    let summary = format!(
        "As τ_act rises, accuracy rises ({}/{} steps) and coverage falls ({}/{} steps) — the paper's trade-off; τ_act = −18 balances both (Table 2).",
        acc_rises,
        accs.len() - 1,
        cov_falls,
        covs.len() - 1,
    );
    emit(
        "fig18t",
        "Activation-threshold sweep",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
