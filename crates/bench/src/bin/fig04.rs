//! Fig. 4 — potential of Ideal Hermes: (a) by itself and with Pythia;
//! (b) combined with Bingo, SPP, MLOP, and SMS.

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{configs, emit, run_suite, speedup_table, speedups, Scale};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);

    // (a) Ideal Hermes alone, Pythia, Pythia + Ideal.
    let (it, ic) = configs::hermes_alone('o', PredictorKind::Ideal);
    let (pt, pc) = configs::pythia();
    let (pit, pic) = configs::pythia_hermes('o', PredictorKind::Ideal);
    let rows_a = vec![
        (
            "Ideal Hermes".to_string(),
            speedups(&base, &run_suite(&it, &ic, &scale)),
        ),
        (
            "Pythia (baseline)".to_string(),
            speedups(&base, &run_suite(pt, &pc, &scale)),
        ),
        (
            "Pythia + Ideal Hermes".to_string(),
            speedups(&base, &run_suite(&pit, &pic, &scale)),
        ),
    ];

    // (b) Each prefetcher with and without Ideal Hermes.
    let mut rows_b = Vec::new();
    for pf in PrefetcherKind::PAPER_SET {
        if pf == PrefetcherKind::Pythia {
            continue; // covered in (a)
        }
        let cfg = SystemConfig::baseline_1c().with_prefetcher(pf);
        let tag = format!("{}-only", pf.label());
        let alone = run_suite(&tag, &cfg, &scale);
        let cfg_h = cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal));
        let tag_h = format!("{}+idealhermes", pf.label());
        let with_h = run_suite(&tag_h, &cfg_h, &scale);
        rows_b.push((pf.label().to_string(), speedups(&base, &alone)));
        rows_b.push((
            format!("{} + Ideal Hermes", pf.label()),
            speedups(&base, &with_h),
        ));
    }

    let body = format!(
        "### (a) Ideal Hermes with the baseline prefetcher\n\n{}\n### (b) Ideal Hermes with other prefetchers\n\n{}",
        speedup_table(&rows_a),
        speedup_table(&rows_b),
    );
    emit(
        "fig04",
        "Potential performance of Ideal Hermes (speedup vs no-prefetching)",
        &body,
        &scale,
    );
}
