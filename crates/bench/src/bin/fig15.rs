//! Fig. 15 — (a) reduction in off-chip-load stall cycles with Hermes
//! (box-and-whisker distribution); (b) overhead in main-memory requests.

use hermes::PredictorKind;
use hermes_bench::{configs, emit, f3, pct, run_suite, Scale, Table};
use hermes_types::BoxplotSummary;

fn main() {
    let scale = Scale::from_args();
    let (bt, bc) = configs::nopf();
    let base = run_suite(bt, &bc, &scale);
    let (pt, pc) = configs::pythia();
    let pythia = run_suite(pt, &pc, &scale);
    let (ht, hc) = configs::hermes_alone('o', PredictorKind::Popet);
    let hermes_alone = run_suite(&ht, &hc, &scale);
    let (ct, cc) = configs::pythia_hermes('o', PredictorKind::Popet);
    let combo = run_suite(&ct, &cc, &scale);

    // (a) Per-trace stall-cycle reduction of Pythia+Hermes over Pythia.
    let reductions: Vec<f64> = pythia
        .iter()
        .zip(&combo)
        .map(|((_, p), (_, c))| 1.0 - c.stall_offchip / p.stall_offchip.max(1.0))
        .collect();
    let bp = BoxplotSummary::from_samples(&reductions).expect("nonempty suite");
    let mut ta = Table::new(&["statistic", "stall-cycle reduction"]);
    for (k, v) in [
        ("min", bp.min),
        ("whisker lo", bp.whisker_lo),
        ("q1", bp.q1),
        ("median", bp.median),
        ("mean", bp.mean),
        ("q3", bp.q3),
        ("whisker hi", bp.whisker_hi),
        ("max", bp.max),
    ] {
        ta.row(&[k.to_string(), pct(v)]);
    }

    // (b) Main-memory request overhead over the no-prefetching system.
    let overhead = |runs: &[(hermes_trace::WorkloadSpec, hermes_bench::RunLite)]| -> f64 {
        let pairs: Vec<f64> = base
            .iter()
            .zip(runs)
            .map(|((_, b), (_, x))| x.mm_requests / b.mm_requests.max(1.0) - 1.0)
            .collect();
        hermes_types::mean(&pairs)
    };
    let (oh_h, oh_p, oh_c) = (overhead(&hermes_alone), overhead(&pythia), overhead(&combo));
    let mut tb = Table::new(&["config", "extra main-memory requests vs no-pf"]);
    tb.row(&["Hermes-O".to_string(), pct(oh_h)]);
    tb.row(&["Pythia".to_string(), pct(oh_p)]);
    tb.row(&["Pythia + Hermes-O".to_string(), pct(oh_c)]);

    let geo_sp = |runs: &[(hermes_trace::WorkloadSpec, hermes_bench::RunLite)]| {
        let v: Vec<f64> = base
            .iter()
            .zip(runs)
            .map(|((_, b), (_, x))| x.ipc / b.ipc)
            .collect();
        hermes_types::geomean(&v)
    };
    let summary = format!(
        "Mean stall-cycle reduction {} (paper: 16.2%, up to 51.8%). Request overhead per 1% speedup: Hermes {} , Pythia {} (paper: ~0.5% vs ~2%).",
        pct(bp.mean),
        f3(oh_h * 100.0 / ((geo_sp(&hermes_alone) - 1.0) * 100.0).max(1e-9)),
        f3(oh_p * 100.0 / ((geo_sp(&pythia) - 1.0) * 100.0).max(1e-9)),
    );
    let body = format!(
        "### (a) Off-chip stall-cycle reduction (Pythia+Hermes vs Pythia)\n\n{}\n### (b) Main-memory request overhead\n\n{}\n{}",
        ta.to_markdown(),
        tb.to_markdown(),
        summary
    );
    emit(
        "fig15",
        "Stall-cycle reduction and memory-request overhead",
        &body,
        &scale,
    );
}
