//! `filter_sweep` — un-inverting the sharing sweep with coherence-aware
//! prediction and the second-level speculative-read filter.
//!
//! Sweeps shared-access fraction over the sharing suite with MESI
//! coherence on, comparing four systems at every point: the coherent
//! baseline, raw Hermes-O/POPET (the `sharing_sweep` configuration whose
//! speedup inverts under heavy sharing), POPET with the coherence-derived
//! features and the split training label (`+coh`), and that plus the
//! per-PC speculative-read filter (`+coh+filter`). Alongside IPC the
//! table tracks what the filter is for: wasted speculative DRAM reads —
//! Hermes requests launched for loads that then resolved on-chip out of
//! a dirty intervention or a racing RFO — and predictor precision
//! (TP / (TP+FP)) from the confusion matrices. The filter also guards
//! bandwidth: no speculative read fires into a channel whose read queue
//! is above quarter occupancy, which is what turns correct predictions
//! into losses on a four-core single-channel system.
//!
//! Flags: the usual `--quick` / `--full` / `--record` / `--jobs N`, plus
//! `--smoke` — a CI-scale mode (2 cores, tiny windows, reduced grid).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_suite, speedup_table, speedups, RunLite, Scale, Table};
use hermes_cache::CoherenceConfig;
use hermes_sim::SystemConfig;
use hermes_trace::{suite, WorkloadSpec};
use hermes_types::geomean;

fn main() {
    let mut scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (cores, fractions): (usize, &[u32]) = if smoke {
        scale.warmup = 2_000;
        scale.instr = 6_000;
        (2, &[0, 500])
    } else {
        (4, &[0, 250, 500])
    };

    let mut t = Table::new(&[
        "shared",
        "IPC base",
        "spd raw",
        "spd +coh",
        "spd +coh+filt",
        "wasted raw",
        "wasted +filt",
        "prec raw",
        "prec +coh",
    ]);
    let mut speedup_rows = Vec::new();
    for &frac in fractions {
        scale.suite = suite::sharing_suite(frac);
        let base_cfg = SystemConfig {
            cores,
            ..SystemConfig::baseline_1c()
        }
        .with_coherence(CoherenceConfig::baseline());
        let raw_cfg = base_cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let coh_cfg = base_cfg
            .clone()
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet).with_coh_features());
        let filt_cfg = base_cfg.clone().with_hermes(
            HermesConfig::hermes_o(PredictorKind::Popet)
                .with_coh_features()
                .with_filter(),
        );
        let tag = format!("filt{frac}-{cores}c");
        let base = run_suite(&format!("{tag}-base"), &base_cfg, &scale);
        let raw = run_suite(&format!("{tag}-hermesO-popet"), &raw_cfg, &scale);
        let coh = run_suite(&format!("{tag}-hermesO-coh"), &coh_cfg, &scale);
        let filt = run_suite(&format!("{tag}-hermesO-coh-filter"), &filt_cfg, &scale);

        let gm = |rs: &[(WorkloadSpec, RunLite)]| {
            geomean(&rs.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>())
        };
        let mean = |rs: &[(WorkloadSpec, RunLite)], f: &dyn Fn(&RunLite) -> f64| {
            rs.iter().map(|(_, r)| f(r)).sum::<f64>() / rs.len() as f64
        };
        // Precision over the whole suite from the summed confusion
        // matrices (a per-workload mean would overweight tiny matrices).
        let precision = |rs: &[(WorkloadSpec, RunLite)]| {
            let tp: f64 = rs.iter().map(|(_, r)| r.pred_tp).sum();
            let fp: f64 = rs.iter().map(|(_, r)| r.pred_fp).sum();
            if tp + fp == 0.0 {
                1.0
            } else {
                tp / (tp + fp)
            }
        };
        let ipc_b = gm(&base);
        t.row(&[
            format!("{:.0}%", frac as f64 / 10.0),
            f3(ipc_b),
            f3(gm(&raw) / ipc_b),
            f3(gm(&coh) / ipc_b),
            f3(gm(&filt) / ipc_b),
            f3(mean(&raw, &|r| r.spec_reads_wasted)),
            f3(mean(&filt, &|r| r.spec_reads_wasted)),
            f3(precision(&raw)),
            f3(precision(&coh)),
        ]);
        speedup_rows.push((format!("{tag}-raw"), speedups(&base, &raw)));
        speedup_rows.push((format!("{tag}-coh+filter"), speedups(&base, &filt)));
    }

    let body = format!(
        "Sharing suite (producer-consumer ring + shared-hot-set mix), \
         {}+{} instructions/core on {} cores, MESI coherence on. `raw` is \
         the five-feature POPET of `sharing_sweep`; `+coh` adds the three \
         coherence-derived features and the split training label (loads \
         served by a dirty intervention or a racing RFO train as \
         *on-chip*); `+coh+filt` adds the per-PC second-level filter \
         gating each speculative DRAM read on learned usefulness (wasted \
         reads penalized 2:1), a hard veto when the line is known \
         remote-Modified or an upgrade is in flight, and a bandwidth \
         guard that skips firing into a channel read queue above quarter \
         occupancy. `wasted` is speculative DRAM reads per core whose \
         load then resolved on-chip; `prec` is suite-wide predictor \
         precision TP/(TP+FP).\n\n{}\n\
         Per-category speedup by sharing point:\n\n{}\n\
         Reading: under sharing, raw POPET mislabels every coherence \
         miss as off-chip, firing speculative DRAM reads that burn \
         bandwidth and stall genuine fills — the inverted (<1) speedups \
         `sharing_sweep` shows. The coherence features lift precision by \
         separating intervention-bound loads; the filter then suppresses \
         the remaining wasted reads, so Hermes degrades to no worse than \
         the baseline where sharing is heaviest while keeping its win on \
         the private fraction.",
        scale.warmup,
        scale.instr,
        cores,
        t.to_markdown(),
        speedup_table(&speedup_rows),
    );
    emit(
        "filter_sweep",
        "Coherence-aware POPET + speculative-read filter vs raw Hermes under sharing",
        &body,
        &scale,
    );
}
