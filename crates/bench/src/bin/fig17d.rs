//! Fig. 17d — sensitivity to on-chip cache-hierarchy access latency
//! (total 40 → 65 cycles; L1/L2 fixed, LLC latency varied).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{cross, emit, f3, prewarm, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

/// One latency point's configurations, in `[baseline, Pythia,
/// Pythia+Hermes-P, Pythia+Hermes-O]` order. Single source for both the
/// prewarm grid and the measurement loop, so the tags can't drift apart.
/// `total` is the load-to-use LLC latency; L1 (5) + L2 (10) stay fixed.
fn point_cfgs(total: u32) -> [(String, SystemConfig); 4] {
    let llc_lat = total - 15;
    [
        (
            format!("lat{total}-nopf"),
            SystemConfig::baseline_1c()
                .with_llc_latency(llc_lat)
                .with_prefetcher(PrefetcherKind::None),
        ),
        (
            format!("lat{total}-pythia"),
            SystemConfig::baseline_1c().with_llc_latency(llc_lat),
        ),
        (
            format!("lat{total}-pythia+hermesP"),
            SystemConfig::baseline_1c()
                .with_llc_latency(llc_lat)
                .with_hermes(HermesConfig::hermes_p(PredictorKind::Popet)),
        ),
        (
            format!("lat{total}-pythia+hermesO"),
            SystemConfig::baseline_1c()
                .with_llc_latency(llc_lat)
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ]
}

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();

    let totals = [40u32, 45, 50, 55, 60, 65];

    // Batch-simulate the whole latency sweep before the measurement loop.
    let grid: Vec<(String, SystemConfig)> =
        totals.iter().flat_map(|&total| point_cfgs(total)).collect();
    prewarm(cross(&grid, &subsuite), &scale);

    let mut t = Table::new(&[
        "hierarchy latency",
        "Pythia",
        "Pythia+Hermes-P",
        "Pythia+Hermes-O",
        "Hermes-O gain",
    ]);
    let mut gains = Vec::new();
    for total in totals {
        let [base, p_cfg, hp_cfg, ho_cfg] = point_cfgs(total);
        let sp = |(tag, cfg): &(String, SystemConfig)| -> f64 {
            let v: Vec<f64> = subsuite
                .iter()
                .map(|spec| {
                    let b = run_cached(&base.0, &base.1, spec, &scale);
                    run_cached(tag, cfg, spec, &scale).ipc / b.ipc
                })
                .collect();
            geomean(&v)
        };
        let pythia = sp(&p_cfg);
        let hp = sp(&hp_cfg);
        let ho = sp(&ho_cfg);
        gains.push(ho / pythia - 1.0);
        t.row(&[
            total.to_string(),
            f3(pythia),
            f3(hp),
            f3(ho),
            format!("{:+.1}%", (ho / pythia - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Hermes' gain grows with hierarchy latency: {:+.1}% at 40 cycles vs {:+.1}% at 65 (paper: +3.6% vs +6.2%) — slower caches mean more removable latency.",
        gains[0] * 100.0,
        gains[gains.len() - 1] * 100.0,
    );
    emit(
        "fig17d",
        "Sensitivity to cache-hierarchy access latency",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
