//! Fig. 17d — sensitivity to on-chip cache-hierarchy access latency
//! (total 40 → 65 cycles; L1/L2 fixed, LLC latency varied).

use hermes::{HermesConfig, PredictorKind};
use hermes_bench::{emit, f3, run_cached, Scale, Table};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::SystemConfig;
use hermes_types::geomean;

fn main() {
    let scale = Scale::from_args();
    let subsuite = scale.sweep_suite();

    let mut t = Table::new(&[
        "hierarchy latency",
        "Pythia",
        "Pythia+Hermes-P",
        "Pythia+Hermes-O",
        "Hermes-O gain",
    ]);
    let mut gains = Vec::new();
    for total in [40u32, 45, 50, 55, 60, 65] {
        let llc_lat = total - 15; // L1 (5) + L2 (10) fixed
        let base_cfg = SystemConfig::baseline_1c()
            .with_llc_latency(llc_lat)
            .with_prefetcher(PrefetcherKind::None);
        let sp = |tag: &str, cfg: &SystemConfig| -> f64 {
            let v: Vec<f64> = subsuite
                .iter()
                .map(|spec| {
                    let b = run_cached(&format!("lat{total}-nopf"), &base_cfg, spec, &scale);
                    run_cached(&format!("lat{total}-{tag}"), cfg, spec, &scale).ipc / b.ipc
                })
                .collect();
            geomean(&v)
        };
        let pythia = sp(
            "pythia",
            &SystemConfig::baseline_1c().with_llc_latency(llc_lat),
        );
        let hp = sp(
            "pythia+hermesP",
            &SystemConfig::baseline_1c()
                .with_llc_latency(llc_lat)
                .with_hermes(HermesConfig::hermes_p(PredictorKind::Popet)),
        );
        let ho = sp(
            "pythia+hermesO",
            &SystemConfig::baseline_1c()
                .with_llc_latency(llc_lat)
                .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        );
        gains.push(ho / pythia - 1.0);
        t.row(&[
            total.to_string(),
            f3(pythia),
            f3(hp),
            f3(ho),
            format!("{:+.1}%", (ho / pythia - 1.0) * 100.0),
        ]);
    }
    let summary = format!(
        "Hermes' gain grows with hierarchy latency: {:+.1}% at 40 cycles vs {:+.1}% at 65 (paper: +3.6% vs +6.2%) — slower caches mean more removable latency.",
        gains[0] * 100.0,
        gains[gains.len() - 1] * 100.0,
    );
    emit(
        "fig17d",
        "Sensitivity to cache-hierarchy access latency",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
