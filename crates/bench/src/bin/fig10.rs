//! Fig. 10 — POPET accuracy/coverage with each program feature alone and
//! with features stacked in the paper's order.

use hermes::{Feature, HermesConfig, PopetConfig, PredictorKind};
use hermes_bench::{emit, pct, run_suite, Scale, Table};
use hermes_sim::SystemConfig;

fn main() {
    let scale = Scale::from_args();
    // The paper's Fig. 10 x-axis: each feature individually, then stacked
    // combinations 1+2, 1+2+3, 1+2+3+4, all.
    let f = Feature::SELECTED;
    let singles: Vec<(String, Vec<Feature>)> = f
        .iter()
        .map(|&feat| (feat.label().to_string(), vec![feat]))
        .collect();
    let stacked: Vec<(String, Vec<Feature>)> = (2..=5)
        .map(|k| {
            let set: Vec<Feature> = f.iter().take(k).copied().collect();
            let label = if k == 5 {
                "All (POPET)".to_string()
            } else {
                format!("first {k} stacked")
            };
            (label, set)
        })
        .collect();

    let mut t = Table::new(&["feature set", "accuracy", "coverage"]);
    for (label, feats) in singles.iter().chain(&stacked) {
        let popet = PopetConfig::with_features(feats);
        let cfg = SystemConfig::baseline_1c()
            .with_popet(popet)
            .with_hermes(HermesConfig::passive(PredictorKind::Popet));
        let tag = format!(
            "popet-f{}",
            feats
                .iter()
                .map(|x| format!("{:?}", x))
                .collect::<Vec<_>>()
                .join("-")
        );
        let runs = run_suite(&tag, &cfg, &scale);
        let n = runs.len() as f64;
        let acc: f64 = runs.iter().map(|(_, r)| r.accuracy).sum::<f64>() / n;
        let cov: f64 = runs.iter().map(|(_, r)| r.coverage).sum::<f64>() / n;
        t.row(&[label.clone(), pct(acc), pct(cov)]);
    }
    let summary = "Shape check vs paper: individual features span a wide accuracy/coverage range, and the full five-feature POPET beats every individual feature on both metrics.";
    emit(
        "fig10",
        "POPET features individually and stacked",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
