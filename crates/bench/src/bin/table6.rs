//! Table 6 — storage overhead of every evaluated mechanism, computed from
//! the live structures.

use hermes::storage;
use hermes_bench::{emit, Scale, Table};
use hermes_prefetch::{build, PrefetcherKind};

fn main() {
    let scale = Scale::from_args();
    let mut t = Table::new(&["mechanism", "size (KB)", "paper (KB)"]);
    for (pred, paper) in storage::table6_predictors().iter().zip(["11", "1536", "4"]) {
        t.row(&[
            pred.structure.clone(),
            format!("{:.1}", pred.kb()),
            paper.to_string(),
        ]);
    }
    for (pf, paper) in PrefetcherKind::PAPER_SET
        .iter()
        .zip(["25.5", "46", "39.3", "8", "20"])
    {
        let p = build(*pf);
        t.row(&[
            p.name().to_string(),
            format!("{:.1}", p.storage_bits() as f64 / 8.0 / 1024.0),
            paper.to_string(),
        ]);
    }
    let summary = "Hermes-with-POPET is the smallest mechanism by an order of magnitude over every prefetcher and three orders over TTP, matching the paper's cost argument.";
    emit(
        "table6",
        "Storage overhead of all mechanisms",
        &format!("{}\n{}", t.to_markdown(), summary),
        &scale,
    );
}
