//! Criterion harness over the same per-cycle-path kernels `run_all`
//! embeds in the tracked `BENCH_<n>.json` trajectory (see
//! `hermes_bench::micro`): POPET inference, LLC lookup, and one cycle of
//! each core model. Criterion gives proper statistics for local
//! investigation; the `micro` module gives one cheap sample for the
//! archived trajectory — same kernels, two consumers.
//!
//! Each kernel is self-contained (builds its own state, runs a fixed
//! internal loop), so criterion times whole kernel invocations; the
//! reported per-invocation cost divided by the kernel's fixed iteration
//! count matches the `ns_per_op` the kernel itself reports.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hermes_bench::micro;

fn bench_cycle_paths(c: &mut Criterion) {
    c.bench_function("micro_popet_predict_train", |b| {
        b.iter(|| black_box(micro::popet_predict_train()))
    });
    c.bench_function("micro_llc_access_fill", |b| {
        b.iter(|| black_box(micro::llc_access_fill()))
    });
    c.bench_function("micro_legacy_core_cycle", |b| {
        b.iter(|| black_box(micro::legacy_core_cycle()))
    });
    c.bench_function("micro_ooo_core_cycle", |b| {
        b.iter(|| black_box(micro::ooo_core_cycle()))
    });
}

criterion_group!(
    name = cycle_path;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cycle_paths
);
criterion_main!(cycle_path);
