//! Criterion micro-benchmarks of the hot components: POPET
//! prediction/training, HMP, cache array operations, DRAM scheduling, and
//! branch prediction. These quantify the simulator's own costs and the
//! relative "hardware complexity" of the mechanisms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hermes::{Hmp, LoadContext, OffChipPredictor, Popet, Ttp};
use hermes_cache::{CacheArray, CacheConfig, ReplacementKind};
use hermes_cpu::branch::{BranchPredictor, PerceptronBp};
use hermes_dram::{DramConfig, MemoryController, ReqKind};
use hermes_types::{LineAddr, VirtAddr};

fn bench_popet(c: &mut Criterion) {
    let mut popet = Popet::default();
    let mut i = 0u64;
    c.bench_function("popet_predict_train", |b| {
        b.iter(|| {
            i += 1;
            let ctx =
                LoadContext::identity(0x400100 + (i % 16) * 4, VirtAddr::new(0x10_0000 + i * 64));
            let p = popet.predict(black_box(&ctx));
            popet.train(&ctx, &p, i.is_multiple_of(20));
            black_box(p.go_offchip)
        })
    });
}

fn bench_hmp_ttp(c: &mut Criterion) {
    let mut hmp = Hmp::new();
    let mut ttp = Ttp::default();
    let mut i = 0u64;
    c.bench_function("hmp_predict_train", |b| {
        b.iter(|| {
            i += 1;
            let ctx =
                LoadContext::identity(0x400100 + (i % 16) * 4, VirtAddr::new(0x20_0000 + i * 64));
            let p = hmp.predict(black_box(&ctx));
            hmp.train(&ctx, &p, i.is_multiple_of(20));
        })
    });
    c.bench_function("ttp_fill_predict_evict", |b| {
        b.iter(|| {
            i += 1;
            let line = LineAddr::new(i);
            ttp.on_cache_fill(black_box(line));
            let ctx = LoadContext::identity(0x400100, VirtAddr::new(i * 64));
            let p = ttp.predict(&ctx);
            if i.is_multiple_of(3) {
                ttp.on_llc_eviction(line);
            }
            black_box(p.go_offchip)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig::new("LLC", 3 << 20, 12, ReplacementKind::Ship, 64);
    let mut cache = CacheArray::new(&cfg);
    let mut i = 0u64;
    c.bench_function("llc_access_fill_ship", |b| {
        b.iter(|| {
            i += 1;
            let line = LineAddr::new(i % 100_000);
            if !cache.access(black_box(line), (i % 4096) as u16).hit {
                cache.fill(line, false, false, (i % 4096) as u16);
            }
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut mc = MemoryController::new(DramConfig::single_core());
    let mut out = Vec::new();
    let mut i = 0u64;
    c.bench_function("dram_enqueue_complete", |b| {
        b.iter(|| {
            i += 1;
            mc.enqueue_read(LineAddr::new(i * 97), i * 3, ReqKind::Demand);
            mc.pop_completions(i * 3, &mut out);
            black_box(out.len())
        })
    });
}

fn bench_branch(c: &mut Criterion) {
    let mut bp = PerceptronBp::new();
    let mut i = 0u64;
    c.bench_function("perceptron_branch_predict_train", |b| {
        b.iter(|| {
            i += 1;
            let pc = 0x400000 + (i % 64) * 4;
            let taken = !(i / 7).is_multiple_of(3);
            let p = bp.predict(black_box(pc));
            bp.train(pc, taken, p);
            black_box(p)
        })
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_popet, bench_hmp_ttp, bench_cache, bench_dram, bench_branch
);
criterion_main!(components);
