//! Criterion end-to-end benchmark: full-system simulation throughput
//! (simulated instructions per wall-second) for the three headline
//! configurations. This is the number that bounds how large a `--full`
//! sweep is practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hermes::{HermesConfig, PredictorKind};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::{System, SystemConfig};
use hermes_trace::suite;

const INSTR: u64 = 20_000;

fn bench_sim(c: &mut Criterion) {
    let spec = &suite::smoke_suite()[0];
    let mut g = c.benchmark_group("end_to_end");
    g.throughput(Throughput::Elements(INSTR));
    for (label, cfg) in [
        (
            "no-prefetching",
            SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
        ),
        ("pythia", SystemConfig::baseline_1c()),
        (
            "pythia+hermesO",
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
        ),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| System::new(cfg.clone(), std::slice::from_ref(spec)).run(2_000, INSTR))
        });
    }
    g.finish();
}

criterion_group!(
    name = end_to_end;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim
);
criterion_main!(end_to_end);
