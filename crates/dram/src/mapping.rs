//! Physical-address to DRAM-location mapping.
//!
//! Line-interleaved channel mapping (consecutive lines alternate channels,
//! maximising channel parallelism for streams), then column-major within a
//! channel so that consecutive same-channel lines share a row buffer —
//! the standard `row : bank : column : channel` layout.

use hermes_types::LineAddr;

use crate::config::DramConfig;

/// Where a cache line lives in the DRAM geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: usize,
    /// Flat bank index within the channel (rank × banks + bank).
    pub bank: usize,
    /// Row number within the bank.
    pub row: u64,
    /// Column (line slot) within the row.
    pub column: u64,
}

/// Maps a line address to its DRAM location under `cfg`'s geometry.
///
/// # Example
///
/// ```
/// use hermes_dram::{mapping::map_line, DramConfig};
/// use hermes_types::LineAddr;
///
/// let cfg = DramConfig::eight_core();
/// let loc = map_line(&cfg, LineAddr::new(5));
/// assert!(loc.channel < cfg.channels);
/// ```
pub fn map_line(cfg: &DramConfig, line: LineAddr) -> DramLocation {
    let n = line.raw();
    let channel = (n % cfg.channels as u64) as usize;
    let in_channel = n / cfg.channels as u64;
    let column = in_channel % cfg.lines_per_row();
    let after_col = in_channel / cfg.lines_per_row();
    let bank = (after_col % cfg.banks_per_channel() as u64) as usize;
    let row = after_col / cfg.banks_per_channel() as u64;
    DramLocation {
        channel,
        bank,
        row,
        column,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_interleave_channels() {
        let cfg = DramConfig::eight_core();
        let c0 = map_line(&cfg, LineAddr::new(0)).channel;
        let c1 = map_line(&cfg, LineAddr::new(1)).channel;
        assert_ne!(c0, c1);
    }

    #[test]
    fn same_channel_lines_share_row() {
        let cfg = DramConfig::single_core(); // 1 channel
        let a = map_line(&cfg, LineAddr::new(0));
        let b = map_line(&cfg, LineAddr::new(1));
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn row_crossing_changes_bank() {
        let cfg = DramConfig::single_core();
        let lpr = cfg.lines_per_row();
        let a = map_line(&cfg, LineAddr::new(0));
        let b = map_line(&cfg, LineAddr::new(lpr));
        assert_ne!((a.bank, a.row), (b.bank, b.row));
    }

    #[test]
    fn mapping_is_injective_over_window() {
        let cfg = DramConfig::eight_core();
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000u64 {
            let loc = map_line(&cfg, LineAddr::new(n));
            assert!(seen.insert((loc.channel, loc.bank, loc.row, loc.column)));
        }
    }
}
