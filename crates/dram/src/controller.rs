//! The memory controller: read/write scheduling and the Hermes merge path.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hermes_types::{Cycle, Hist, LineAddr};

use crate::config::DramConfig;
use crate::mapping::map_line;

/// Who issued a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// A demand miss escalated through the cache hierarchy.
    Demand,
    /// A prefetcher-generated read.
    Prefetch,
    /// A speculative Hermes request issued straight from the core (§6.2.1).
    Hermes,
}

/// Outcome of enqueueing a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueResult {
    /// Cycle at which the data will be available at the controller.
    pub completes_at: Cycle,
    /// Whether the request merged with an in-flight read to the same line
    /// (for a demand merging into a Hermes read, this is the paper's
    /// "regular load waits for the ongoing Hermes request").
    pub merged: bool,
}

/// A finished read, reported once per line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The line whose data arrived.
    pub line: LineAddr,
    /// Completion cycle.
    pub at: Cycle,
    /// Whether any demand request participated (original or merged). If
    /// false and `hermes_initiated` is true, Hermes drops the data without
    /// filling any cache (§6.2.2).
    pub demanded: bool,
    /// Whether the read was *started* by a Hermes request.
    pub hermes_initiated: bool,
    /// Whether any prefetch participated (controls prefetch-bit on fill).
    pub prefetch_involved: bool,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    completes_at: Cycle,
    demanded: bool,
    hermes_initiated: bool,
    prefetch_involved: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    /// Earliest cycle the bank accepts its next command. Column accesses
    /// to an open row pipeline at burst rate (tCCD); activations occupy
    /// the bank for tRCD (plus tRP on a conflict).
    ready: Cycle,
    open_row: Option<u64>,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Reads issued by demand misses.
    pub reads_demand: u64,
    /// Reads issued by prefetchers.
    pub reads_prefetch: u64,
    /// Reads issued by Hermes requests.
    pub reads_hermes: u64,
    /// Writebacks received.
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to a closed row.
    pub row_empty: u64,
    /// Row-buffer conflicts (precharge needed).
    pub row_conflicts: u64,
    /// Demand reads that merged into an in-flight Hermes read — the count
    /// of loads whose cache-hierarchy latency Hermes hid.
    pub demand_merged_into_hermes: u64,
    /// Completed Hermes reads that no demand ever claimed (dropped, the
    /// bandwidth cost of a false-positive prediction).
    pub hermes_dropped: u64,
    /// Sum over write enqueues of queue slots already busy at arrival in
    /// the pool serving writes (the dedicated write queue when
    /// configured, the shared read queue otherwise) — divide by `writes`
    /// for mean write-queue occupancy.
    pub wq_occupancy_sum: u64,
    /// Write enqueues that found every slot of their pool busy (the
    /// write had to wait for a slot before even contending for a bank).
    pub wq_full_stalls: u64,
    /// Read-queue occupancy observed by each new (non-merged) read at
    /// arrival, linear-bucketed per slot count ([`Hist::record_linear`];
    /// bucket 31 saturates). The distribution the speculative-read
    /// bandwidth guard actually gates on — `wq_occupancy_sum` averaged
    /// away exactly this shape.
    pub rq_occupancy_hist: Hist,
    /// Write-pool occupancy observed by each writeback at arrival,
    /// linear-bucketed (the histogram form of `wq_occupancy_sum`).
    pub wq_occupancy_hist: Hist,
    /// Queueing delay (slot wait: scheduled start minus arrival) of every
    /// read and write, log2-bucketed ([`Hist::record_log2`]).
    pub queue_delay_hist: Hist,
}

impl DramStats {
    /// Total main-memory read requests (the paper's Fig. 15b metric).
    pub fn total_reads(&self) -> u64 {
        self.reads_demand + self.reads_prefetch + self.reads_hermes
    }
}

/// See [module docs](self) and the crate-level description of the
/// reservation model.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_free: Vec<Cycle>,
    /// Per-channel read-queue slots: each holds the cycle it frees.
    rq_slots: Vec<Vec<Cycle>>,
    /// Per-channel dedicated write-queue slots (empty inner vectors when
    /// `wq_capacity` is unset and writes share the read queue).
    wq_slots: Vec<Vec<Cycle>>,
    inflight: HashMap<u64, Inflight>,
    heap: BinaryHeap<Reverse<(Cycle, u64)>>,
    stats: DramStats,
}

impl MemoryController {
    /// Builds a controller for `cfg`.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate();
        let nbanks = cfg.channels * cfg.banks_per_channel();
        Self {
            banks: vec![Bank::default(); nbanks],
            bus_free: vec![0; cfg.channels],
            rq_slots: vec![vec![0; cfg.rq_capacity]; cfg.channels],
            wq_slots: vec![vec![0; cfg.wq_capacity.unwrap_or(0)]; cfg.channels],
            inflight: HashMap::new(),
            heap: BinaryHeap::new(),
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Whether a read to `line` is currently in flight — the "check the
    /// main memory controller's RQ" step a regular LLC miss performs
    /// (paper step 3).
    pub fn has_inflight(&self, line: LineAddr) -> bool {
        self.inflight.contains_key(&line.raw())
    }

    fn schedule(&mut self, line: LineAddr, now: Cycle, is_write: bool) -> Cycle {
        let loc = map_line(&self.cfg, line);
        // Writes drain from a write buffer; defer them so reads win the
        // bank when both arrive together (simplified write-drain policy).
        let arrival = if is_write {
            now + 4 * self.cfg.tburst()
        } else {
            now
        };

        // Claim the earliest-free queue slot (finite queue => extra
        // queueing delay when oversubscribed). Writes use their own pool
        // when one is configured, so writeback bursts stop stealing
        // demand-read slots; otherwise they share the read queue
        // (historical behaviour).
        let dedicated_wq = is_write && !self.wq_slots[loc.channel].is_empty();
        let slots = if dedicated_wq {
            &mut self.wq_slots[loc.channel]
        } else {
            &mut self.rq_slots[loc.channel]
        };
        let busy = slots.iter().filter(|c| **c > arrival).count() as u64;
        if is_write {
            self.stats.wq_occupancy_sum += busy;
            self.stats.wq_occupancy_hist.record_linear(busy);
            if busy as usize == slots.len() {
                self.stats.wq_full_stalls += 1;
            }
        } else {
            self.stats.rq_occupancy_hist.record_linear(busy);
        }
        let slot = slots
            .iter_mut()
            .min_by_key(|c| **c)
            .expect("queue capacity validated nonzero");
        let start = arrival.max(*slot);
        self.stats
            .queue_delay_hist
            .record_log2(start.saturating_sub(arrival));

        let bank = &mut self.banks[loc.channel * self.cfg.banks_per_channel() + loc.bank];
        let t0 = start.max(bank.ready);
        // (latency to data, bank occupancy before the next command).
        let (access, occupy) = match bank.open_row {
            Some(r) if r == loc.row => {
                self.stats.row_hits += 1;
                // CAS to an open row: data after tCAS; the next CAS may
                // follow one burst later (tCCD pipelining).
                (self.cfg.tcas(), self.cfg.tburst())
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                (
                    self.cfg.trp() + self.cfg.trcd() + self.cfg.tcas(),
                    self.cfg.trp() + self.cfg.trcd() + self.cfg.tburst(),
                )
            }
            None => {
                self.stats.row_empty += 1;
                (
                    self.cfg.trcd() + self.cfg.tcas(),
                    self.cfg.trcd() + self.cfg.tburst(),
                )
            }
        };
        let data_at = t0 + access;
        let bus = &mut self.bus_free[loc.channel];
        let done = data_at.max(*bus) + self.cfg.tburst();
        *bus = done;
        bank.ready = t0 + occupy;
        bank.open_row = Some(loc.row);
        *slot = done;
        done
    }

    /// Enqueues a read. Merges with any in-flight read to the same line.
    pub fn enqueue_read(&mut self, line: LineAddr, now: Cycle, kind: ReqKind) -> EnqueueResult {
        if let Some(inf) = self.inflight.get_mut(&line.raw()) {
            match kind {
                ReqKind::Demand => {
                    if inf.hermes_initiated && !inf.demanded {
                        self.stats.demand_merged_into_hermes += 1;
                    }
                    inf.demanded = true;
                }
                ReqKind::Prefetch => inf.prefetch_involved = true,
                ReqKind::Hermes => {}
            }
            return EnqueueResult {
                completes_at: inf.completes_at,
                merged: true,
            };
        }
        match kind {
            ReqKind::Demand => self.stats.reads_demand += 1,
            ReqKind::Prefetch => self.stats.reads_prefetch += 1,
            ReqKind::Hermes => self.stats.reads_hermes += 1,
        }
        let completes_at = self.schedule(line, now, false);
        self.inflight.insert(
            line.raw(),
            Inflight {
                completes_at,
                demanded: kind == ReqKind::Demand,
                hermes_initiated: kind == ReqKind::Hermes,
                prefetch_involved: kind == ReqKind::Prefetch,
            },
        );
        self.heap.push(Reverse((completes_at, line.raw())));
        EnqueueResult {
            completes_at,
            merged: false,
        }
    }

    /// Enqueues a writeback (fire-and-forget; consumes bank and bus time).
    pub fn enqueue_write(&mut self, line: LineAddr, now: Cycle) {
        self.stats.writes += 1;
        let _ = self.schedule(line, now, true);
    }

    /// Drains completions with `at <= now` into `out` (cleared first).
    pub fn pop_completions(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        out.clear();
        while let Some(&Reverse((at, raw))) = self.heap.peek() {
            if at > now {
                break;
            }
            self.heap.pop();
            let inf = self
                .inflight
                .remove(&raw)
                .expect("heap entry without inflight record");
            if inf.hermes_initiated && !inf.demanded {
                self.stats.hermes_dropped += 1;
            }
            out.push(Completion {
                line: LineAddr::new(raw),
                at,
                demanded: inf.demanded,
                hermes_initiated: inf.hermes_initiated,
                prefetch_involved: inf.prefetch_involved,
            });
        }
    }

    /// The completion cycle of the earliest in-flight read, if any —
    /// the controller's contribution to idle-cycle fast-forward (writes
    /// are fire-and-forget and never produce an event).
    pub fn next_completion_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Read-queue pressure on `line`'s channel at `now`: the number of
    /// slots still reserved past `now`, and the *system* read capacity
    /// (per-channel slots × channels). This is the occupancy a Hermes
    /// request observes when it consults the controller (the paper's
    /// step 3); the speculative-read filter compares `busy` against a
    /// fraction of the returned capacity to skip firing into a congested
    /// channel, where the read would queue behind real demands instead
    /// of hiding latency. Scaling the capacity by channel count keeps
    /// that fractional threshold meaningful on multi-channel parts: each
    /// channel owns `1/channels` of the bandwidth, so the same absolute
    /// backlog is proportionally less alarming. Single-channel configs
    /// are unaffected.
    pub fn read_queue_pressure(&self, line: LineAddr, now: Cycle) -> (usize, usize) {
        let loc = map_line(&self.cfg, line);
        let slots = &self.rq_slots[loc.channel];
        (
            slots.iter().filter(|c| **c > now).count(),
            slots.len() * self.cfg.channels,
        )
    }

    /// Instantaneous queue occupancy across every channel at `now`:
    /// `(read slots busy, read capacity, write slots busy, write
    /// capacity)`. Write numbers are zero when writes share the read
    /// queue. Pure observation for interval telemetry — never consulted
    /// by scheduling decisions.
    pub fn queue_occupancy(&self, now: Cycle) -> (usize, usize, usize, usize) {
        let busy = |q: &[Vec<Cycle>]| {
            q.iter()
                .map(|s| s.iter().filter(|c| **c > now).count())
                .sum::<usize>()
        };
        let cap = |q: &[Vec<Cycle>]| q.iter().map(|s| s.len()).sum::<usize>();
        (
            busy(&self.rq_slots),
            cap(&self.rq_slots),
            busy(&self.wq_slots),
            cap(&self.wq_slots),
        )
    }

    /// Statistics so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Zeroes the statistics while preserving all timing and in-flight
    /// state (warmup boundary: destroying in-flight reads would strand
    /// their waiters).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// The minimum possible read latency (row hit, idle system) — a lower
    /// bound used by tests and by the Ideal-Hermes analysis.
    pub fn min_read_latency(&self) -> Cycle {
        self.cfg.tcas() + self.cfg.tburst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(DramConfig::single_core())
    }

    #[test]
    fn row_hit_faster_than_conflict() {
        let mut m = mc();
        let cfg = DramConfig::single_core();
        let lpr = cfg.lines_per_row();
        // First access opens row 0 (empty).
        let r1 = m.enqueue_read(LineAddr::new(0), 0, ReqKind::Demand);
        // Same row, next line: hit.
        let r2 = m.enqueue_read(LineAddr::new(1), 0, ReqKind::Demand);
        // Same bank different row (banks cycle after lines_per_row *
        // banks_per_channel lines): conflict.
        let same_bank_other_row = lpr * cfg.banks_per_channel() as u64;
        let r3 = m.enqueue_read(LineAddr::new(same_bank_other_row), 0, ReqKind::Demand);
        let l1 = r1.completes_at;
        let l2 = r2.completes_at - r1.completes_at;
        let l3 = r3.completes_at - r2.completes_at;
        assert_eq!(l1, cfg.trcd() + cfg.tcas() + cfg.tburst());
        assert!(l2 < l1, "row hit not faster: {l2} vs {l1}");
        assert!(l3 > l2, "conflict not slower than hit");
    }

    #[test]
    fn banks_overlap_but_bus_serializes() {
        let cfg = DramConfig::single_core();
        let mut m = mc();
        let lpr = cfg.lines_per_row();
        // Two different banks: activations overlap, bursts serialize.
        let a = m.enqueue_read(LineAddr::new(0), 0, ReqKind::Demand);
        let b = m.enqueue_read(LineAddr::new(lpr), 0, ReqKind::Demand);
        assert!(b.completes_at >= a.completes_at + cfg.tburst());
        assert!(b.completes_at < a.completes_at + cfg.trcd() + cfg.tcas());
    }

    #[test]
    fn merge_returns_same_completion() {
        let mut m = mc();
        let l = LineAddr::new(42);
        let a = m.enqueue_read(l, 0, ReqKind::Hermes);
        let b = m.enqueue_read(l, 5, ReqKind::Demand);
        assert!(b.merged);
        assert_eq!(a.completes_at, b.completes_at);
        assert_eq!(m.stats().demand_merged_into_hermes, 1);
        assert_eq!(m.stats().total_reads(), 1, "merge must not add traffic");
    }

    #[test]
    fn hermes_without_demand_is_dropped() {
        let mut m = mc();
        let l = LineAddr::new(7);
        let r = m.enqueue_read(l, 0, ReqKind::Hermes);
        let mut out = Vec::new();
        m.pop_completions(r.completes_at, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].hermes_initiated && !out[0].demanded);
        assert_eq!(m.stats().hermes_dropped, 1);
    }

    #[test]
    fn hermes_with_merged_demand_not_dropped() {
        let mut m = mc();
        let l = LineAddr::new(7);
        let r = m.enqueue_read(l, 0, ReqKind::Hermes);
        m.enqueue_read(l, 3, ReqKind::Demand);
        let mut out = Vec::new();
        m.pop_completions(r.completes_at, &mut out);
        assert!(out[0].demanded && out[0].hermes_initiated);
        assert_eq!(m.stats().hermes_dropped, 0);
    }

    #[test]
    fn hermes_losing_race_to_demand_adds_no_traffic() {
        // The demand load reaches the controller first (e.g. the predictor
        // fired late); the Hermes request must merge into the demand read
        // instead of issuing a second one, and nothing is ever dropped.
        let mut m = mc();
        let l = LineAddr::new(11);
        let d = m.enqueue_read(l, 0, ReqKind::Demand);
        let h = m.enqueue_read(l, 2, ReqKind::Hermes);
        assert!(h.merged, "late Hermes request must merge");
        assert_eq!(h.completes_at, d.completes_at);
        assert_eq!(
            m.stats().reads_hermes,
            0,
            "merged Hermes request is not a DRAM read"
        );
        assert_eq!(m.stats().total_reads(), 1);
        let mut out = Vec::new();
        m.pop_completions(d.completes_at, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].demanded && !out[0].hermes_initiated);
        assert_eq!(m.stats().hermes_dropped, 0);
        assert_eq!(m.stats().demand_merged_into_hermes, 0);
    }

    #[test]
    fn dropped_hermes_read_never_double_counts() {
        // A speculative read whose demand never shows up is dropped exactly
        // once: one reads_hermes, one hermes_dropped, one completion —
        // repeated draining must not report or count it again.
        let mut m = mc();
        let l = LineAddr::new(13);
        let r = m.enqueue_read(l, 0, ReqKind::Hermes);
        let mut out = Vec::new();
        m.pop_completions(r.completes_at, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(m.stats().reads_hermes, 1);
        assert_eq!(m.stats().hermes_dropped, 1);
        assert_eq!(m.stats().total_reads(), 1);
        m.pop_completions(r.completes_at + 1000, &mut out);
        assert!(out.is_empty(), "completion reported twice");
        assert_eq!(m.stats().hermes_dropped, 1, "drop counted twice");

        // A second speculative read to the same line is a genuinely new
        // access (the dropped data is gone) and accounts independently.
        let r2 = m.enqueue_read(l, r.completes_at + 2000, ReqKind::Hermes);
        assert!(!r2.merged, "must not merge with a completed (dropped) read");
        m.pop_completions(r2.completes_at, &mut out);
        assert_eq!(m.stats().reads_hermes, 2);
        assert_eq!(m.stats().hermes_dropped, 2);
    }

    #[test]
    fn demand_after_hermes_drop_is_a_fresh_read() {
        // §6.2.2: dropped data fills no cache, so a demand arriving after
        // the speculative read completed pays for its own DRAM access and
        // does not count as "merged into Hermes".
        let mut m = mc();
        let l = LineAddr::new(17);
        let h = m.enqueue_read(l, 0, ReqKind::Hermes);
        let mut out = Vec::new();
        m.pop_completions(h.completes_at, &mut out);
        assert_eq!(m.stats().hermes_dropped, 1);
        let d = m.enqueue_read(l, h.completes_at + 10, ReqKind::Demand);
        assert!(!d.merged, "demand must not merge with dropped data");
        assert_eq!(m.stats().reads_demand, 1);
        assert_eq!(m.stats().demand_merged_into_hermes, 0);
        assert_eq!(m.stats().total_reads(), 2, "drop costs one extra read");
    }

    #[test]
    fn completions_in_time_order() {
        let mut m = mc();
        for i in 0..20u64 {
            m.enqueue_read(LineAddr::new(i * 97), i, ReqKind::Demand);
        }
        let mut out = Vec::new();
        m.pop_completions(u64::MAX >> 1, &mut out);
        assert_eq!(out.len(), 20);
        for w in out.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn pop_respects_now() {
        let mut m = mc();
        let r = m.enqueue_read(LineAddr::new(1), 0, ReqKind::Demand);
        let mut out = Vec::new();
        m.pop_completions(r.completes_at - 1, &mut out);
        assert!(out.is_empty());
        assert!(m.has_inflight(LineAddr::new(1)));
        m.pop_completions(r.completes_at, &mut out);
        assert_eq!(out.len(), 1);
        assert!(!m.has_inflight(LineAddr::new(1)));
    }

    #[test]
    fn finite_rq_adds_queueing_delay() {
        let cfg = DramConfig {
            rq_capacity: 2,
            ..DramConfig::single_core()
        };
        let mut small = MemoryController::new(cfg);
        let mut latencies = Vec::new();
        for i in 0..8u64 {
            // All to different banks+rows to isolate queue effect.
            let r = small.enqueue_read(LineAddr::new(i * 1097), 0, ReqKind::Demand);
            latencies.push(r.completes_at);
        }
        // With only 2 slots the 8th request must wait for earlier ones.
        assert!(latencies[7] > latencies[1] + small.min_read_latency());
    }

    #[test]
    fn writes_counted_and_consume_bandwidth() {
        let mut m = mc();
        let before = m
            .enqueue_read(LineAddr::new(0), 0, ReqKind::Demand)
            .completes_at;
        let mut m2 = mc();
        for i in 0..16u64 {
            m2.enqueue_write(LineAddr::new(1000 + i), 0);
        }
        let after = m2
            .enqueue_read(LineAddr::new(0), 0, ReqKind::Demand)
            .completes_at;
        assert!(after > before, "writes should delay subsequent reads");
        assert_eq!(m2.stats().writes, 16);
    }

    #[test]
    fn dedicated_write_queue_shields_demand_reads_from_writeback_storms() {
        // Historical behaviour: fire-and-forget writebacks funnel through
        // the shared read-queue slots, so a storm of them starves an
        // unrelated demand read. With a dedicated write queue the read
        // claims a free read slot immediately and pays at most bank/bus
        // contention.
        let small_rq = DramConfig {
            rq_capacity: 2,
            ..DramConfig::single_core()
        };
        let shared = small_rq.clone();
        let split = small_rq.with_write_queue(16);
        let cfg = DramConfig::single_core();
        let lpr = cfg.lines_per_row();
        let storm: Vec<LineAddr> = (1..13u64)
            .map(|i| LineAddr::new(i * lpr)) // distinct banks/rows
            .collect();
        let read_line = LineAddr::new(7 * lpr + 5); // bank untouched late
        let run = |cfg: DramConfig| {
            let mut m = MemoryController::new(cfg);
            for &w in &storm {
                m.enqueue_write(w, 0);
            }
            m.enqueue_read(read_line, 0, ReqKind::Demand).completes_at
        };
        let with_shared = run(shared);
        let with_split = run(split);
        assert!(
            with_split < with_shared,
            "write queue must stop writebacks delaying reads: {with_split} vs {with_shared}"
        );
        // The shielded read pays only bank/bus tail-contention (the
        // write-deferral window plus one burst per storm write on the
        // shared bus), never the storm's full slot-queueing serialisation.
        let bus_tail = 4 * cfg.tburst() + storm.len() as u64 * cfg.tburst();
        assert!(
            with_split <= cfg.trcd() + cfg.tcas() + cfg.tburst() + bus_tail + cfg.trp(),
            "read behind a write queue should pay at most bus tail ({with_split})"
        );
        assert!(
            with_split * 2 < with_shared,
            "slot starvation should dominate the shared-queue delay: \
             {with_split} vs {with_shared}"
        );
    }

    #[test]
    fn write_queue_occupancy_counted() {
        let mut m = MemoryController::new(DramConfig::single_core().with_write_queue(2));
        for i in 0..4u64 {
            m.enqueue_write(LineAddr::new(1000 + i * 1097), 0);
        }
        let s = *m.stats();
        assert_eq!(s.writes, 4);
        // 1st write: 0 busy; 2nd: 1; 3rd and 4th: both slots busy.
        assert_eq!(s.wq_occupancy_sum, 1 + 2 + 2);
        assert_eq!(s.wq_full_stalls, 2);
        // The shared-queue mode counts against the read queue instead.
        let mut shared = MemoryController::new(DramConfig::single_core());
        shared.enqueue_write(LineAddr::new(1), 0);
        assert_eq!(shared.stats().wq_occupancy_sum, 0);
        shared.enqueue_write(LineAddr::new(2), 0);
        assert_eq!(shared.stats().wq_occupancy_sum, 1);
    }

    #[test]
    fn occupancy_histograms_track_queue_shape() {
        let mut m = MemoryController::new(DramConfig::single_core().with_write_queue(2));
        // Reads: first sees 0 busy, second sees 1, third sees 2 (all to
        // distinct banks so completions don't collapse the queue).
        for i in 0..3u64 {
            m.enqueue_read(LineAddr::new(i * 1097), 0, ReqKind::Demand);
        }
        let s = *m.stats();
        assert_eq!(s.rq_occupancy_hist.count(), 3);
        assert_eq!(s.rq_occupancy_hist.buckets[0], 1);
        assert_eq!(s.rq_occupancy_hist.buckets[1], 1);
        assert_eq!(s.rq_occupancy_hist.buckets[2], 1);
        // A merged read claims no slot and records nothing.
        m.enqueue_read(LineAddr::new(0), 0, ReqKind::Demand);
        assert_eq!(m.stats().rq_occupancy_hist.count(), 3);
        // Writes mirror wq_occupancy_sum bucket by bucket.
        for i in 0..4u64 {
            m.enqueue_write(LineAddr::new(5000 + i * 1097), 0);
        }
        let s = *m.stats();
        assert_eq!(s.wq_occupancy_hist.count(), 4);
        assert_eq!(s.wq_occupancy_hist.buckets[0], 1);
        assert_eq!(s.wq_occupancy_hist.buckets[1], 1);
        assert_eq!(s.wq_occupancy_hist.buckets[2], 2);
        assert_eq!(
            s.wq_occupancy_hist.mean_linear() * 4.0,
            s.wq_occupancy_sum as f64
        );
        // Every scheduled request recorded a queue delay; the first read
        // arrived into an empty queue (delay 0).
        assert_eq!(s.queue_delay_hist.count(), 3 + 4);
        assert!(s.queue_delay_hist.buckets[0] >= 1);
    }

    #[test]
    fn queue_occupancy_observes_busy_slots() {
        let mut m = MemoryController::new(DramConfig::single_core().with_write_queue(4));
        let (rb, rc, wb, wc) = m.queue_occupancy(0);
        assert_eq!((rb, wb), (0, 0));
        assert_eq!(rc, DramConfig::single_core().rq_capacity);
        assert_eq!(wc, 4);
        let r = m.enqueue_read(LineAddr::new(1), 0, ReqKind::Demand);
        assert_eq!(m.queue_occupancy(0).0, 1);
        assert_eq!(m.queue_occupancy(r.completes_at).0, 0, "slot frees");
    }

    #[test]
    fn read_queue_pressure_scales_capacity_by_channels() {
        // The spec-read filter compares per-channel busy slots against a
        // fraction of the returned capacity; multi-channel parts must
        // report the system capacity so the same absolute backlog reads
        // as proportionally lighter pressure.
        let one = MemoryController::new(DramConfig::single_core());
        let (b1, c1) = one.read_queue_pressure(LineAddr::new(0), 0);
        assert_eq!((b1, c1), (0, DramConfig::single_core().rq_capacity));

        let mut four = MemoryController::new(DramConfig::eight_core());
        let cfg = DramConfig::eight_core();
        let (_, c4) = four.read_queue_pressure(LineAddr::new(0), 0);
        assert_eq!(c4, cfg.rq_capacity * cfg.channels);

        // Load one channel with 20 reads: busy counts only that channel,
        // capacity still reports the whole system (20*4 < 256 clears the
        // quarter-capacity guard that 20*4 >= 64 would have tripped).
        let ch0 = map_line(&cfg, LineAddr::new(0)).channel;
        let mut queued = 0;
        for raw in 0..2000u64 {
            let line = LineAddr::new(raw);
            if map_line(&cfg, line).channel != ch0 {
                continue;
            }
            four.enqueue_read(line, 0, ReqKind::Demand);
            queued += 1;
            if queued == 20 {
                break;
            }
        }
        assert_eq!(queued, 20);
        let (busy, cap) = four.read_queue_pressure(LineAddr::new(0), 0);
        assert_eq!(busy, 20);
        assert!(busy * 4 < cap, "guard must tolerate 20 busy of {cap}");
    }

    #[test]
    fn more_channels_increase_throughput() {
        let mut one = MemoryController::new(DramConfig::single_core());
        let mut four = MemoryController::new(DramConfig::eight_core());
        let mut last_one = 0;
        let mut last_four = 0;
        for i in 0..64u64 {
            last_one = one
                .enqueue_read(LineAddr::new(i), 0, ReqKind::Demand)
                .completes_at;
            last_four = four
                .enqueue_read(LineAddr::new(i), 0, ReqKind::Demand)
                .completes_at;
        }
        assert!(last_four < last_one);
    }
}
