//! DRAM configuration and timing derivation.

/// Main-memory configuration (Table 4 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Number of channels (1 single-core, 4 eight-core).
    pub channels: usize,
    /// Ranks per channel (1 single-core, 2 eight-core).
    pub ranks: usize,
    /// Banks per rank (8).
    pub banks: usize,
    /// Row-buffer size per bank in bytes (2 KB).
    pub row_bytes: u64,
    /// Transfer rate in mega-transfers per second (3200 for DDR4-3200;
    /// swept 200..12800 in the paper's Fig. 17a).
    pub mtps: u64,
    /// Data-bus width per channel in bits (64).
    pub bus_bits: u64,
    /// Core frequency in GHz used to convert ns to core cycles (4.0).
    pub core_freq_ghz: f64,
    /// tRCD in nanoseconds (12.5).
    pub trcd_ns: f64,
    /// tRP in nanoseconds (12.5).
    pub trp_ns: f64,
    /// tCAS in nanoseconds (12.5).
    pub tcas_ns: f64,
    /// Read-queue capacity per channel.
    pub rq_capacity: usize,
    /// Write-queue capacity per channel. `None` — the historical default
    /// — makes fire-and-forget writebacks claim *read*-queue slots (so a
    /// writeback burst inflates demand-read queueing delay); `Some(n)`
    /// gives writes their own n-slot pool, decoupling writeback drain
    /// from read queueing (banks and the data bus are still shared).
    pub wq_capacity: Option<usize>,
}

impl DramConfig {
    /// The single-core baseline: 1 channel, 1 rank (Table 4).
    pub fn single_core() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            banks: 8,
            row_bytes: 2048,
            mtps: 3200,
            bus_bits: 64,
            core_freq_ghz: 4.0,
            trcd_ns: 12.5,
            trp_ns: 12.5,
            tcas_ns: 12.5,
            rq_capacity: 64,
            wq_capacity: None,
        }
    }

    /// The eight-core configuration: 4 channels, 2 ranks per channel.
    pub fn eight_core() -> Self {
        Self {
            channels: 4,
            ranks: 2,
            ..Self::single_core()
        }
    }

    /// Returns a copy with a different transfer rate (Fig. 17a sweep).
    pub fn with_mtps(mut self, mtps: u64) -> Self {
        assert!(mtps > 0);
        self.mtps = mtps;
        self
    }

    /// Returns a copy with a dedicated per-channel write queue of
    /// `slots` entries (see [`DramConfig::wq_capacity`]).
    pub fn with_write_queue(mut self, slots: usize) -> Self {
        assert!(slots > 0, "write queue needs at least one slot");
        self.wq_capacity = Some(slots);
        self
    }

    fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.core_freq_ghz).round() as u64
    }

    /// tRCD in core cycles (50 at 4 GHz).
    pub fn trcd(&self) -> u64 {
        self.ns_to_cycles(self.trcd_ns)
    }

    /// tRP in core cycles.
    pub fn trp(&self) -> u64 {
        self.ns_to_cycles(self.trp_ns)
    }

    /// tCAS in core cycles.
    pub fn tcas(&self) -> u64 {
        self.ns_to_cycles(self.tcas_ns)
    }

    /// Burst time for one 64 B line in core cycles.
    ///
    /// 64 B over a `bus_bits`-wide DDR bus = `512 / bus_bits` beats; at
    /// `mtps` million beats/s that is `beats / (mtps * 1e6)` seconds.
    /// 10 cycles for DDR4-3200 on a 4 GHz core.
    pub fn tburst(&self) -> u64 {
        let beats = 512 / self.bus_bits;
        let seconds = beats as f64 / (self.mtps as f64 * 1e6);
        (seconds * self.core_freq_ghz * 1e9).round().max(1.0) as u64
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes / 64
    }

    /// Total banks per channel (ranks × banks).
    pub fn banks_per_channel(&self) -> usize {
        self.ranks * self.banks
    }

    /// Validates invariants; called by the controller constructor.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized dimension or non-power-of-two geometry where
    /// indexing requires it.
    pub fn validate(&self) {
        assert!(self.channels > 0 && self.ranks > 0 && self.banks > 0);
        assert!(self.row_bytes >= 64 && self.row_bytes.is_power_of_two());
        assert!(self.bus_bits > 0 && 512 % self.bus_bits == 0);
        assert!(self.mtps > 0);
        assert!(self.rq_capacity > 0);
        if let Some(wq) = self.wq_capacity {
            assert!(wq > 0, "wq_capacity, when set, must be nonzero");
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_timings_in_cycles() {
        let c = DramConfig::single_core();
        assert_eq!(c.trcd(), 50);
        assert_eq!(c.trp(), 50);
        assert_eq!(c.tcas(), 50);
        assert_eq!(c.tburst(), 10);
        assert_eq!(c.lines_per_row(), 32);
    }

    #[test]
    fn mtps_scaling_shrinks_burst() {
        let slow = DramConfig::single_core().with_mtps(200);
        let fast = DramConfig::single_core().with_mtps(12800);
        assert!(slow.tburst() > fast.tburst());
        assert_eq!(slow.tburst(), 160);
    }

    #[test]
    fn eight_core_has_more_parallelism() {
        let c = DramConfig::eight_core();
        assert_eq!(c.channels, 4);
        assert_eq!(c.banks_per_channel(), 16);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn zero_mtps_rejected() {
        let _ = DramConfig::single_core().with_mtps(0);
    }
}
