//! DDR4 main-memory model and memory controller.
//!
//! Implements the paper's Table 4 main-memory configuration: DDR4-3200 with
//! tRCD = tRP = tCAS = 12.5 ns, 2 KB row buffer per bank, 8 banks per rank;
//! one channel/one rank for the single-core system and four channels/two
//! ranks for the eight-core system.
//!
//! The controller uses a *schedule-on-arrival reservation model*: each read
//! reserves its bank (activation + column access) and the channel data bus
//! (burst) at the earliest feasible time, honouring open-row state, a
//! finite read-queue, and FCFS-with-row-hit arrival order. This captures
//! exactly the behaviours Hermes' evaluation depends on — row-hit versus
//! row-conflict latency, bank parallelism, and bandwidth contention from
//! useless speculative requests (the paper's Fig. 15b/17a) — without a
//! per-cycle DRAM state machine.
//!
//! The controller also implements the Hermes datapath's memory-side half
//! (§6.2): a read to a line that is already in flight **merges** with the
//! outstanding access (this is how a regular demand miss waits for its
//! Hermes request), and completions report whether any demand merged so the
//! caller can implement Hermes' drop-without-fill rule.

pub mod config;
pub mod controller;
pub mod mapping;

pub use config::DramConfig;
pub use controller::{Completion, MemoryController, ReqKind};
pub use mapping::DramLocation;
