//! MLOP: the Multi-Lookahead Offset Prefetcher (Shakerinava et al., the
//! DPC3 winner).
//!
//! A best-offset-style prefetcher that scores every candidate offset at
//! multiple *lookahead levels* simultaneously. An Access Map Table (AMT)
//! remembers which lines of recent 4 KB zones were touched; on each access
//! every candidate offset `d` earns a point at level `l` if the line `d`
//! back was among the last `l` accesses. At the end of a scoring round the
//! best offset of each level (above a threshold) becomes an active
//! prefetch offset, giving one prefetch per level per access — multiple
//! lookaheads deep into the stream.

use hermes_types::LineAddr;

use crate::{AccessCtx, PrefetchReq, Prefetcher};

const ZONE_LINES: u64 = 64; // 4 KB zones
const AMT_ENTRIES: usize = 32;
const OFFSETS: [i64; 26] = [
    1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 56, -1, -2, -3, -4, -6, -8, -12, -16, -24,
    -32,
];
const LEVELS: usize = 3;
const ROUND_LEN: u32 = 256;
/// Minimum score (fraction of ROUND_LEN) for an offset to activate.
const SCORE_MIN: u32 = ROUND_LEN / 4;

#[derive(Debug, Clone, Copy, Default)]
struct Zone {
    zone: u64,
    bitmap: u64,
    valid: bool,
    lru: u64,
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Mlop {
    amt: Vec<Zone>,
    /// Recent access history (line numbers), newest last.
    recent: Vec<u64>,
    scores: [[u32; OFFSETS.len()]; LEVELS],
    active: [Option<i64>; LEVELS],
    round_pos: u32,
    clock: u64,
}

impl Mlop {
    /// Builds MLOP with its ~8 KB configuration (Table 6).
    pub fn new() -> Self {
        Self {
            amt: vec![Zone::default(); AMT_ENTRIES],
            recent: Vec::with_capacity(16),
            scores: [[0; OFFSETS.len()]; LEVELS],
            active: [None; LEVELS],
            round_pos: 0,
            clock: 0,
        }
    }

    fn mark(&mut self, line: u64) {
        self.clock += 1;
        let zone = line / ZONE_LINES;
        let bit = 1u64 << (line % ZONE_LINES);
        if let Some(z) = self.amt.iter_mut().find(|z| z.valid && z.zone == zone) {
            z.bitmap |= bit;
            z.lru = self.clock;
            return;
        }
        let idx = self
            .amt
            .iter()
            .enumerate()
            .min_by_key(|(_, z)| if z.valid { z.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("amt nonzero");
        self.amt[idx] = Zone {
            zone,
            bitmap: bit,
            valid: true,
            lru: self.clock,
        };
    }

    fn was_accessed(&self, line: i64) -> bool {
        if line < 0 {
            return false;
        }
        let line = line as u64;
        let zone = line / ZONE_LINES;
        let bit = 1u64 << (line % ZONE_LINES);
        self.amt
            .iter()
            .any(|z| z.valid && z.zone == zone && z.bitmap & bit != 0)
    }
}

impl Default for Mlop {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Mlop {
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>) {
        let line = ctx.line.raw();

        // Score candidates: offset d scores at level l if line-d*(l+1) was
        // accessed (i.e. d, applied l+1 times, would have predicted this).
        for (oi, &d) in OFFSETS.iter().enumerate() {
            for l in 0..LEVELS {
                let back = line as i64 - d * (l as i64 + 1);
                if self.was_accessed(back) {
                    self.scores[l][oi] += 1;
                }
            }
        }
        self.round_pos += 1;
        if self.round_pos >= ROUND_LEN {
            // Commit the round: pick each level's best offset.
            for l in 0..LEVELS {
                let (best_i, best_s) = self.scores[l]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &s)| s)
                    .map(|(i, &s)| (i, s))
                    .expect("offsets nonzero");
                self.active[l] = (best_s >= SCORE_MIN).then(|| OFFSETS[best_i]);
                self.scores[l] = [0; OFFSETS.len()];
            }
            self.round_pos = 0;
        }

        self.mark(line);
        self.recent.push(line);
        if self.recent.len() > 16 {
            self.recent.remove(0);
        }

        // Issue one prefetch per active lookahead level.
        for (l, off) in self.active.iter().enumerate() {
            if let Some(d) = off {
                let target = line as i64 + d * (l as i64 + 1);
                if target >= 0 {
                    out.push(PrefetchReq {
                        line: LineAddr::new(target as u64),
                    });
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "MLOP"
    }

    fn storage_bits(&self) -> usize {
        // AMT: zone tag 40b + bitmap 64b per entry; score matrix 16b each.
        AMT_ENTRIES * (40 + 64) + LEVELS * OFFSETS.len() * 16 + 16 * 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_unit_stride_after_one_round() {
        let mut p = Mlop::new();
        let cov = crate::testutil::stream_coverage(&mut p, 3000);
        assert!(cov > 0.8, "coverage {cov}");
    }

    #[test]
    fn learns_nonunit_stride() {
        let mut p = Mlop::new();
        let mut out = Vec::new();
        let mut good = 0;
        for i in 0..3000u64 {
            let line = LineAddr::new(0x70_0000 + i * 3);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 2,
                    line,
                    hit: false,
                },
                &mut out,
            );
            // Ties among stride multiples may select a larger multiple;
            // any forward multiple of 3 lands on the stream.
            if out.iter().any(|r| {
                let d = r.line.raw() as i64 - line.raw() as i64;
                d > 0 && d % 3 == 0
            }) {
                good += 1;
            }
        }
        assert!(good > 1500, "stride-3 predictions {good}");
    }

    #[test]
    fn multiple_levels_reach_deeper() {
        let mut p = Mlop::new();
        let mut out = Vec::new();
        let mut deepest: i64 = 0;
        for i in 0..4000u64 {
            let line = LineAddr::new(0x90_0000 + i);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 2,
                    line,
                    hit: false,
                },
                &mut out,
            );
            for r in &out {
                deepest = deepest.max(r.line.raw() as i64 - line.raw() as i64);
            }
        }
        assert!(
            deepest >= 2,
            "multi-lookahead never reached depth 2 (deepest {deepest})"
        );
    }

    #[test]
    fn random_stream_deactivates_offsets() {
        let mut p = Mlop::new();
        let mut out = Vec::new();
        let mut x = 777u64;
        let mut issued = 0;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 2,
                    line: LineAddr::new(x >> 18),
                    hit: false,
                },
                &mut out,
            );
            issued += out.len();
        }
        // A few rounds may fire before scores decay; it must not stay on.
        assert!(issued < 2000, "MLOP too eager on random: {issued}");
    }

    #[test]
    fn storage_near_8kb() {
        let kb = Mlop::new().storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kb < 12.0, "MLOP storage {kb} KB (paper: 8 KB)");
    }
}
