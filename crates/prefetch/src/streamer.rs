//! Multi-stream detector ("streamer"), the classic L2/LLC stream
//! prefetcher: tracks up to N concurrent streams, confirms a direction
//! after two accesses in the same window, then runs a *stream head* up to
//! `distance` lines ahead of the demand pointer, issuing at most `degree`
//! prefetches per triggering access.
//!
//! The distance matters: a large out-of-order window already exposes the
//! next several lines of a stream as demand misses, so a prefetcher must
//! run further ahead than the ROB can reach to convert misses into hits.

use hermes_types::LineAddr;

use crate::{AccessCtx, PrefetchReq, Prefetcher};

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    valid: bool,
    last_line: u64,
    /// Furthest line prefetched in the stream direction.
    head: u64,
    direction: i64,
    confidence: u8,
    lru: u64,
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Streamer {
    streams: Vec<Stream>,
    degree: u32,
    distance: u64,
    clock: u64,
}

impl Streamer {
    /// A streamer with `streams` concurrent trackers issuing up to
    /// `degree` prefetches per access, running up to 24 lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(streams: usize, degree: u32) -> Self {
        Self::with_distance(streams, degree, 24)
    }

    /// A streamer with an explicit head distance.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn with_distance(streams: usize, degree: u32, distance: u64) -> Self {
        assert!(streams > 0 && degree > 0 && distance > 0);
        Self {
            streams: vec![Stream::default(); streams],
            degree,
            distance,
            clock: 0,
        }
    }
}

impl Prefetcher for Streamer {
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>) {
        self.clock += 1;
        let line = ctx.line.raw();
        let found = self
            .streams
            .iter_mut()
            .filter(|s| s.valid && line.abs_diff(s.last_line) <= 64)
            .min_by_key(|s| line.abs_diff(s.last_line));
        match found {
            Some(s) => {
                let dir = (line as i64 - s.last_line as i64).signum();
                if dir != 0 {
                    if dir == s.direction {
                        s.confidence = (s.confidence + 1).min(4);
                    } else {
                        s.direction = dir;
                        s.confidence = 1;
                        s.head = line;
                    }
                }
                s.last_line = line;
                s.lru = self.clock;
                if s.confidence >= 2 {
                    // Advance the head toward `distance` ahead of demand,
                    // at most `degree` lines per trigger.
                    for _ in 0..self.degree {
                        let lead = (s.head as i64 - line as i64) * s.direction;
                        if lead >= self.distance as i64 {
                            break;
                        }
                        let next = s.head as i64 + s.direction;
                        if next < 0 {
                            break;
                        }
                        s.head = next as u64;
                        out.push(PrefetchReq {
                            line: LineAddr::new(s.head),
                        });
                    }
                }
            }
            None => {
                let v = self
                    .streams
                    .iter_mut()
                    .min_by_key(|s| if s.valid { s.lru } else { 0 })
                    .expect("streams nonzero");
                *v = Stream {
                    valid: true,
                    last_line: line,
                    head: line,
                    direction: 1,
                    confidence: 0,
                    lru: self.clock,
                };
            }
        }
    }

    fn name(&self) -> &'static str {
        "streamer"
    }

    fn storage_bits(&self) -> usize {
        // last_line tag (26b) + head offset (8b) + direction (1b) +
        // confidence (3b) + lru (16b) per tracker.
        self.streams.len() * (26 + 8 + 1 + 3 + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_ascending_stream() {
        let mut p = Streamer::new(8, 4);
        let cov = crate::testutil::stream_coverage(&mut p, 2000);
        assert!(cov > 0.9, "coverage {cov}");
    }

    #[test]
    fn head_runs_ahead_of_demand() {
        let mut p = Streamer::with_distance(4, 4, 16);
        let mut out = Vec::new();
        let mut max_lead = 0i64;
        for i in 0..40u64 {
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 1,
                    line: LineAddr::new(1000 + i),
                    hit: false,
                },
                &mut out,
            );
            for r in &out {
                max_lead = max_lead.max(r.line.raw() as i64 - (1000 + i) as i64);
            }
        }
        assert!(max_lead >= 12, "stream head only reached {max_lead} ahead");
    }

    #[test]
    fn detects_descending_stream() {
        let mut p = Streamer::new(8, 2);
        let mut out = Vec::new();
        let mut any_down = false;
        for i in 0..20u64 {
            out.clear();
            let line = LineAddr::new(10_000 - i);
            p.on_access(
                &AccessCtx {
                    pc: 1,
                    line,
                    hit: false,
                },
                &mut out,
            );
            any_down |= out.iter().any(|r| r.line.raw() < 10_000 - i);
        }
        assert!(any_down, "no downward prefetch");
    }

    #[test]
    fn tracks_multiple_streams() {
        let mut p = Streamer::new(4, 2);
        let mut out = Vec::new();
        let mut covered = 0;
        for i in 0..200u64 {
            for base in [0x1000u64, 0x8000, 0x20000] {
                out.clear();
                p.on_access(
                    &AccessCtx {
                        pc: 1,
                        line: LineAddr::new(base + i),
                        hit: false,
                    },
                    &mut out,
                );
                if out.iter().any(|r| r.line.raw() > base + i) {
                    covered += 1;
                }
            }
        }
        assert!(covered > 300, "interleaved streams covered only {covered}");
    }

    #[test]
    fn random_accesses_stay_quiet() {
        let mut p = Streamer::new(8, 4);
        let mut out = Vec::new();
        let mut total = 0;
        let mut x = 12345u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 1,
                    line: LineAddr::new(x >> 20),
                    hit: false,
                },
                &mut out,
            );
            total += out.len();
        }
        assert!(total < 200, "streamer too eager on random stream: {total}");
    }
}
