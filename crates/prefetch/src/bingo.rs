//! Bingo: spatial footprint prefetching with dual-key history lookup
//! (Bakhshalipour et al., HPCA'19).
//!
//! Accesses are grouped into 2 KB regions. The first (trigger) access to a
//! region opens a *generation*: subsequent accesses accumulate a footprint
//! bitmap until the region is evicted from the accumulation table, at
//! which point the footprint is stored in a history table under both a
//! long key (PC+address) and a short key (PC+offset). A later trigger
//! access first probes the long key (most precise); on a miss it falls
//! back to the short key — Bingo's titular trick — and prefetches every
//! line in the recalled footprint.

use std::collections::HashMap;

use hermes_types::LineAddr;

use crate::{AccessCtx, PrefetchReq, Prefetcher};

/// Region size in lines (2 KB / 64 B).
const REGION_LINES: u64 = 32;
const ACC_ENTRIES: usize = 16;
const HISTORY_ENTRIES: usize = 4096;

#[derive(Debug, Clone, Copy, Default)]
struct AccEntry {
    region: u64,
    footprint: u32,
    trigger_pc: u64,
    trigger_offset: u8,
    valid: bool,
    lru: u64,
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Bingo {
    acc: Vec<AccEntry>,
    /// Long-key history: (pc, region) -> footprint.
    hist_long: HashMap<u64, u32>,
    /// Short-key history: (pc, offset) -> footprint.
    hist_short: HashMap<u64, u32>,
    clock: u64,
}

impl Bingo {
    /// Builds Bingo with its paper configuration (~46 KB, Table 6).
    pub fn new() -> Self {
        Self {
            acc: vec![AccEntry::default(); ACC_ENTRIES],
            hist_long: HashMap::with_capacity(HISTORY_ENTRIES),
            hist_short: HashMap::with_capacity(HISTORY_ENTRIES),
            clock: 0,
        }
    }

    fn long_key(pc: u64, region: u64) -> u64 {
        pc ^ (region << 20)
    }

    fn short_key(pc: u64, offset: u8) -> u64 {
        pc ^ ((offset as u64) << 52)
    }

    fn store(&mut self, e: &AccEntry) {
        // Only remember footprints with some spatial density.
        if e.footprint.count_ones() < 2 {
            return;
        }
        if self.hist_long.len() >= HISTORY_ENTRIES {
            self.hist_long.clear(); // coarse generation-based flush
        }
        if self.hist_short.len() >= HISTORY_ENTRIES {
            self.hist_short.clear();
        }
        self.hist_long
            .insert(Self::long_key(e.trigger_pc, e.region), e.footprint);
        self.hist_short
            .insert(Self::short_key(e.trigger_pc, e.trigger_offset), e.footprint);
    }
}

impl Default for Bingo {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Bingo {
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>) {
        self.clock += 1;
        let region = ctx.line.raw() / REGION_LINES;
        let offset = (ctx.line.raw() % REGION_LINES) as u8;

        if let Some(e) = self.acc.iter_mut().find(|e| e.valid && e.region == region) {
            e.footprint |= 1 << offset;
            e.lru = self.clock;
            return;
        }

        // Trigger access: recall footprint (long key, then short key).
        let footprint = self
            .hist_long
            .get(&Self::long_key(ctx.pc, region))
            .or_else(|| self.hist_short.get(&Self::short_key(ctx.pc, offset)))
            .copied();
        if let Some(fp) = footprint {
            let base = region * REGION_LINES;
            for bit in 0..REGION_LINES as u8 {
                if bit != offset && fp & (1 << bit) != 0 {
                    out.push(PrefetchReq {
                        line: LineAddr::new(base + bit as u64),
                    });
                }
            }
        }

        // Open a new generation, evicting the LRU accumulation entry.
        let idx = self
            .acc
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("acc nonzero");
        let old = self.acc[idx];
        if old.valid {
            self.store(&old);
        }
        self.acc[idx] = AccEntry {
            region,
            footprint: 1 << offset,
            trigger_pc: ctx.pc,
            trigger_offset: offset,
            valid: true,
            lru: self.clock,
        };
    }

    fn name(&self) -> &'static str {
        "Bingo"
    }

    fn storage_bits(&self) -> usize {
        // Accumulation: region tag 38b + footprint 32b + pc 32b + off 5b.
        let acc = ACC_ENTRIES * (38 + 32 + 32 + 5 + 16);
        // History: two tables of (tag 32b + footprint 32b).
        let hist = 2 * HISTORY_ENTRIES * (32 + 32);
        acc + hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walks a fixed footprint {0,3,7,12} in many regions with one PC,
    /// returning how many accesses were anticipated.
    fn footprint_workload(p: &mut Bingo, regions: u64) -> usize {
        let pattern = [0u64, 3, 7, 12];
        let mut out = Vec::new();
        let mut predicted = std::collections::HashSet::new();
        let mut covered = 0;
        for r in 0..regions {
            let base = (0x5000 + r) * REGION_LINES;
            for &o in &pattern {
                let line = LineAddr::new(base + o);
                if predicted.contains(&line) {
                    covered += 1;
                }
                out.clear();
                p.on_access(
                    &AccessCtx {
                        pc: 0x400abc,
                        line,
                        hit: false,
                    },
                    &mut out,
                );
                for req in &out {
                    predicted.insert(req.line);
                }
            }
        }
        covered
    }

    #[test]
    fn recalls_recurring_footprints() {
        let mut p = Bingo::new();
        let covered = footprint_workload(&mut p, 500);
        // 3 of 4 accesses per region are coverable once history warms.
        assert!(covered > 700, "footprint coverage {covered}/2000");
    }

    #[test]
    fn no_prefetch_without_history() {
        let mut p = Bingo::new();
        let mut out = Vec::new();
        p.on_access(
            &AccessCtx {
                pc: 1,
                line: LineAddr::new(999),
                hit: false,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn prefetches_stay_in_region() {
        let mut p = Bingo::new();
        let _ = footprint_workload(&mut p, 100);
        let mut out = Vec::new();
        let line = LineAddr::new(0x9999 * REGION_LINES + 3);
        p.on_access(
            &AccessCtx {
                pc: 0x400abc,
                line,
                hit: false,
            },
            &mut out,
        );
        for r in &out {
            assert_eq!(r.line.raw() / REGION_LINES, line.raw() / REGION_LINES);
        }
    }

    #[test]
    fn storage_in_expected_band() {
        let kb = Bingo::new().storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (30.0..70.0).contains(&kb),
            "Bingo storage {kb} KB (paper: 46 KB)"
        );
    }
}
