//! Next-line prefetcher: on every demand access, fetch the next `degree`
//! sequential lines. The simplest possible spatial prefetcher; useful as a
//! sanity baseline and in tests.

use hermes_types::LineAddr;

use crate::{AccessCtx, PrefetchReq, Prefetcher};

/// See [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct NextLine {
    degree: u32,
}

impl NextLine {
    /// Prefetches `degree` lines ahead of every access.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0);
        Self { degree }
    }
}

impl Prefetcher for NextLine {
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>) {
        for d in 1..=self.degree {
            out.push(PrefetchReq {
                line: LineAddr::new(ctx.line.raw() + d as u64),
            });
        }
    }

    fn name(&self) -> &'static str {
        "next-line"
    }

    fn storage_bits(&self) -> usize {
        32 // just the degree register
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetches_next_lines() {
        let mut p = NextLine::new(2);
        let mut out = Vec::new();
        p.on_access(
            &AccessCtx {
                pc: 1,
                line: LineAddr::new(100),
                hit: false,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line.raw(), 101);
        assert_eq!(out[1].line.raw(), 102);
    }

    #[test]
    fn covers_a_stream_perfectly() {
        let mut p = NextLine::new(1);
        let cov = crate::testutil::stream_coverage(&mut p, 1000);
        assert!(cov > 0.95, "coverage {cov}");
    }

    #[test]
    #[should_panic]
    fn zero_degree_rejected() {
        let _ = NextLine::new(0);
    }
}
