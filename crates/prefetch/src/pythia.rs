//! Pythia: a customizable hardware prefetcher built on tabular
//! reinforcement learning (Bera et al., MICRO'21) — the baseline
//! prefetcher of the Hermes paper.
//!
//! Pythia frames prefetching as an RL problem: the *state* is a vector of
//! program features (we use the paper's defaults — PC⊕delta and the
//! sequence of the last four deltas), the *actions* are prefetch offsets
//! (including "no prefetch"), and *rewards* encode prefetch usefulness.
//! Q-values live in per-feature tables (the QVStore); an evaluation queue
//! (EQ) holds recently-taken actions until their outcome is known, at
//! which point a SARSA-style temporal-difference update propagates the
//! reward.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hermes_types::{hash_index, LineAddr};

use crate::{AccessCtx, PrefetchReq, Prefetcher};

/// Prefetch offset action list (line offsets); index 0 is "no prefetch".
/// Ordered so that the untrained argmax (ties broken low) explores the
/// most generally-useful action (+1) first, as Pythia's action list does.
const ACTIONS: [i64; 16] = [0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, -1, -2, -4];

const QTABLE_BITS: u32 = 10;
const EQ_DEPTH: usize = 128;
const ALPHA: f32 = 0.15;
const GAMMA: f32 = 0.7;
const EPSILON: f32 = 0.01;

/// Reward levels (Pythia Table 4, simplified to one bandwidth regime).
const R_ACCURATE: f32 = 20.0;
/// Accurate but late: the demand caught the prefetch in flight. Positive
/// (it was the right address) but below R_ACCURATE so the agent prefers
/// larger, timelier offsets.
const R_LATE: f32 = 12.0;
const R_INACCURATE: f32 = -10.0;
const R_NO_PREFETCH: f32 = -2.0;

#[derive(Debug, Clone, Copy, Default)]
struct PageState {
    page: u64,
    last_offset: u8,
    deltas: [i8; 4],
    valid: bool,
    lru: u64,
}

#[derive(Debug, Clone, Copy)]
struct EqEntry {
    h1: u32,
    h2: u32,
    action: usize,
    issued: Option<u64>,
    reward: Option<f32>,
    next_q: Option<f32>,
}

/// See [module docs](self).
#[derive(Debug)]
pub struct Pythia {
    q1: Vec<[f32; ACTIONS.len()]>,
    q2: Vec<[f32; ACTIONS.len()]>,
    pages: Vec<PageState>,
    eq: std::collections::VecDeque<EqEntry>,
    rng: SmallRng,
    clock: u64,
}

impl Pythia {
    /// Builds Pythia with its default configuration (~25.5 KB, Table 6).
    pub fn new() -> Self {
        Self {
            q1: vec![[0.0; ACTIONS.len()]; 1 << QTABLE_BITS],
            q2: vec![[0.0; ACTIONS.len()]; 1 << QTABLE_BITS],
            pages: vec![PageState::default(); 64],
            eq: std::collections::VecDeque::with_capacity(EQ_DEPTH),
            rng: SmallRng::seed_from_u64(0x5059_5448_4941),
            clock: 0,
        }
    }

    fn q(&self, h1: u32, h2: u32, a: usize) -> f32 {
        (self.q1[h1 as usize][a] + self.q2[h2 as usize][a]) * 0.5
    }

    fn best_action(&self, h1: u32, h2: u32) -> usize {
        let mut best = 0;
        let mut best_q = f32::NEG_INFINITY;
        for a in 0..ACTIONS.len() {
            let q = self.q(h1, h2, a);
            if q > best_q {
                best_q = q;
                best = a;
            }
        }
        best
    }

    fn update(&mut self, e: &EqEntry) {
        let reward = e.reward.unwrap_or(match e.issued {
            Some(_) => R_INACCURATE,
            None => R_NO_PREFETCH,
        });
        let target = reward + GAMMA * e.next_q.unwrap_or(0.0);
        let old = self.q(e.h1, e.h2, e.action);
        let delta = ALPHA * (target - old);
        self.q1[e.h1 as usize][e.action] += delta;
        self.q2[e.h2 as usize][e.action] += delta;
    }

    fn page_state(&mut self, page: u64, offset: u8) -> (i8, [i8; 4]) {
        self.clock += 1;
        if let Some(p) = self.pages.iter_mut().find(|p| p.valid && p.page == page) {
            let delta = (offset as i16 - p.last_offset as i16).clamp(-63, 63) as i8;
            p.deltas.rotate_left(1);
            p.deltas[3] = delta;
            p.last_offset = offset;
            p.lru = self.clock;
            return (delta, p.deltas);
        }
        let idx = self
            .pages
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| if p.valid { p.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("page table nonzero");
        self.pages[idx] = PageState {
            page,
            last_offset: offset,
            deltas: [0; 4],
            valid: true,
            lru: self.clock,
        };
        (0, [0; 4])
    }
}

impl Default for Pythia {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Pythia {
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>) {
        let page = ctx.line.page_number();
        let offset = ctx.line.offset_in_page() as u8;
        let (delta, deltas) = self.page_state(page, offset);

        // State features (Pythia's default two-feature configuration).
        let h1 = hash_index(ctx.pc ^ (((delta as i64 + 64) as u64) << 32), QTABLE_BITS) as u32;
        let sig = deltas.iter().enumerate().fold(0u64, |acc, (i, &d)| {
            acc ^ (((d as i64 + 64) as u64) << (7 * i))
        });
        let h2 = hash_index(sig, QTABLE_BITS) as u32;

        // ε-greedy action selection.
        let action = if self.rng.gen::<f32>() < EPSILON {
            self.rng.gen_range(0..ACTIONS.len())
        } else {
            self.best_action(h1, h2)
        };

        // Close the SARSA chain: the previous action's successor Q-value
        // is the one we just chose.
        let chosen_q = self.q(h1, h2, action);
        if let Some(prev) = self.eq.back_mut() {
            if prev.next_q.is_none() {
                prev.next_q = Some(chosen_q);
            }
        }

        let issued = if ACTIONS[action] != 0 {
            let target = ctx.line.raw() as i64 + ACTIONS[action];
            (target > 0).then_some(target as u64)
        } else {
            None
        };
        if let Some(t) = issued {
            out.push(PrefetchReq {
                line: LineAddr::new(t),
            });
        }

        self.eq.push_back(EqEntry {
            h1,
            h2,
            action,
            issued,
            reward: None,
            next_q: None,
        });
        if self.eq.len() > EQ_DEPTH {
            let e = self.eq.pop_front().expect("just checked");
            self.update(&e);
        }
    }

    fn on_prefetch_hit(&mut self, line: LineAddr) {
        let raw = line.raw();
        for e in self.eq.iter_mut() {
            if e.issued == Some(raw) && e.reward.is_none() {
                e.reward = Some(R_ACCURATE);
                return;
            }
        }
    }

    fn on_unused_eviction(&mut self, line: LineAddr) {
        let raw = line.raw();
        for e in self.eq.iter_mut() {
            if e.issued == Some(raw) && e.reward.is_none() {
                e.reward = Some(R_INACCURATE);
                return;
            }
        }
    }

    fn on_late_prefetch(&mut self, line: LineAddr) {
        let raw = line.raw();
        for e in self.eq.iter_mut() {
            if e.issued == Some(raw) && e.reward.is_none() {
                e.reward = Some(R_LATE);
                return;
            }
        }
    }

    fn name(&self) -> &'static str {
        "Pythia"
    }

    fn storage_bits(&self) -> usize {
        // QVStore quantised to 6-bit weights in hardware (Pythia §6).
        let qstore = 2 * (1 << QTABLE_BITS) * ACTIONS.len() * 6;
        let pages = self.pages.len() * (36 + 6 + 4 * 7 + 16);
        let eq = EQ_DEPTH * (2 * QTABLE_BITS as usize + 4 + 40);
        qstore + pages + eq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_to_prefetch_streams() {
        let mut p = Pythia::new();
        let cov = crate::testutil::stream_coverage(&mut p, 4000);
        assert!(cov > 0.6, "stream coverage {cov}");
    }

    #[test]
    fn rewards_raise_q_values() {
        let mut p = Pythia::new();
        let mut out = Vec::new();
        // Feed a stream and confirm the Q-value for the chosen state's
        // best action becomes positive after reward propagation.
        for i in 0..2000u64 {
            let line = LineAddr::new(0x200_0000 + i);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 0x400111,
                    line,
                    hit: false,
                },
                &mut out,
            );
            for r in &out {
                // Every prefetch is "used" next access in a pure stream.
                p.on_prefetch_hit(r.line);
            }
        }
        let positive =
            p.q1.iter()
                .flat_map(|row| row.iter())
                .filter(|&&q| q > 1.0)
                .count();
        assert!(positive > 0, "no Q-values learned positive rewards");
    }

    #[test]
    fn useless_prefetches_get_discouraged() {
        let mut p = Pythia::new();
        let mut out = Vec::new();
        let mut x = 99u64;
        let mut late_issue = 0;
        for i in 0..6000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            let line = LineAddr::new(x >> 18);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 0x400222,
                    line,
                    hit: false,
                },
                &mut out,
            );
            for r in &out {
                p.on_unused_eviction(r.line);
            }
            if i >= 5000 {
                late_issue += out.len();
            }
        }
        // On pure noise with explicit negative feedback, Pythia should
        // mostly choose "no prefetch" eventually.
        assert!(
            late_issue < 500,
            "Pythia still issuing {late_issue} on noise"
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let mut p = Pythia::new();
            let mut out = Vec::new();
            let mut issued = Vec::new();
            for i in 0..500u64 {
                out.clear();
                p.on_access(
                    &AccessCtx {
                        pc: 0x1,
                        line: LineAddr::new(0x1000 + i * 2),
                        hit: false,
                    },
                    &mut out,
                );
                issued.extend(out.iter().map(|r| r.line.raw()));
            }
            issued
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn storage_near_25kb() {
        let kb = Pythia::new().storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (15.0..35.0).contains(&kb),
            "Pythia storage {kb} KB (paper: 25.5 KB)"
        );
    }
}
