//! SPP: the Signature Path Prefetcher (Kim et al., MICRO'16) with the
//! perceptron prefetch filter of PPF (Bhatia et al., ISCA'19).
//!
//! Per-page delta history is compressed into a 12-bit *signature*; a
//! pattern table maps signatures to candidate deltas with confidence
//! counters. On each access SPP walks the signature path speculatively
//! ("lookahead"): it picks the highest-confidence delta, compounds the
//! path confidence, and keeps issuing deeper prefetches until the product
//! falls below a threshold. The PPF perceptron vetoes low-quality
//! candidates using hashed features, trained by prefetch usefulness
//! feedback.

use std::collections::HashMap;

use hermes_types::{hash_index, LineAddr, SatWeight};

use crate::{AccessCtx, PrefetchReq, Prefetcher};

const SIG_BITS: u32 = 12;
const SIG_SHIFT: u32 = 3;
const PT_WAYS: usize = 4;
const ST_ENTRIES: usize = 256;
const LOOKAHEAD_MAX: usize = 8;
const CONF_THRESHOLD: f64 = 0.25;
const PPF_TABLE_BITS: u32 = 10;
const PPF_TABLES: usize = 3;
const PPF_THRESHOLD: i32 = -6;

#[derive(Debug, Clone, Copy, Default)]
struct SigEntry {
    page: u64,
    last_offset: u8,
    signature: u16,
    valid: bool,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtWay {
    delta: i8,
    count: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct PtSet {
    ways: [PtWay; PT_WAYS],
    total: u8,
}

impl PtSet {
    fn update(&mut self, delta: i8) {
        if self.total == u8::MAX {
            // Halve on saturation to keep confidences adaptive.
            for w in &mut self.ways {
                w.count /= 2;
            }
            self.total /= 2;
        }
        self.total += 1;
        if let Some(w) = self
            .ways
            .iter_mut()
            .find(|w| w.delta == delta && w.count > 0)
        {
            w.count = w.count.saturating_add(1);
            return;
        }
        // Replace the weakest way.
        let w = self
            .ways
            .iter_mut()
            .min_by_key(|w| w.count)
            .expect("PT_WAYS nonzero");
        *w = PtWay { delta, count: 1 };
    }

    fn best(&self) -> Option<(i8, f64)> {
        if self.total == 0 {
            return None;
        }
        self.ways
            .iter()
            .filter(|w| w.count > 0)
            .max_by_key(|w| w.count)
            .map(|w| (w.delta, w.count as f64 / self.total as f64))
    }
}

/// The PPF perceptron filter: hashed features vote on each candidate.
#[derive(Debug, Clone)]
struct PpfFilter {
    tables: Vec<Vec<SatWeight>>,
    /// Issued-prefetch metadata for training: line -> feature indices.
    inflight: HashMap<u64, [u16; PPF_TABLES]>,
}

impl PpfFilter {
    fn new() -> Self {
        Self {
            tables: (0..PPF_TABLES)
                .map(|_| vec![SatWeight::new_bits(6); 1 << PPF_TABLE_BITS])
                .collect(),
            inflight: HashMap::new(),
        }
    }

    fn indices(pc: u64, sig: u16, delta: i8, depth: usize) -> [u16; PPF_TABLES] {
        [
            hash_index(pc ^ (delta as u64) << 20, PPF_TABLE_BITS) as u16,
            hash_index(sig as u64 ^ ((depth as u64) << 16), PPF_TABLE_BITS) as u16,
            hash_index(pc.rotate_left(17) ^ sig as u64, PPF_TABLE_BITS) as u16,
        ]
    }

    fn accept(&mut self, pc: u64, sig: u16, delta: i8, depth: usize, line: LineAddr) -> bool {
        let idx = Self::indices(pc, sig, delta, depth);
        let sum: i32 = idx
            .iter()
            .zip(&self.tables)
            .map(|(&i, t)| t[i as usize].get() as i32)
            .sum();
        let ok = sum >= PPF_THRESHOLD;
        if ok && self.inflight.len() < 4096 {
            self.inflight.insert(line.raw(), idx);
        }
        ok
    }

    fn train(&mut self, line: LineAddr, useful: bool) {
        if let Some(idx) = self.inflight.remove(&line.raw()) {
            for (&i, t) in idx.iter().zip(self.tables.iter_mut()) {
                t[i as usize].train(useful);
            }
        }
    }

    fn storage_bits(&self) -> usize {
        PPF_TABLES * (1 << PPF_TABLE_BITS) * 6
    }
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Spp {
    st: Vec<SigEntry>,
    pt: Vec<PtSet>,
    ppf: PpfFilter,
    clock: u64,
}

impl Spp {
    /// Builds SPP+PPF with the paper-era configuration (~39 KB, Table 6).
    pub fn new() -> Self {
        Self {
            st: vec![SigEntry::default(); ST_ENTRIES],
            pt: vec![PtSet::default(); 1 << SIG_BITS],
            ppf: PpfFilter::new(),
            clock: 0,
        }
    }

    fn compose(sig: u16, delta: i8) -> u16 {
        let d = (delta as i16 & 0x3F) as u16;
        ((sig << SIG_SHIFT) ^ d) & ((1 << SIG_BITS) - 1)
    }
}

impl Default for Spp {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Spp {
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>) {
        self.clock += 1;
        let page = ctx.line.page_number();
        let offset = ctx.line.offset_in_page() as u8;

        // Signature-table lookup / update.
        let slot = match self.st.iter().position(|e| e.valid && e.page == page) {
            Some(i) => i,
            None => {
                let i = self
                    .st
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("ST nonzero");
                self.st[i] = SigEntry {
                    page,
                    last_offset: offset,
                    signature: 0,
                    valid: true,
                    lru: self.clock,
                };
                return; // first access to the page: no delta yet
            }
        };
        let e = &mut self.st[slot];
        e.lru = self.clock;
        let delta = offset as i16 - e.last_offset as i16;
        if delta == 0 {
            return;
        }
        let delta = delta.clamp(-63, 63) as i8;
        let old_sig = e.signature;
        // Train the pattern table with the observed transition.
        self.pt[old_sig as usize].update(delta);
        e.signature = Self::compose(old_sig, delta);
        e.last_offset = offset;
        let mut sig = e.signature;

        // Lookahead walk.
        let mut conf = 1.0f64;
        let mut pos = offset as i64;
        for depth in 0..LOOKAHEAD_MAX {
            let Some((d, c)) = self.pt[sig as usize].best() else {
                break;
            };
            conf *= c;
            if conf < CONF_THRESHOLD {
                break;
            }
            pos += d as i64;
            if !(0..64).contains(&pos) {
                break; // SPP stops at page boundaries
            }
            let line = LineAddr::new((page << 6) | pos as u64);
            if self.ppf.accept(ctx.pc, sig, d, depth, line) {
                out.push(PrefetchReq { line });
            }
            sig = Self::compose(sig, d);
        }
    }

    fn on_prefetch_hit(&mut self, line: LineAddr) {
        self.ppf.train(line, true);
    }

    fn on_unused_eviction(&mut self, line: LineAddr) {
        self.ppf.train(line, false);
    }

    fn on_late_prefetch(&mut self, line: LineAddr) {
        self.ppf.train(line, true);
    }

    fn name(&self) -> &'static str {
        "SPP"
    }

    fn storage_bits(&self) -> usize {
        // ST: page tag 36b + offset 6b + sig 12b + lru 16b per entry.
        let st = ST_ENTRIES * (36 + 6 + 12 + 16);
        // PT: 4 ways x (delta 7b + count 8b) + total 8b per set.
        let pt = (1 << SIG_BITS) * (PT_WAYS * 15 + 8);
        st + pt + self.ppf.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_unit_stride_stream() {
        let mut p = Spp::new();
        let cov = crate::testutil::stream_coverage(&mut p, 3000);
        assert!(cov > 0.7, "coverage {cov}");
    }

    #[test]
    fn learns_stride_2_within_pages() {
        let mut p = Spp::new();
        let mut out = Vec::new();
        let mut hits = 0;
        for i in 0..2000u64 {
            let line = LineAddr::new(0x40_0000 + i * 2);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 7,
                    line,
                    hit: false,
                },
                &mut out,
            );
            if out.iter().any(|r| r.line.raw() == line.raw() + 2) {
                hits += 1;
            }
        }
        assert!(hits > 800, "stride-2 prediction count {hits}");
    }

    #[test]
    fn lookahead_goes_multiple_deltas_deep() {
        let mut p = Spp::new();
        let mut out = Vec::new();
        let mut max_depth = 0usize;
        for i in 0..4000u64 {
            let line = LineAddr::new(0x80_0000 + i);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 9,
                    line,
                    hit: false,
                },
                &mut out,
            );
            max_depth = max_depth.max(out.len());
        }
        assert!(max_depth >= 2, "lookahead depth never exceeded 1");
    }

    #[test]
    fn stays_within_page() {
        let mut p = Spp::new();
        let mut out = Vec::new();
        for i in 0..5000u64 {
            let line = LineAddr::new(0xC0_0000 + i);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 3,
                    line,
                    hit: false,
                },
                &mut out,
            );
            for r in &out {
                assert_eq!(
                    r.line.page_number(),
                    line.page_number(),
                    "SPP must not cross pages"
                );
            }
        }
    }

    #[test]
    fn ppf_suppresses_after_useless_feedback() {
        let mut p = Spp::new();
        let mut out = Vec::new();
        // Train a stream, then report every prefetch useless; issue rate
        // must drop.
        let mut early = 0;
        let mut late = 0;
        for i in 0..6000u64 {
            let line = LineAddr::new(0x100_0000 + i);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 5,
                    line,
                    hit: false,
                },
                &mut out,
            );
            for r in out.iter() {
                p.on_unused_eviction(r.line);
            }
            if i < 1000 {
                early += out.len();
            }
            if i >= 5000 {
                late += out.len();
            }
        }
        assert!(
            late < early,
            "PPF did not throttle useless prefetches: {early} -> {late}"
        );
    }

    #[test]
    fn storage_in_expected_band() {
        let kb = Spp::new().storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (20.0..45.0).contains(&kb),
            "SPP storage {kb} KB (paper: 39.3 KB)"
        );
    }
}
