//! SMS: Spatial Memory Streaming (Somogyi et al., ISCA'06).
//!
//! Like Bingo, SMS records per-region footprints, but keys its pattern
//! history purely by `PC ⊕ trigger-offset` — the original spatial
//! signature. An accumulation table gathers footprints for active regions;
//! when a region's generation ends the footprint moves to the pattern
//! history table (PHT); a later trigger with the same signature streams
//! the whole footprint out.

use hermes_types::LineAddr;

use crate::{AccessCtx, PrefetchReq, Prefetcher};

const REGION_LINES: u64 = 32; // 2 KB spatial regions
const ACC_ENTRIES: usize = 32;
const PHT_SETS: usize = 1024;
const PHT_WAYS: usize = 4;

#[derive(Debug, Clone, Copy, Default)]
struct AccEntry {
    region: u64,
    footprint: u32,
    signature: u32,
    valid: bool,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PhtEntry {
    signature: u32,
    footprint: u32,
    valid: bool,
    lru: u64,
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Sms {
    acc: Vec<AccEntry>,
    pht: Vec<PhtEntry>,
    clock: u64,
}

impl Sms {
    /// Builds SMS with its paper configuration (~20 KB, Table 6).
    pub fn new() -> Self {
        Self {
            acc: vec![AccEntry::default(); ACC_ENTRIES],
            pht: vec![PhtEntry::default(); PHT_SETS * PHT_WAYS],
            clock: 0,
        }
    }

    fn signature(pc: u64, offset: u8) -> u32 {
        (hermes_types::mix64(pc ^ ((offset as u64) << 40)) & 0xFFFF_FFFF) as u32
    }

    fn pht_set(signature: u32) -> usize {
        (signature as usize) & (PHT_SETS - 1)
    }

    fn pht_lookup(&self, signature: u32) -> Option<u32> {
        let base = Self::pht_set(signature) * PHT_WAYS;
        (base..base + PHT_WAYS)
            .find(|&i| self.pht[i].valid && self.pht[i].signature == signature)
            .map(|i| self.pht[i].footprint)
    }

    fn pht_store(&mut self, signature: u32, footprint: u32) {
        if footprint.count_ones() < 2 {
            return;
        }
        self.clock += 1;
        let base = Self::pht_set(signature) * PHT_WAYS;
        let idx = (base..base + PHT_WAYS)
            .find(|&i| self.pht[i].valid && self.pht[i].signature == signature)
            .or_else(|| (base..base + PHT_WAYS).find(|&i| !self.pht[i].valid))
            .unwrap_or_else(|| {
                (base..base + PHT_WAYS)
                    .min_by_key(|&i| self.pht[i].lru)
                    .expect("PHT_WAYS nonzero")
            });
        self.pht[idx] = PhtEntry {
            signature,
            footprint,
            valid: true,
            lru: self.clock,
        };
    }
}

impl Default for Sms {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Sms {
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>) {
        self.clock += 1;
        let region = ctx.line.raw() / REGION_LINES;
        let offset = (ctx.line.raw() % REGION_LINES) as u8;

        if let Some(e) = self.acc.iter_mut().find(|e| e.valid && e.region == region) {
            e.footprint |= 1 << offset;
            e.lru = self.clock;
            return;
        }

        // Trigger access.
        let signature = Self::signature(ctx.pc, offset);
        if let Some(fp) = self.pht_lookup(signature) {
            let base = region * REGION_LINES;
            for bit in 0..REGION_LINES as u8 {
                if bit != offset && fp & (1 << bit) != 0 {
                    out.push(PrefetchReq {
                        line: LineAddr::new(base + bit as u64),
                    });
                }
            }
        }

        let idx = self
            .acc
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("acc nonzero");
        let old = self.acc[idx];
        if old.valid {
            let (sig, fp) = (old.signature, old.footprint);
            self.pht_store(sig, fp);
        }
        self.acc[idx] = AccEntry {
            region,
            footprint: 1 << offset,
            signature,
            valid: true,
            lru: self.clock,
        };
    }

    fn name(&self) -> &'static str {
        "SMS"
    }

    fn storage_bits(&self) -> usize {
        let acc = ACC_ENTRIES * (38 + 32 + 32 + 16);
        let pht = PHT_SETS * PHT_WAYS * (32 + 32 + 1);
        acc + pht
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recalls_footprint_by_pc_offset_signature() {
        let mut p = Sms::new();
        let pattern = [1u64, 5, 9, 20];
        let mut out = Vec::new();
        let mut predicted = std::collections::HashSet::new();
        let mut covered = 0;
        for r in 0..400u64 {
            let base = (0x8000 + r) * REGION_LINES;
            for &o in &pattern {
                let line = LineAddr::new(base + o);
                if predicted.contains(&line) {
                    covered += 1;
                }
                out.clear();
                p.on_access(
                    &AccessCtx {
                        pc: 0x400def,
                        line,
                        hit: false,
                    },
                    &mut out,
                );
                for req in &out {
                    predicted.insert(req.line);
                }
            }
        }
        assert!(covered > 500, "SMS coverage {covered}/1600");
    }

    #[test]
    fn different_pcs_have_different_signatures() {
        assert_ne!(Sms::signature(0x400100, 3), Sms::signature(0x400104, 3));
        assert_ne!(Sms::signature(0x400100, 3), Sms::signature(0x400100, 4));
    }

    #[test]
    fn sparse_footprints_not_stored() {
        let mut p = Sms::new();
        let mut out = Vec::new();
        // Touch single lines in many regions: nothing worth storing.
        for r in 0..200u64 {
            let line = LineAddr::new((0x100 + r) * REGION_LINES + 7);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 0x400abc,
                    line,
                    hit: false,
                },
                &mut out,
            );
        }
        // Revisit: no recall expected.
        let mut total = 0;
        for r in 0..200u64 {
            let line = LineAddr::new((0x100 + r) * REGION_LINES + 7);
            out.clear();
            p.on_access(
                &AccessCtx {
                    pc: 0x400abc,
                    line,
                    hit: false,
                },
                &mut out,
            );
            total += out.len();
        }
        assert_eq!(total, 0, "single-line footprints must not be recalled");
    }

    #[test]
    fn storage_near_20kb() {
        let kb = Sms::new().storage_bits() as f64 / 8.0 / 1024.0;
        assert!(
            (15.0..40.0).contains(&kb),
            "SMS storage {kb} KB (paper: 20 KB)"
        );
    }
}
