//! Hardware data prefetchers.
//!
//! The paper evaluates Hermes on top of five recently-proposed
//! high-performance prefetchers (§7.2, §8.4.2); all five are implemented
//! here from their original descriptions, plus two classic baselines:
//!
//! * [`pythia::Pythia`] — reinforcement-learning offset prefetcher
//!   (Bera et al., MICRO'21), the paper's baseline prefetcher.
//! * [`bingo::Bingo`] — spatial footprint prefetcher with dual-key lookup
//!   (Bakhshalipour et al., HPCA'19).
//! * [`spp::Spp`] — signature path prefetcher with lookahead and a
//!   perceptron prefetch filter (Kim et al., MICRO'16 + Bhatia et al.,
//!   ISCA'19).
//! * [`mlop::Mlop`] — multi-lookahead offset prefetcher (Shakerinava et
//!   al., DPC3'19).
//! * [`sms::Sms`] — spatial memory streaming (Somogyi et al., ISCA'06).
//! * [`streamer::Streamer`] and [`next_line::NextLine`] — classic
//!   baselines for sanity comparisons.
//!
//! Prefetchers are attached to one cache level by the hierarchy engine
//! (the LLC in the paper's Table 4) and observe demand accesses at that
//! level through [`Prefetcher::on_access`]; usefulness feedback arrives
//! through the fill/hit/eviction hooks, which Pythia's reward scheme and
//! SPP's perceptron filter consume.

pub mod bingo;
pub mod mlop;
pub mod next_line;
pub mod pythia;
pub mod sms;
pub mod spp;
pub mod streamer;

use hermes_types::LineAddr;

/// A demand access observed by a prefetcher at its cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// PC of the demand load/store that caused the access.
    pub pc: u64,
    /// Physical line accessed.
    pub line: LineAddr,
    /// Whether the access hit at this level.
    pub hit: bool,
}

/// A prefetch candidate produced by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchReq {
    /// Line to fetch.
    pub line: LineAddr,
}

/// A hardware data prefetcher.
///
/// Implementations append candidates to `out` (the hierarchy engine
/// deduplicates against cache contents and MSHRs, enforces queue limits,
/// and reports usefulness back through the hooks).
pub trait Prefetcher {
    /// Observes a demand access and proposes prefetches.
    fn on_access(&mut self, ctx: &AccessCtx, out: &mut Vec<PrefetchReq>);

    /// A demand hit on a line this prefetcher brought in (a *useful*
    /// prefetch).
    fn on_prefetch_hit(&mut self, line: LineAddr) {
        let _ = line;
    }

    /// A prefetched line was evicted without ever being demanded (a
    /// *useless* prefetch).
    fn on_unused_eviction(&mut self, line: LineAddr) {
        let _ = line;
    }

    /// A demand arrived while this prefetch was still in flight — the
    /// prefetch was *accurate but late* (Pythia's R_AL reward class).
    fn on_late_prefetch(&mut self, line: LineAddr) {
        let _ = line;
    }

    /// Display name.
    fn name(&self) -> &'static str;

    /// Storage cost in bits (Table 6).
    fn storage_bits(&self) -> usize;
}

/// Which prefetcher a system configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching (the normalisation baseline of every figure).
    None,
    /// Next-line.
    NextLine,
    /// Multi-stream detector.
    Streamer,
    /// Signature path prefetcher + perceptron filter.
    Spp,
    /// Bingo spatial prefetcher.
    Bingo,
    /// Multi-lookahead offset prefetcher.
    Mlop,
    /// Spatial memory streaming.
    Sms,
    /// Pythia (RL-based), the paper's baseline.
    Pythia,
}

impl PrefetcherKind {
    /// All the high-performance prefetchers compared in Fig. 17b.
    pub const PAPER_SET: [PrefetcherKind; 5] = [
        PrefetcherKind::Pythia,
        PrefetcherKind::Bingo,
        PrefetcherKind::Spp,
        PrefetcherKind::Mlop,
        PrefetcherKind::Sms,
    ];

    /// Display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "no-prefetching",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Streamer => "streamer",
            PrefetcherKind::Spp => "SPP",
            PrefetcherKind::Bingo => "Bingo",
            PrefetcherKind::Mlop => "MLOP",
            PrefetcherKind::Sms => "SMS",
            PrefetcherKind::Pythia => "Pythia",
        }
    }
}

/// A no-op prefetcher (the no-prefetching baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn on_access(&mut self, _ctx: &AccessCtx, _out: &mut Vec<PrefetchReq>) {}

    fn name(&self) -> &'static str {
        "none"
    }

    fn storage_bits(&self) -> usize {
        0
    }
}

/// Builds the prefetcher selected by `kind` with its paper configuration.
pub fn build(kind: PrefetcherKind) -> Box<dyn Prefetcher> {
    match kind {
        PrefetcherKind::None => Box::new(NoPrefetcher),
        PrefetcherKind::NextLine => Box::new(next_line::NextLine::new(1)),
        PrefetcherKind::Streamer => Box::new(streamer::Streamer::new(16, 4)),
        PrefetcherKind::Spp => Box::new(spp::Spp::new()),
        PrefetcherKind::Bingo => Box::new(bingo::Bingo::new()),
        PrefetcherKind::Mlop => Box::new(mlop::Mlop::new()),
        PrefetcherKind::Sms => Box::new(sms::Sms::new()),
        PrefetcherKind::Pythia => Box::new(pythia::Pythia::new()),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Feeds a sequential stream of `n` same-page-style accesses from one
    /// PC and returns the fraction of future lines covered by prefetches.
    pub fn stream_coverage(pf: &mut dyn Prefetcher, n: u64) -> f64 {
        let mut issued = std::collections::HashSet::new();
        let mut covered = 0u64;
        let mut out = Vec::new();
        for i in 0..n {
            let line = LineAddr::new(0x10_0000 + i);
            if issued.contains(&line) {
                covered += 1;
                pf.on_prefetch_hit(line);
            }
            out.clear();
            pf.on_access(
                &AccessCtx {
                    pc: 0x400100,
                    line,
                    hit: issued.contains(&line),
                },
                &mut out,
            );
            for r in &out {
                issued.insert(r.line);
            }
        }
        covered as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_constructs_every_kind() {
        for k in [
            PrefetcherKind::None,
            PrefetcherKind::NextLine,
            PrefetcherKind::Streamer,
            PrefetcherKind::Spp,
            PrefetcherKind::Bingo,
            PrefetcherKind::Mlop,
            PrefetcherKind::Sms,
            PrefetcherKind::Pythia,
        ] {
            let mut p = build(k);
            let mut out = Vec::new();
            p.on_access(
                &AccessCtx {
                    pc: 1,
                    line: LineAddr::new(100),
                    hit: false,
                },
                &mut out,
            );
        }
    }

    #[test]
    fn none_never_prefetches() {
        let mut p = NoPrefetcher;
        let mut out = Vec::new();
        for i in 0..100 {
            p.on_access(
                &AccessCtx {
                    pc: 1,
                    line: LineAddr::new(i),
                    hit: false,
                },
                &mut out,
            );
        }
        assert!(out.is_empty());
        assert_eq!(p.storage_bits(), 0);
    }

    #[test]
    fn paper_set_has_five() {
        assert_eq!(PrefetcherKind::PAPER_SET.len(), 5);
        assert_eq!(PrefetcherKind::PAPER_SET[0], PrefetcherKind::Pythia);
    }

    #[test]
    fn every_paper_prefetcher_covers_a_stream() {
        for k in PrefetcherKind::PAPER_SET {
            let mut p = build(k);
            let cov = testutil::stream_coverage(p.as_mut(), 3000);
            assert!(
                cov > 0.5,
                "{} covered only {cov:.2} of a pure stream",
                p.name()
            );
        }
    }
}
