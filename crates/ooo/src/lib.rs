//! A cycle-driven out-of-order core: ROB + RAT renaming + unified
//! reservation stations + a load/store queue with store-to-load
//! forwarding.
//!
//! The legacy core in `hermes-cpu` is dependency-scheduled: completion
//! times propagate eagerly through the dataflow graph with no per-cycle
//! issue limit, which reproduces retirement-blocking behaviour but cannot
//! model the structural effects the paper's deep-ROB argument rests on —
//! a bounded scheduler window, issue bandwidth, and memory disambiguation
//! in the LSQ. [`OooCore`] models those directly:
//!
//! * **Dispatch** renames through a register alias table (RAT): each
//!   source operand maps to either a ready value (with its ready cycle)
//!   or the in-flight producer's sequence number. Dispatch stops when the
//!   ROB, the RS pool, or the relevant LSQ partition is full (counted in
//!   `rs_full_stalls` / `lsq_full_stalls` per blocked cycle).
//! * **Wakeup/select**: an instruction whose last operand resolves enters
//!   the ready queue at the cycle its operands forward; select starts up
//!   to `issue_width` ready instructions per cycle, oldest-ready first,
//!   freeing their RS entries.
//! * **LSQ**: loads and stores occupy a program-ordered queue. A load
//!   whose address generation completes first checks older stores: any
//!   older store with an unknown address parks the load (conservative
//!   disambiguation); a matching older store with a known address
//!   forwards in one cycle (`forwarded_loads`) without touching the
//!   memory system; otherwise the load issues to the hierarchy — which is
//!   where POPET predicts and Hermes may fire its speculative read.
//!   Stores write to the memory system at retirement, in order, exactly
//!   like the legacy core.
//! * **Branches** resolve at execute; a misprediction injects a fetch
//!   bubble until `resolve + branch_penalty` and counts a flush (no
//!   wrong-path execution is modelled, matching the legacy core).
//!
//! Fast-forward contract: [`OooCore::next_work_at`] returns the earliest
//! of the next scheduled event (agen/execute completion), the earliest
//! ready-queue entry, the ROB head's completion, and the end of the fetch
//! bubble while the ROB has room — and [`OooCore::skip_stalled`]
//! attributes a skipped span exactly as that many no-op ticks would
//! (including `rob_occupancy_sum`), so results are bit-identical with
//! fast-forward on or off.
//!
//! [`AnyCore`] is the config-driven dispatcher `hermes-sim` instantiates:
//! `CoreModel::Legacy` (the default) wraps the unchanged legacy core, so
//! every historical configuration stays byte-identical.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use hermes_cpu::branch::{self, BranchPredictor};
use hermes_cpu::config::{CoreConfig, CoreModel, OooConfig};
use hermes_cpu::port::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
use hermes_cpu::stats::CoreStats;
use hermes_cpu::Core;
use hermes_trace::{Instr, MemKind, TraceSource};
use hermes_types::{CoreId, Cycle, VirtAddr};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SrcDep {
    Ready(Cycle),
    On(u64),
}

/// Register-alias-table entry: the architectural register is either ready
/// (value forwarded at the given cycle) or renamed to an in-flight
/// producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RatEntry {
    ReadyAt(Cycle),
    PendingOn(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    Alu,
    Load,
    Store,
    Branch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    /// In a reservation station, waiting for operands.
    InRs,
    /// Operands known; in the ready queue awaiting select (still holds
    /// its RS entry).
    ReadyQ,
    /// Selected; address generation in flight (loads/stores).
    Agen,
    /// Load parked on an older store with an unknown address.
    StoreWait,
    /// Load in the memory system.
    Mem,
    /// Selected; execution in flight (ALU/branch).
    Exec,
    /// Complete at `done_at`.
    Done,
}

#[derive(Debug)]
struct Entry {
    seq: u64,
    kind: EntryKind,
    state: St,
    dispatch_at: Cycle,
    done_at: Cycle,
    deps: [Option<SrcDep>; 2],
    dst: Option<u8>,
    exec_latency: u8,
    pc: u64,
    vaddr: VirtAddr,
    mispredicted: bool,
    served: Option<ServedBy>,
    issued_mem: bool,
    blocked_cycles: u64,
}

/// One program-ordered load/store-queue slot. `word` is the 8-byte-word
/// address used for forwarding matches; `addr_known` flips when address
/// generation completes.
#[derive(Debug, Clone, Copy)]
struct LsqSlot {
    seq: u64,
    store: bool,
    addr_known: bool,
    word: u64,
}

/// The cycle-driven out-of-order core.
pub struct OooCore {
    id: CoreId,
    cfg: CoreConfig,
    ooo: OooConfig,
    trace: Box<dyn TraceSource>,
    rob: VecDeque<Entry>,
    next_seq: u64,
    rat: Vec<RatEntry>,
    /// producer seq -> dependent seqs waiting on it.
    waiters: HashMap<u64, Vec<u64>>,
    /// Instructions with all operands known, keyed by the cycle their
    /// operands forward; select pops `issue_width` per cycle.
    ready: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// Scheduled pipeline events (agen/execute completions), keyed by
    /// cycle; the entry's state disambiguates the kind.
    events: BinaryHeap<Reverse<(Cycle, u64)>>,
    rs_used: usize,
    lsq: VecDeque<LsqSlot>,
    lq_used: usize,
    sq_used: usize,
    /// Skid buffer: an instruction pulled from the trace that could not
    /// enter its queue this cycle (nothing is dropped).
    pending: Option<Instr>,
    fetch_stall_until: Cycle,
    bp: Box<dyn BranchPredictor>,
    stats: CoreStats,
}

impl std::fmt::Debug for OooCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OooCore")
            .field("id", &self.id)
            .field("rob_occupancy", &self.rob.len())
            .field("rs_used", &self.rs_used)
            .field("retired", &self.stats.retired)
            .finish()
    }
}

impl OooCore {
    /// Builds a core running `trace` with the given scheduler geometry.
    pub fn new(id: CoreId, cfg: CoreConfig, ooo: OooConfig, trace: Box<dyn TraceSource>) -> Self {
        cfg.validate();
        ooo.validate();
        let bp = branch::build(cfg.branch_predictor);
        Self {
            id,
            trace,
            rob: VecDeque::with_capacity(cfg.rob_size.min(1024)),
            next_seq: 0,
            rat: vec![RatEntry::ReadyAt(0); hermes_trace::instr::NUM_REGS],
            waiters: HashMap::new(),
            ready: BinaryHeap::new(),
            events: BinaryHeap::new(),
            rs_used: 0,
            lsq: VecDeque::new(),
            lq_used: 0,
            sq_used: 0,
            pending: None,
            fetch_stall_until: 0,
            bp,
            stats: CoreStats::default(),
            cfg,
            ooo,
        }
    }

    /// Core identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.retired
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Name of the workload this core runs.
    pub fn workload_name(&self) -> &str {
        self.trace.name()
    }

    /// Zeroes the statistics (end-of-warmup boundary); in-flight state is
    /// kept, matching the paper's warmup/measurement methodology.
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    /// Current ROB occupancy.
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }

    /// Current load+store queue occupancy.
    pub fn lsq_occupancy(&self) -> usize {
        self.lq_used + self.sq_used
    }

    fn entry_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let idx = (seq - head) as usize;
        if idx < self.rob.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Advances the core by one cycle: completion events, select, retire,
    /// then fetch/dispatch (so wakeups at `now` are selectable at `now`,
    /// and newly dispatched work issues no earlier than `now + 1`).
    pub fn tick(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.process_events(now, port);
        self.select(now);
        self.retire(now, port);
        self.fetch_and_dispatch(now);
    }

    /// The earliest cycle at which [`OooCore::tick`] can do more than
    /// accumulate stalls, assuming no [`OooCore::finish_load`] arrives in
    /// between: the next scheduled agen/execute completion, the earliest
    /// ready-queue entry, the ROB head's completion, or the end of a
    /// fetch bubble while the ROB has room. `Cycle::MAX` means the core
    /// is blocked entirely on the memory system. May return a cycle at or
    /// before `now` (ready work, or fetch possible right now), which
    /// simply prevents a fast-forward jump.
    pub fn next_work_at(&self) -> Cycle {
        let mut at = Cycle::MAX;
        if let Some(&Reverse((t, _))) = self.events.peek() {
            at = at.min(t);
        }
        if let Some(&Reverse((t, _))) = self.ready.peek() {
            at = at.min(t);
        }
        match self.rob.front() {
            Some(head) => {
                if head.state == St::Done {
                    at = at.min(head.done_at);
                }
                if self.rob.len() < self.cfg.rob_size {
                    at = at.min(self.fetch_stall_until);
                }
            }
            None => at = at.min(self.fetch_stall_until),
        }
        at
    }

    /// Accounts `cycles` skipped ticks in bulk, attributing them exactly
    /// as that many no-op [`OooCore::tick`] calls would: `rob.len()` per
    /// cycle into `rob_occupancy_sum`, plus the blocked-head / other /
    /// empty-ROB stall classification. Only valid for spans ending before
    /// [`OooCore::next_work_at`] — over such a span no event fires, no
    /// instruction is ready, nothing retires, and fetch is either bubbled
    /// past the span or blocked by a full ROB (both attempt-free), so
    /// every skipped tick mutates exactly these counters.
    pub fn skip_stalled(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.stats.rob_occupancy_sum += self.rob.len() as u64 * cycles;
        match self.rob.front_mut() {
            None => self.stats.empty_rob_cycles += cycles,
            Some(head) => match head.state {
                St::Agen | St::StoreWait | St::Mem => head.blocked_cycles += cycles,
                _ => self.stats.stall_cycles_other += cycles,
            },
        }
    }

    /// Delivers a finished load from the memory system.
    ///
    /// # Panics
    ///
    /// Panics if `token` does not name a load in the memory system (a
    /// memory-system protocol violation).
    pub fn finish_load(&mut self, token: u64, now: Cycle, served: ServedBy) {
        let idx = self
            .entry_index(token)
            .expect("finish_load for unknown token");
        let e = &mut self.rob[idx];
        assert_eq!(e.state, St::Mem, "finish_load for load not in memory");
        e.served = Some(served);
        self.complete(token, now);
    }

    /// Pops every due pipeline event: store address generation (marks the
    /// SQ slot known, completes the store, and re-checks parked loads),
    /// load address generation (LSQ disambiguation), and ALU/branch
    /// execution completion.
    fn process_events(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        let mut recheck = false;
        while let Some(&Reverse((at, seq))) = self.events.peek() {
            if at > now {
                break;
            }
            self.events.pop();
            let idx = self.entry_index(seq).expect("event for retired entry");
            match self.rob[idx].state {
                St::Agen => match self.rob[idx].kind {
                    EntryKind::Load => {
                        self.mark_lsq_known(seq);
                        self.resolve_load(seq, now, port);
                    }
                    EntryKind::Store => {
                        self.mark_lsq_known(seq);
                        self.complete(seq, now);
                        recheck = true;
                    }
                    _ => unreachable!("agen event for non-memory entry"),
                },
                St::Exec => self.complete(seq, now),
                s => unreachable!("pipeline event for entry in state {s:?}"),
            }
        }
        if recheck {
            self.recheck_parked_loads(now, port);
        }
    }

    fn mark_lsq_known(&mut self, seq: u64) {
        if let Some(slot) = self.lsq.iter_mut().find(|s| s.seq == seq) {
            slot.addr_known = true;
        }
    }

    /// Disambiguates a load whose address is now known against the older
    /// stores in the LSQ: parks it if any older store address is still
    /// unknown, forwards from the youngest matching older store, or
    /// issues it to the memory system.
    fn resolve_load(&mut self, seq: u64, now: Cycle, port: &mut dyn MemoryPort) {
        let word = self
            .lsq
            .iter()
            .find(|s| s.seq == seq)
            .expect("load missing from LSQ")
            .word;
        let mut unknown_older = false;
        let mut forward = false;
        for s in &self.lsq {
            if s.seq >= seq {
                break;
            }
            if !s.store {
                continue;
            }
            if !s.addr_known {
                // An older store whose address is still unknown may alias:
                // conservative disambiguation parks the load.
                unknown_older = true;
                break;
            }
            if s.word == word {
                forward = true; // youngest older match wins (last seen).
            }
        }
        let idx = self.entry_index(seq).expect("load entry present");
        if unknown_older {
            self.rob[idx].state = St::StoreWait;
        } else if forward {
            self.stats.forwarded_loads += 1;
            self.rob[idx].served = Some(ServedBy::L1);
            self.complete(seq, now + 1);
        } else {
            let e = &mut self.rob[idx];
            e.state = St::Mem;
            e.issued_mem = true;
            let (pc, vaddr, dispatch_at) = (e.pc, e.vaddr, e.dispatch_at);
            port.issue_load(
                LoadIssue {
                    core: self.id,
                    token: seq,
                    pc,
                    vaddr,
                },
                now,
            );
            // Retrospective dispatch marker, recorded while the probe's
            // trace for this token is freshly registered.
            port.note_lifecycle(self.id, seq, dispatch_at, "ooo_dispatch");
        }
    }

    /// Re-runs disambiguation for every parked load, oldest first, after
    /// one or more store addresses resolved this cycle.
    fn recheck_parked_loads(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        let parked: Vec<u64> = self
            .rob
            .iter()
            .filter(|e| e.state == St::StoreWait)
            .map(|e| e.seq)
            .collect();
        for seq in parked {
            self.resolve_load(seq, now, port);
        }
    }

    /// Select: starts up to `issue_width` ready instructions, oldest
    /// ready time first, freeing their reservation stations. Leftover
    /// ready entries keep `next_work_at` at or before `now`, so
    /// fast-forward can never skip over deferred work.
    fn select(&mut self, now: Cycle) {
        let mut started = 0;
        while started < self.ooo.issue_width {
            let Some(&Reverse((at, seq))) = self.ready.peek() else {
                break;
            };
            if at > now {
                break;
            }
            self.ready.pop();
            let idx = self.entry_index(seq).expect("ready entry retired");
            debug_assert_eq!(self.rob[idx].state, St::ReadyQ);
            self.rs_used -= 1;
            started += 1;
            match self.rob[idx].kind {
                EntryKind::Load | EntryKind::Store => {
                    self.rob[idx].state = St::Agen;
                    self.events
                        .push(Reverse((now + self.ooo.agen_latency as Cycle, seq)));
                }
                EntryKind::Alu | EntryKind::Branch => {
                    let lat = self.rob[idx].exec_latency as Cycle;
                    self.rob[idx].state = St::Exec;
                    self.events.push(Reverse((now + lat, seq)));
                }
            }
        }
    }

    fn retire(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        let mut retired_now = 0;
        while retired_now < self.cfg.retire_width {
            let Some(head) = self.rob.front_mut() else {
                self.stats.empty_rob_cycles += 1;
                return;
            };
            if head.state == St::Done && head.done_at <= now {
                let e = self.rob.pop_front().expect("front checked above");
                self.waiters.remove(&e.seq);
                self.stats.retired += 1;
                retired_now += 1;
                match e.kind {
                    EntryKind::Load => {
                        debug_assert_eq!(self.lsq.front().map(|s| s.seq), Some(e.seq));
                        self.lsq.pop_front();
                        self.stats.loads += 1;
                        self.lq_used -= 1;
                        let served = e.served.unwrap_or(ServedBy::L1);
                        self.stats.record_served(served);
                        if served.is_offchip() {
                            if e.blocked_cycles > 0 {
                                self.stats.offchip_blocking += 1;
                                self.stats.stall_cycles_offchip += e.blocked_cycles;
                            } else {
                                self.stats.offchip_nonblocking += 1;
                            }
                        } else {
                            self.stats.stall_cycles_onchip_load += e.blocked_cycles;
                        }
                        if e.issued_mem {
                            // Close out the sampled lifecycle trace (the
                            // probe drops these for unsampled tokens).
                            port.note_lifecycle(self.id, e.seq, e.done_at, "ooo_complete");
                            port.note_lifecycle(self.id, e.seq, now, "ooo_retire");
                        }
                    }
                    EntryKind::Store => {
                        debug_assert_eq!(self.lsq.front().map(|s| s.seq), Some(e.seq));
                        self.lsq.pop_front();
                        self.stats.stores += 1;
                        self.sq_used -= 1;
                        port.issue_store(
                            StoreIssue {
                                core: self.id,
                                pc: e.pc,
                                vaddr: e.vaddr,
                            },
                            now,
                        );
                    }
                    EntryKind::Branch => self.stats.branches += 1,
                    EntryKind::Alu => {}
                }
            } else {
                // Head not ready: attribute the stalled cycle.
                match head.state {
                    St::Agen | St::StoreWait | St::Mem => head.blocked_cycles += 1,
                    _ => self.stats.stall_cycles_other += 1,
                }
                return;
            }
        }
    }

    fn fetch_and_dispatch(&mut self, now: Cycle) {
        if now < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            if self.rs_used >= self.ooo.rs_entries {
                self.stats.rs_full_stalls += 1;
                break;
            }
            let instr = match self.pending.take() {
                Some(i) => i,
                None => self.trace.next_instr(),
            };
            match instr.mem {
                Some(m) if m.kind == MemKind::Load => {
                    if self.lq_used >= self.cfg.lq_size {
                        self.stats.lsq_full_stalls += 1;
                        self.pending = Some(instr);
                        break;
                    }
                    self.lq_used += 1;
                }
                Some(_) => {
                    if self.sq_used >= self.cfg.sq_size {
                        self.stats.lsq_full_stalls += 1;
                        self.pending = Some(instr);
                        break;
                    }
                    self.sq_used += 1;
                }
                None => {}
            }
            let stop_fetch = self.dispatch(instr, now);
            if stop_fetch {
                break;
            }
        }
    }

    /// Dispatches one instruction: renames sources through the RAT,
    /// claims an RS entry (and an LSQ slot for memory ops), and wakes the
    /// instruction immediately if its operands are already known. Returns
    /// true if fetch must stop (branch misprediction bubble).
    fn dispatch(&mut self, instr: Instr, now: Cycle) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;

        let kind = if instr.is_load() {
            EntryKind::Load
        } else if instr.is_store() {
            EntryKind::Store
        } else if instr.is_branch() {
            EntryKind::Branch
        } else {
            EntryKind::Alu
        };

        let mut deps = [None, None];
        for (slot, src) in instr.src_regs.iter().enumerate() {
            if let Some(r) = src {
                deps[slot] = Some(match self.rat[*r as usize] {
                    RatEntry::ReadyAt(t) => SrcDep::Ready(t),
                    RatEntry::PendingOn(p) => {
                        self.waiters.entry(p).or_default().push(seq);
                        SrcDep::On(p)
                    }
                });
            }
        }

        let mut mispredicted = false;
        if let Some(b) = instr.branch {
            let predicted = self.bp.predict(instr.pc);
            self.bp.train(instr.pc, b.taken, predicted);
            if predicted != b.taken {
                self.stats.branch_mispredicts += 1;
                self.stats.flushes += 1;
                mispredicted = true;
            }
        }

        if let Some(d) = instr.dst_reg {
            self.rat[d as usize] = RatEntry::PendingOn(seq);
        }

        if let Some(m) = instr.mem {
            self.lsq.push_back(LsqSlot {
                seq,
                store: m.kind == MemKind::Store,
                addr_known: false,
                word: m.vaddr.raw() >> 3,
            });
        }

        self.rob.push_back(Entry {
            seq,
            kind,
            state: St::InRs,
            dispatch_at: now,
            done_at: 0,
            deps,
            dst: instr.dst_reg,
            exec_latency: instr.exec_latency.max(1),
            pc: instr.pc,
            vaddr: instr.mem.map(|m| m.vaddr).unwrap_or(VirtAddr::new(0)),
            mispredicted,
            served: None,
            issued_mem: false,
            blocked_cycles: 0,
        });
        self.rs_used += 1;

        if mispredicted {
            // Fetch halts until the branch resolves; `complete` fills in
            // the release cycle.
            self.fetch_stall_until = Cycle::MAX;
        }

        self.try_wake(seq);
        mispredicted
    }

    /// Moves an RS entry whose operands are all known into the ready
    /// queue at the cycle its last operand forwards (no earlier than one
    /// cycle after dispatch).
    fn try_wake(&mut self, seq: u64) {
        let Some(idx) = self.entry_index(seq) else {
            return;
        };
        let e = &self.rob[idx];
        if e.state != St::InRs {
            return;
        }
        let mut ready = e.dispatch_at + 1;
        for d in e.deps.iter().flatten() {
            match d {
                SrcDep::Ready(t) => ready = ready.max(*t),
                SrcDep::On(_) => return,
            }
        }
        self.rob[idx].state = St::ReadyQ;
        self.ready.push(Reverse((ready, seq)));
    }

    /// Propagates a completion at `done`: marks the entry done, updates
    /// the RAT (unless a younger producer renamed the register), releases
    /// a misprediction fetch bubble, and wakes dependents.
    fn complete(&mut self, seq: u64, done: Cycle) {
        if let Some(idx) = self.entry_index(seq) {
            let e = &mut self.rob[idx];
            e.state = St::Done;
            e.done_at = done;
            let (dst, mispredicted) = (e.dst, e.mispredicted);
            if let Some(d) = dst {
                if self.rat[d as usize] == RatEntry::PendingOn(seq) {
                    self.rat[d as usize] = RatEntry::ReadyAt(done);
                }
            }
            if mispredicted {
                self.fetch_stall_until = done + self.cfg.branch_penalty as Cycle;
            }
        }
        if let Some(dependents) = self.waiters.remove(&seq) {
            for dep_seq in dependents {
                let Some(didx) = self.entry_index(dep_seq) else {
                    continue;
                };
                for d in self.rob[didx].deps.iter_mut().flatten() {
                    if *d == SrcDep::On(seq) {
                        *d = SrcDep::Ready(done);
                    }
                }
                self.try_wake(dep_seq);
            }
        }
    }
}

/// The core model `hermes-sim` instantiates: either the legacy
/// dependency-scheduled [`Core`] or the cycle-driven [`OooCore`],
/// selected by [`CoreConfig::model`]. Every method delegates without
/// additional logic, so `CoreModel::Legacy` behaves bit-identically to
/// using [`Core`] directly.
#[derive(Debug)]
pub enum AnyCore {
    /// The dependency-scheduled legacy model.
    Legacy(Core),
    /// The cycle-driven ROB/RAT/RS/LSQ model.
    Ooo(OooCore),
}

impl AnyCore {
    /// Builds the core selected by `cfg.model`.
    pub fn new(id: CoreId, cfg: CoreConfig, trace: Box<dyn TraceSource>) -> Self {
        match cfg.model.clone() {
            CoreModel::Legacy => AnyCore::Legacy(Core::new(id, cfg, trace)),
            CoreModel::OoO(ooo) => AnyCore::Ooo(OooCore::new(id, cfg, ooo, trace)),
        }
    }

    /// Core identifier.
    pub fn id(&self) -> CoreId {
        match self {
            AnyCore::Legacy(c) => c.id(),
            AnyCore::Ooo(c) => c.id(),
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        match self {
            AnyCore::Legacy(c) => c.retired(),
            AnyCore::Ooo(c) => c.retired(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        match self {
            AnyCore::Legacy(c) => c.stats(),
            AnyCore::Ooo(c) => c.stats(),
        }
    }

    /// Name of the workload this core runs.
    pub fn workload_name(&self) -> &str {
        match self {
            AnyCore::Legacy(c) => c.workload_name(),
            AnyCore::Ooo(c) => c.workload_name(),
        }
    }

    /// Zeroes the statistics (end-of-warmup boundary).
    pub fn reset_stats(&mut self) {
        match self {
            AnyCore::Legacy(c) => c.reset_stats(),
            AnyCore::Ooo(c) => c.reset_stats(),
        }
    }

    /// Advances the core by one cycle.
    pub fn tick(&mut self, now: Cycle, port: &mut dyn MemoryPort) {
        match self {
            AnyCore::Legacy(c) => c.tick(now, port),
            AnyCore::Ooo(c) => c.tick(now, port),
        }
    }

    /// The earliest cycle the next tick can do real work (fast-forward).
    pub fn next_work_at(&self) -> Cycle {
        match self {
            AnyCore::Legacy(c) => c.next_work_at(),
            AnyCore::Ooo(c) => c.next_work_at(),
        }
    }

    /// Accounts skipped idle cycles in bulk.
    pub fn skip_stalled(&mut self, cycles: u64) {
        match self {
            AnyCore::Legacy(c) => c.skip_stalled(cycles),
            AnyCore::Ooo(c) => c.skip_stalled(cycles),
        }
    }

    /// Delivers a finished load from the memory system.
    pub fn finish_load(&mut self, token: u64, now: Cycle, served: ServedBy) {
        match self {
            AnyCore::Legacy(c) => c.finish_load(token, now, served),
            AnyCore::Ooo(c) => c.finish_load(token, now, served),
        }
    }

    /// Current ROB occupancy (interval telemetry).
    pub fn rob_occupancy(&self) -> usize {
        match self {
            AnyCore::Legacy(c) => c.rob_occupancy(),
            AnyCore::Ooo(c) => c.rob_occupancy(),
        }
    }

    /// Current load+store queue occupancy (interval telemetry).
    pub fn lsq_occupancy(&self) -> usize {
        match self {
            AnyCore::Legacy(c) => c.lsq_occupancy(),
            AnyCore::Ooo(c) => c.lsq_occupancy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_cpu::BranchKind;
    use hermes_trace::source::VecSource;

    /// Fixed-latency memory stub mirroring the legacy core's test
    /// harness: completes every load after `latency` cycles.
    struct StubMem {
        latency: Cycle,
        served: ServedBy,
        pending: Vec<(Cycle, u64)>,
        issued: Vec<LoadIssue>,
        stores: Vec<StoreIssue>,
        lifecycle: Vec<(u64, Cycle, &'static str)>,
    }

    impl StubMem {
        fn new(latency: Cycle, served: ServedBy) -> Self {
            Self {
                latency,
                served,
                pending: Vec::new(),
                issued: Vec::new(),
                stores: Vec::new(),
                lifecycle: Vec::new(),
            }
        }

        fn deliver_due(&mut self, now: Cycle, core: &mut OooCore) {
            let due: Vec<(Cycle, u64)> = self
                .pending
                .iter()
                .copied()
                .filter(|&(t, _)| t <= now)
                .collect();
            self.pending.retain(|&(t, _)| t > now);
            for (_, tok) in due {
                core.finish_load(tok, now, self.served);
            }
        }
    }

    impl MemoryPort for StubMem {
        fn issue_load(&mut self, req: LoadIssue, now: Cycle) {
            self.issued.push(req);
            self.pending.push((now + self.latency, req.token));
        }

        fn issue_store(&mut self, req: StoreIssue, now: Cycle) {
            let _ = now;
            self.stores.push(req);
        }

        fn note_lifecycle(&mut self, _core: CoreId, token: u64, at: Cycle, kind: &'static str) {
            self.lifecycle.push((token, at, kind));
        }
    }

    fn mk(cfg: CoreConfig, instrs: Vec<Instr>) -> OooCore {
        let ooo = match &cfg.model {
            CoreModel::OoO(o) => o.clone(),
            CoreModel::Legacy => OooConfig::baseline(),
        };
        OooCore::new(0, cfg, ooo, Box::new(VecSource::new("t", instrs)))
    }

    fn run(core: &mut OooCore, mem: &mut StubMem, cycles: Cycle) {
        for now in 0..cycles {
            mem.deliver_due(now, core);
            core.tick(now, mem);
        }
    }

    fn chase() -> Vec<Instr> {
        vec![Instr::load(
            0x400000,
            VirtAddr::new(0x1000),
            Some(1),
            [Some(1), None],
        )]
    }

    #[test]
    fn independent_alu_reaches_wide_ipc() {
        let mut core = mk(
            CoreConfig::baseline(),
            vec![
                Instr::alu(0x400000, Some(1), [None, None]),
                Instr::alu(0x400004, Some(2), [None, None]),
                Instr::alu(0x400008, Some(3), [None, None]),
            ],
        );
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 1000);
        let ipc = core.stats().ipc(1000);
        assert!(
            ipc > 4.0,
            "independent ALU stream should near issue width, got {ipc}"
        );
    }

    #[test]
    fn dependent_chain_is_serial() {
        let mut core = mk(
            CoreConfig::baseline(),
            vec![Instr::alu(0x400000, Some(1), [Some(1), None])],
        );
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 1000);
        let ipc = core.stats().ipc(1000);
        assert!(ipc < 1.2, "serial chain must not exceed 1 IPC, got {ipc}");
        assert!(ipc > 0.8, "serial chain should sustain ~1 IPC, got {ipc}");
    }

    #[test]
    fn issue_width_caps_parallel_alu() {
        // 8 independent ALU ops per loop but a 2-wide select: IPC ≤ 2.
        let instrs: Vec<Instr> = (0..8)
            .map(|i| Instr::alu(0x400000 + i * 4, Some(1 + i as u8), [None, None]))
            .collect();
        let narrow = OooConfig {
            issue_width: 2,
            ..OooConfig::baseline()
        };
        let cfg = CoreConfig::baseline().with_model(CoreModel::OoO(narrow));
        let mut core = mk(cfg, instrs);
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 1000);
        let ipc = core.stats().ipc(1000);
        assert!(ipc < 2.2, "2-wide select must cap IPC near 2, got {ipc}");
        assert!(ipc > 1.5, "2-wide select should sustain ~2 IPC, got {ipc}");
    }

    #[test]
    fn independent_loads_overlap() {
        let instrs: Vec<Instr> = (0..4)
            .map(|i| {
                Instr::load(
                    0x400000 + i * 4,
                    VirtAddr::new(0x1000 * (i + 1)),
                    Some(8 + i as u8),
                    [Some(1), None],
                )
            })
            .collect();
        let mut core = mk(CoreConfig::baseline(), instrs);
        let mut mem = StubMem::new(100, ServedBy::Dram);
        run(&mut core, &mut mem, 10_000);
        assert!(core.retired() > 300, "retired {}", core.retired());
    }

    #[test]
    fn load_latency_gates_dependent_chain() {
        let mut core = mk(CoreConfig::baseline(), chase());
        let mut mem = StubMem::new(100, ServedBy::Dram);
        run(&mut core, &mut mem, 10_000);
        let retired = core.retired();
        assert!((80..=120).contains(&retired), "retired {retired}");
    }

    #[test]
    fn offchip_blocking_attribution() {
        let mut core = mk(CoreConfig::baseline(), chase());
        let mut mem = StubMem::new(200, ServedBy::Dram);
        run(&mut core, &mut mem, 5_000);
        let s = core.stats();
        assert!(s.offchip_blocking > 0, "serial off-chip loads must block");
        assert!(s.stall_cycles_offchip > s.offchip_blocking * 100);
        assert_eq!(s.offchip_nonblocking + s.offchip_blocking, s.served_dram);
    }

    #[test]
    fn stores_retire_in_program_order() {
        // store A; slow independent load; store C. Store C completes long
        // before the load, but must not reach memory until the load
        // retires: in-order store retirement.
        let instrs = vec![
            Instr::store(0x400000, VirtAddr::new(0x2000), [None, None]),
            Instr::load(0x400004, VirtAddr::new(0x9000), Some(1), [None, None]),
            Instr::store(0x400008, VirtAddr::new(0x3000), [None, None]),
        ];
        let mut core = mk(CoreConfig::baseline(), instrs);
        let mut mem = StubMem::new(400, ServedBy::Dram);
        // Tick only until just before the first load completes.
        for now in 0..300 {
            mem.deliver_due(now, &mut core);
            core.tick(now, &mut mem);
        }
        // The trace cycles; at most the stores *preceding* the oldest
        // unfinished load may have been written out. With the load
        // in-flight, exactly the first store of the first iteration has
        // retired.
        assert_eq!(mem.stores.len(), 1, "younger store escaped the load");
        assert_eq!(mem.stores[0].vaddr.raw(), 0x2000);
        run(&mut core, &mut mem, 2_000);
        // Once running freely, stores come out strictly in program order.
        for w in mem.stores.windows(2) {
            assert!(
                [0x2000, 0x3000].contains(&w[1].vaddr.raw()),
                "unexpected store addr"
            );
        }
        assert!(core.retired() > 3);
    }

    #[test]
    fn store_to_load_forwarding_bypasses_memory() {
        // store [0x2000] <- r1; load r2 <- [0x2000]: same 8-byte word, so
        // the load forwards from the SQ and never touches memory.
        let instrs = vec![
            Instr::store(0x400000, VirtAddr::new(0x2000), [None, None]),
            Instr::load(0x400004, VirtAddr::new(0x2000), Some(2), [None, None]),
        ];
        let mut core = mk(CoreConfig::baseline(), instrs);
        let mut mem = StubMem::new(200, ServedBy::Dram);
        run(&mut core, &mut mem, 2_000);
        assert!(core.stats().forwarded_loads > 0, "no forwarding happened");
        assert!(
            mem.issued.is_empty(),
            "forwarded loads must not reach memory: {} issued",
            mem.issued.len()
        );
        // Forwarded loads complete on-chip in ~1 cycle: throughput is
        // bounded by width, not by the 200-cycle memory latency.
        assert!(core.retired() > 1_000, "retired {}", core.retired());
        assert_eq!(core.stats().served_dram, 0);
    }

    #[test]
    fn naive_replay_without_matching_store_goes_to_memory() {
        // The replay-model contrast: same shape, different word — every
        // load must miss the SQ and pay the memory latency.
        let instrs = vec![
            Instr::store(0x400000, VirtAddr::new(0x2000), [None, None]),
            Instr::load(0x400004, VirtAddr::new(0x8000), Some(2), [None, None]),
        ];
        let mut core = mk(CoreConfig::baseline(), instrs);
        let mut mem = StubMem::new(200, ServedBy::Dram);
        run(&mut core, &mut mem, 2_000);
        assert_eq!(core.stats().forwarded_loads, 0);
        assert!(!mem.issued.is_empty(), "non-matching loads must issue");
        assert!(core.stats().served_dram > 0);
    }

    #[test]
    fn unknown_store_address_parks_younger_load() {
        // The store's address is "generated" only after its operand (a
        // slow load) resolves... but addresses come from the trace, so
        // model it with operand timing: store depends on r1 produced by a
        // slow load; the younger load to a *different* address must wait
        // for the store's agen before issuing (conservative
        // disambiguation).
        let instrs = vec![
            Instr::load(0x400000, VirtAddr::new(0x9000), Some(1), [None, None]), // slow
            Instr::store(0x400004, VirtAddr::new(0x2000), [Some(1), None]),      // waits on r1
            Instr::load(0x400008, VirtAddr::new(0x5000), Some(2), [None, None]), // independent
        ];
        let cfg = CoreConfig {
            fetch_width: 3,
            ..CoreConfig::baseline()
        };
        let mut core = mk(cfg, instrs);
        let mut mem = StubMem::new(300, ServedBy::Dram);
        for now in 0..200 {
            mem.deliver_due(now, &mut core);
            core.tick(now, &mut mem);
        }
        // Only first-iteration leading loads may have issued; the load at
        // 0x5000 sits behind the unresolved store.
        assert!(
            mem.issued.iter().all(|l| l.vaddr.raw() != 0x5000),
            "load issued past an older store with unknown address"
        );
        run(&mut core, &mut mem, 3_000);
        assert!(
            mem.issued.iter().any(|l| l.vaddr.raw() == 0x5000),
            "parked load never released"
        );
    }

    #[test]
    fn rs_full_counts_dispatch_stalls() {
        let tiny = OooConfig {
            rs_entries: 4,
            ..OooConfig::baseline()
        };
        let cfg = CoreConfig::baseline().with_model(CoreModel::OoO(tiny));
        let mut core = mk(cfg, chase());
        let mut mem = StubMem::new(500, ServedBy::Dram);
        run(&mut core, &mut mem, 2_000);
        assert!(
            core.stats().rs_full_stalls > 0,
            "4-entry RS must backpressure a blocked chase"
        );
    }

    #[test]
    fn lsq_full_counts_dispatch_stalls() {
        let cfg = CoreConfig {
            lq_size: 2,
            ..CoreConfig::baseline()
        };
        let instrs: Vec<Instr> = (0..4)
            .map(|i| {
                Instr::load(
                    0x400000 + i * 4,
                    VirtAddr::new(0x1000 * (i + 1)),
                    Some(8 + i as u8),
                    [None, None],
                )
            })
            .collect();
        let mut core = mk(cfg, instrs);
        let mut mem = StubMem::new(500, ServedBy::Dram);
        // Stop before the first completion: no LQ slot is ever recycled,
        // so cumulative issues equal peak LQ occupancy.
        run(&mut core, &mut mem, 400);
        assert!(
            core.stats().lsq_full_stalls > 0,
            "2-entry LQ must stall dispatch"
        );
        assert!(
            mem.issued.len() <= 2,
            "LQ cap violated: {}",
            mem.issued.len()
        );
    }

    #[test]
    fn flushes_counted_on_mispredicts() {
        // Always-taken predictor vs never-taken branches: every branch
        // mispredicts and flushes.
        let cfg = CoreConfig {
            branch_predictor: BranchKind::AlwaysTaken,
            ..CoreConfig::baseline()
        };
        let instrs = vec![
            Instr::alu(0x400000, Some(1), [None, None]),
            Instr::branch(0x400004, false, Some(1)),
        ];
        let mut core = mk(cfg, instrs);
        let mut mem = StubMem::new(5, ServedBy::L1);
        run(&mut core, &mut mem, 2_000);
        let s = core.stats();
        assert!(s.branches > 0);
        assert_eq!(s.flushes, s.branch_mispredicts);
        assert_eq!(s.flushes, s.branches, "every never-taken branch flushes");
    }

    #[test]
    fn rob_occupancy_sum_tracks_window_depth() {
        let mut core = mk(CoreConfig::baseline(), chase());
        let mut mem = StubMem::new(1_000_000, ServedBy::Dram); // never completes
        for now in 0..500 {
            core.tick(now, &mut mem);
        }
        let s = *core.stats();
        // The chase fills the window and sits there: mean occupancy over
        // 500 cycles must be well above zero and at most the ROB size.
        assert!(s.rob_occupancy_sum > 0);
        assert!(s.rob_occupancy_sum <= 512 * 500);
        assert!(s.rob_occupancy_sum / 500 > 4, "window never filled");
    }

    #[test]
    fn skip_stalled_matches_ticked_stalls() {
        // Mirrors the legacy core's fast-forward contract test: a core
        // ticking through 500 dead cycles and one skipping them in a
        // single call must end with identical statistics.
        let mk_pair = || {
            let cfg = CoreConfig {
                rob_size: 16,
                ..CoreConfig::baseline()
            };
            mk(cfg, chase())
        };
        let mut ticked = mk_pair();
        let mut skipped = mk_pair();
        let mut mem_t = StubMem::new(1_000_000, ServedBy::Dram);
        let mut mem_s = StubMem::new(1_000_000, ServedBy::Dram);
        for now in 0..20 {
            ticked.tick(now, &mut mem_t);
            skipped.tick(now, &mut mem_s);
        }
        assert_eq!(
            ticked.next_work_at(),
            Cycle::MAX,
            "chase must block on memory"
        );

        for now in 20..520 {
            ticked.tick(now, &mut mem_t);
        }
        skipped.skip_stalled(500);

        let tok = mem_t.issued.first().expect("head load issued").token;
        ticked.finish_load(tok, 520, ServedBy::Dram);
        skipped.finish_load(tok, 520, ServedBy::Dram);
        ticked.tick(520, &mut mem_t);
        skipped.tick(520, &mut mem_s);

        assert!(ticked.retired() >= 1);
        assert_eq!(ticked.stats(), skipped.stats());
        assert!(ticked.stats().stall_cycles_offchip >= 500);
        assert!(ticked.stats().rob_occupancy_sum > 0);
    }

    #[test]
    fn lifecycle_notes_emitted_for_memory_loads() {
        let mut core = mk(CoreConfig::baseline(), chase());
        let mut mem = StubMem::new(20, ServedBy::Dram);
        run(&mut core, &mut mem, 200);
        let kinds: Vec<&str> = mem.lifecycle.iter().map(|&(_, _, k)| k).collect();
        assert!(kinds.contains(&"ooo_dispatch"));
        assert!(kinds.contains(&"ooo_complete"));
        assert!(kinds.contains(&"ooo_retire"));
        // Per token: dispatch ≤ complete ≤ retire.
        let tok = mem.lifecycle[0].0;
        let at = |kind: &str| {
            mem.lifecycle
                .iter()
                .find(|&&(t, _, k)| t == tok && k == kind)
                .map(|&(_, a, _)| a)
                .unwrap()
        };
        assert!(at("ooo_dispatch") <= at("ooo_complete"));
        assert!(at("ooo_complete") <= at("ooo_retire"));
    }

    #[test]
    fn any_core_dispatches_on_model() {
        let mk_src = || Box::new(VecSource::new("t", chase()));
        let legacy = AnyCore::new(0, CoreConfig::baseline(), mk_src());
        assert!(matches!(legacy, AnyCore::Legacy(_)));
        let ooo = AnyCore::new(
            0,
            CoreConfig::baseline().with_model(CoreModel::OoO(OooConfig::baseline())),
            mk_src(),
        );
        assert!(matches!(ooo, AnyCore::Ooo(_)));
        assert_eq!(ooo.rob_occupancy(), 0);
        assert_eq!(ooo.lsq_occupancy(), 0);
        assert_eq!(ooo.next_work_at(), 0);
    }

    #[test]
    #[should_panic]
    fn finish_unknown_token_panics() {
        let mut core = mk(CoreConfig::baseline(), chase());
        core.finish_load(999, 0, ServedBy::L1);
    }
}
