//! One level of a cache hierarchy: tag array(s) + MSHR table(s) + stats.
//!
//! A [`CacheLevel`] bundles everything a hierarchy engine needs per level
//! — the set-associative [`CacheArray`]s, the [`MshrTable`]s tracking
//! outstanding misses, and aggregate [`LevelStats`] — behind a uniform,
//! core-indexed interface. The level's [`LevelScope`] decides the
//! structural layout:
//!
//! * [`LevelScope::Private`] — one array + MSHR table per core, each with
//!   the per-core geometry of the [`LevelConfig`];
//! * [`LevelScope::Shared`] — a single array + MSHR table serving every
//!   core, with capacity and MSHR count scaled by the core count (the
//!   paper's "3 MB/core" LLC convention).
//!
//! The level is still *passive*: it holds no queues and models no time.
//! Request orchestration — lookup ordering, latencies, fills, retries,
//! the Hermes merge path — stays in the hierarchy engine (`hermes-sim`),
//! which now drives an arbitrary `Vec<CacheLevel>` instead of a
//! hardcoded L1/L2/LLC triple. The MSHR waiter payload `W` is chosen by
//! that engine.
//!
//! # Example
//!
//! ```
//! use hermes_cache::{CacheConfig, CacheLevel, LevelConfig, ReplacementKind};
//! use hermes_types::LineAddr;
//!
//! // A shared 2-core level: capacity and MSHRs scale with core count.
//! let per_core = CacheConfig::new("LLC", 1 << 20, 16, ReplacementKind::Lru, 8);
//! let mut level: CacheLevel<u32> = CacheLevel::new(LevelConfig::shared(per_core), 2);
//! assert_eq!(level.config().size_bytes, 2 << 20);
//! assert_eq!(level.mshr_capacity(0), 16);
//!
//! // Both cores see the same array.
//! let line = LineAddr::new(0x40);
//! level.fill(0, line, false, false, 0);
//! assert!(level.probe(1, line));
//! ```

use hermes_types::LineAddr;

use crate::array::{AccessResult, CacheArray, CacheConfig, Evicted};
use crate::mshr::{MshrFull, MshrTable};

/// Whether a hierarchy level is replicated per core or shared by all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelScope {
    /// One instance per core (L1D/L2 in the paper's Table 4).
    Private,
    /// A single instance serving every core, scaled by core count (the
    /// paper's shared LLC).
    Shared,
}

/// Configuration of one hierarchy level: per-core cache geometry plus
/// the sharing scope.
///
/// For a [`LevelScope::Shared`] level the embedded [`CacheConfig`]
/// describes the *per-core* share; [`LevelConfig::instantiated`] scales
/// capacity and MSHR count by the core count, exactly like the paper's
/// "3 MB/core" LLC.
#[derive(Debug, Clone)]
pub struct LevelConfig {
    /// Per-core cache geometry (capacity, ways, replacement, MSHRs,
    /// latency).
    pub cache: CacheConfig,
    /// Private per core or shared by all cores.
    pub scope: LevelScope,
}

impl LevelConfig {
    /// A core-private level.
    pub fn private(cache: CacheConfig) -> Self {
        Self {
            cache,
            scope: LevelScope::Private,
        }
    }

    /// A level shared by all cores (per-core capacity in `cache`).
    pub fn shared(cache: CacheConfig) -> Self {
        Self {
            cache,
            scope: LevelScope::Shared,
        }
    }

    /// The concrete geometry of one structural instance of this level in
    /// a `cores`-core system: the config itself for a private level, or
    /// capacity and MSHRs scaled by `cores` for a shared one.
    ///
    /// # Panics
    ///
    /// Panics if the scaled geometry does not yield a power-of-two set
    /// count (propagated from [`CacheConfig::new`]).
    pub fn instantiated(&self, cores: usize) -> CacheConfig {
        match self.scope {
            LevelScope::Private => self.cache.clone(),
            LevelScope::Shared => CacheConfig::new(
                self.cache.name.clone(),
                self.cache.size_bytes * cores as u64,
                self.cache.ways,
                self.cache.replacement,
                self.cache.mshrs * cores,
            )
            .with_latency(self.cache.latency),
        }
    }
}

/// Aggregate event counters for one level (all cores combined).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Tag-array accesses (demand lookups, including retried ones).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines filled into the level.
    pub fills: u64,
    /// Dirty victims evicted by fills (writebacks pushed down).
    pub dirty_evictions: u64,
    /// Requests rejected because every MSHR was in use (each triggers a
    /// retry in the hierarchy engine).
    pub mshr_rejections: u64,
    /// Lines invalidated by coherence actions (remote-store
    /// invalidations and inclusive-directory back-invalidations); zero
    /// with coherence off.
    pub invalidations: u64,
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct CacheLevel<W> {
    cfg: CacheConfig,
    scope: LevelScope,
    arrays: Vec<CacheArray>,
    mshrs: Vec<MshrTable<W>>,
    stats: LevelStats,
    /// Per-instance change counter, bumped by exactly the transitions
    /// that can alter the outcome of a parked (MSHR-rejected) access:
    /// a fill (the parked line could become resident), a successful
    /// MSHR allocation (the parked line could now merge), or an MSHR
    /// completion (a register freed). The hierarchy's retry queue
    /// compares epochs to skip re-walking the tag array for attempts
    /// that are guaranteed to fail again.
    epochs: Vec<u64>,
}

impl<W> CacheLevel<W> {
    /// Builds an empty level for a `cores`-core system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the geometry is invalid.
    pub fn new(cfg: LevelConfig, cores: usize) -> Self {
        assert!(cores >= 1, "need at least one core");
        let inst = cfg.instantiated(cores);
        let n = match cfg.scope {
            LevelScope::Private => cores,
            LevelScope::Shared => 1,
        };
        Self {
            arrays: (0..n).map(|_| CacheArray::new(&inst)).collect(),
            mshrs: (0..n).map(|_| MshrTable::new(inst.mshrs)).collect(),
            scope: cfg.scope,
            cfg: inst,
            stats: LevelStats::default(),
            epochs: vec![0; n],
        }
    }

    /// The structural instance serving `core`.
    #[inline]
    fn slot(&self, core: usize) -> usize {
        match self.scope {
            LevelScope::Private => core,
            LevelScope::Shared => 0,
        }
    }

    /// Sharing scope.
    pub fn scope(&self) -> LevelScope {
        self.scope
    }

    /// Whether the level is shared by all cores.
    pub fn is_shared(&self) -> bool {
        self.scope == LevelScope::Shared
    }

    /// Display name ("L1D", "L2", ...).
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Lookup latency contribution in cycles.
    pub fn latency(&self) -> u32 {
        self.cfg.latency
    }

    /// The instantiated (scope-scaled) geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated event counters.
    pub fn stats(&self) -> &LevelStats {
        &self.stats
    }

    /// Zeroes the event counters (warmup boundary); cache and MSHR state
    /// is preserved.
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }

    /// Demand access on behalf of `core`; updates replacement state and
    /// counters.
    pub fn access(&mut self, core: usize, line: LineAddr, pc_signature: u16) -> AccessResult {
        let slot = self.slot(core);
        let res = self.arrays[slot].access(line, pc_signature);
        self.stats.accesses += 1;
        if res.hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        res
    }

    /// Presence check without perturbing replacement or counters.
    pub fn probe(&self, core: usize, line: LineAddr) -> bool {
        self.arrays[self.slot(core)].probe(line)
    }

    /// Marks a resident line dirty; returns whether it was present.
    pub fn mark_dirty(&mut self, core: usize, line: LineAddr) -> bool {
        let slot = self.slot(core);
        self.arrays[slot].mark_dirty(line)
    }

    /// Fills `line` into `core`'s instance, returning the victim if one
    /// was evicted.
    pub fn fill(
        &mut self,
        core: usize,
        line: LineAddr,
        dirty: bool,
        prefetched: bool,
        pc_signature: u16,
    ) -> Option<Evicted> {
        let slot = self.slot(core);
        self.epochs[slot] += 1;
        let ev = self.arrays[slot].fill(line, dirty, prefetched, pc_signature);
        self.stats.fills += 1;
        if ev.is_some_and(|e| e.dirty) {
            self.stats.dirty_evictions += 1;
        }
        ev
    }

    /// Invalidates `line` in `core`'s instance (a coherence action,
    /// counted in [`LevelStats::invalidations`]); returns whether it was
    /// present and, if so, whether it was dirty.
    pub fn invalidate(&mut self, core: usize, line: LineAddr) -> Option<bool> {
        let slot = self.slot(core);
        let res = self.arrays[slot].invalidate(line);
        if res.is_some() {
            self.stats.invalidations += 1;
        }
        res
    }

    /// Whether `line` is resident *and* dirty in `core`'s instance
    /// (directory probe; no replacement/counter side effects).
    pub fn probe_dirty(&self, core: usize, line: LineAddr) -> bool {
        self.arrays[self.slot(core)].probe_dirty(line)
    }

    /// Clears the dirty bit of a resident line in `core`'s instance
    /// (M → S downgrade); returns whether it was present.
    pub fn clean(&mut self, core: usize, line: LineAddr) -> bool {
        let slot = self.slot(core);
        self.arrays[slot].clean(line)
    }

    /// Sharer-directory bitmap of `line` (zero when absent). Meaningful
    /// on a coherent shared level; `core` only selects the instance.
    pub fn sharers(&self, core: usize, line: LineAddr) -> u64 {
        self.arrays[self.slot(core)].sharers(line)
    }

    /// Adds `core_bit` to `line`'s sharer bitmap in `core`'s instance;
    /// returns whether a directory entry (resident line) existed.
    pub fn add_sharer(&mut self, core: usize, line: LineAddr, core_bit: usize) -> bool {
        let slot = self.slot(core);
        self.arrays[slot].add_sharer(line, core_bit)
    }

    /// Replaces `line`'s sharer bitmap wholesale.
    pub fn set_sharers(&mut self, core: usize, line: LineAddr, sharers: u64) {
        let slot = self.slot(core);
        self.arrays[slot].set_sharers(line, sharers);
    }

    /// Registers a miss for `line` carrying `waiter` in `core`'s MSHR
    /// table; see [`MshrTable::allocate`]. A full table is counted in
    /// [`LevelStats::mshr_rejections`].
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when a new entry is needed but no register is
    /// free.
    pub fn mshr_allocate(
        &mut self,
        core: usize,
        line: LineAddr,
        waiter: W,
        is_prefetch: bool,
    ) -> Result<bool, MshrFull> {
        let slot = self.slot(core);
        let res = self.mshrs[slot].allocate(line, waiter, is_prefetch);
        match res {
            Ok(true) => self.epochs[slot] += 1,
            Ok(false) => {}
            Err(_) => self.stats.mshr_rejections += 1,
        }
        res
    }

    /// Completes the outstanding miss for `line` in `core`'s MSHR table.
    pub fn mshr_complete(&mut self, core: usize, line: LineAddr) -> Option<(Vec<W>, bool)> {
        let slot = self.slot(core);
        let res = self.mshrs[slot].complete(line);
        if res.is_some() {
            self.epochs[slot] += 1;
        }
        res
    }

    /// The change epoch of `core`'s instance — see the field docs. A
    /// rejected access whose recorded epoch still matches cannot succeed
    /// on retry: the array contents and the MSHR line-set/occupancy that
    /// rejected it are untouched.
    #[inline]
    pub fn change_epoch(&self, core: usize) -> u64 {
        self.epochs[self.slot(core)]
    }

    /// Charges the counters of one guaranteed-to-fail retry attempt
    /// without walking the tag array or MSHR table: a tag access that
    /// misses plus an MSHR rejection — exactly what the full re-attempt
    /// would have recorded.
    pub fn count_rejected_retry(&mut self) {
        self.stats.accesses += 1;
        self.stats.misses += 1;
        self.stats.mshr_rejections += 1;
    }

    /// Whether a miss to `line` is outstanding for `core`.
    pub fn mshr_contains(&self, core: usize, line: LineAddr) -> bool {
        self.mshrs[self.slot(core)].contains(line)
    }

    /// Whether the outstanding entry for `line` (if any) is prefetch-only.
    pub fn mshr_is_prefetch_only(&self, core: usize, line: LineAddr) -> Option<bool> {
        self.mshrs[self.slot(core)].is_prefetch_only(line)
    }

    /// MSHR registers in use in `core`'s table.
    pub fn mshr_in_use(&self, core: usize) -> usize {
        self.mshrs[self.slot(core)].in_use()
    }

    /// MSHR capacity of `core`'s table.
    pub fn mshr_capacity(&self, core: usize) -> usize {
        self.mshrs[self.slot(core)].capacity()
    }

    /// Total outstanding misses across every instance of this level.
    pub fn mshr_in_flight_total(&self) -> usize {
        self.mshrs.iter().map(|m| m.in_use()).sum()
    }

    /// Total valid lines across every instance (diagnostics/tests).
    pub fn occupancy(&self) -> usize {
        self.arrays.iter().map(|a| a.occupancy()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementKind;

    fn small_cfg() -> CacheConfig {
        // 4 sets x 2 ways per core.
        CacheConfig::new("t", 8 * 64, 2, ReplacementKind::Lru, 4).with_latency(7)
    }

    #[test]
    fn private_level_isolates_cores() {
        let mut lv: CacheLevel<()> = CacheLevel::new(LevelConfig::private(small_cfg()), 2);
        let line = LineAddr::new(0x40);
        lv.fill(0, line, false, false, 0);
        assert!(lv.probe(0, line));
        assert!(!lv.probe(1, line), "private fill must not leak to core 1");
        assert_eq!(lv.latency(), 7);
    }

    #[test]
    fn shared_level_scales_and_aliases() {
        let mut lv: CacheLevel<()> = CacheLevel::new(LevelConfig::shared(small_cfg()), 4);
        assert_eq!(lv.config().size_bytes, 4 * 8 * 64);
        assert_eq!(lv.mshr_capacity(3), 16);
        let line = LineAddr::new(0x80);
        lv.fill(2, line, false, false, 0);
        assert!(lv.probe(0, line), "shared fill visible to every core");
    }

    #[test]
    fn stats_count_hits_misses_and_rejections() {
        let mut lv: CacheLevel<u8> = CacheLevel::new(LevelConfig::private(small_cfg()), 1);
        let line = LineAddr::new(0x40);
        assert!(!lv.access(0, line, 0).hit);
        lv.fill(0, line, false, false, 0);
        assert!(lv.access(0, line, 0).hit);
        for i in 0..4u64 {
            lv.mshr_allocate(0, LineAddr::new(0x1000 + i), 0, false)
                .unwrap();
        }
        assert!(lv
            .mshr_allocate(0, LineAddr::new(0x9999), 0, false)
            .is_err());
        let s = *lv.stats();
        assert_eq!((s.accesses, s.hits, s.misses), (2, 1, 1));
        assert_eq!(s.fills, 1);
        assert_eq!(s.mshr_rejections, 1);
        assert_eq!(lv.mshr_in_flight_total(), 4);
        lv.reset_stats();
        assert_eq!(*lv.stats(), LevelStats::default());
        assert_eq!(lv.mshr_in_flight_total(), 4, "reset keeps MSHR state");
    }

    #[test]
    fn dirty_evictions_counted() {
        let mut lv: CacheLevel<()> = CacheLevel::new(LevelConfig::private(small_cfg()), 1);
        // Fill one set (2 ways) with dirty lines, then force an eviction.
        let l = |i: u64| LineAddr::new(i * 4);
        lv.fill(0, l(1), true, false, 0);
        lv.fill(0, l(2), true, false, 0);
        let ev = lv.fill(0, l(3), false, false, 0).expect("must evict");
        assert!(ev.dirty);
        assert_eq!(lv.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_counts_and_reports_dirty() {
        let mut lv: CacheLevel<()> = CacheLevel::new(LevelConfig::private(small_cfg()), 2);
        let line = LineAddr::new(0x40);
        lv.fill(1, line, true, false, 0);
        assert_eq!(lv.invalidate(0, line), None, "core 0 never held it");
        assert_eq!(lv.invalidate(1, line), Some(true));
        assert!(!lv.probe(1, line));
        assert_eq!(lv.stats().invalidations, 1, "only real kills counted");
    }

    #[test]
    fn shared_level_directory_round_trip() {
        let mut lv: CacheLevel<()> = CacheLevel::new(LevelConfig::shared(small_cfg()), 4);
        let line = LineAddr::new(0x40);
        lv.fill(2, line, false, false, 0);
        assert!(lv.add_sharer(0, line, 2));
        assert!(lv.add_sharer(1, line, 3));
        assert_eq!(lv.sharers(3, line), 0b1100, "one directory for all cores");
        lv.set_sharers(0, line, 0b1);
        assert_eq!(lv.sharers(0, line), 0b1);
        assert!(lv.probe_dirty(0, LineAddr::new(0x40)) == lv.probe_dirty(3, line));
        assert!(lv.clean(0, line), "clean on resident line");
    }

    #[test]
    fn instantiated_matches_scope() {
        let cfg = LevelConfig::shared(small_cfg());
        let inst = cfg.instantiated(8);
        assert_eq!(inst.size_bytes, 8 * 8 * 64);
        assert_eq!(inst.mshrs, 32);
        assert_eq!(inst.latency, 7);
        let cfg = LevelConfig::private(small_cfg());
        assert_eq!(cfg.instantiated(8).size_bytes, 8 * 64);
    }

    #[test]
    #[should_panic]
    fn zero_cores_rejected() {
        let _: CacheLevel<()> = CacheLevel::new(LevelConfig::private(small_cfg()), 0);
    }
}
