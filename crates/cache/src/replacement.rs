//! Replacement policies: LRU, SRRIP, and SHiP.
//!
//! Table 4 of the paper uses LRU at L1/L2 and SHiP (Wu et al., MICRO'11) at
//! the LLC. SHiP is SRRIP insertion steered by a signature history counter
//! table (SHCT): lines whose PC signature historically saw no reuse are
//! inserted at distant re-reference (RRPV 3) so they age out quickly.

use hermes_types::SatCounter;

/// Which policy a [`crate::CacheArray`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Least-recently-used (exact, stamp-based).
    Lru,
    /// Static re-reference interval prediction, 2-bit RRPV.
    Srrip,
    /// Signature-based hit prediction (SRRIP + SHCT), the paper's LLC
    /// policy.
    Ship,
}

/// Maximum RRPV for the 2-bit RRIP family (3 = distant re-reference).
const RRPV_MAX: u8 = 3;
/// SHiP's signature history counter table size (2^14 entries, as in the
/// original proposal).
const SHCT_BITS: u32 = 14;

/// Internal per-policy state; one instance per cache array.
#[derive(Debug, Clone)]
pub(crate) enum PolicyState {
    Lru {
        stamps: Vec<u64>,
        clock: u64,
    },
    Srrip {
        rrpv: Vec<u8>,
    },
    Ship {
        rrpv: Vec<u8>,
        /// PC signature that filled each line.
        sig: Vec<u16>,
        /// Whether the line was re-referenced since fill.
        reused: Vec<bool>,
        shct: Vec<SatCounter>,
    },
}

impl PolicyState {
    pub(crate) fn new(kind: ReplacementKind, total_lines: usize) -> Self {
        match kind {
            ReplacementKind::Lru => PolicyState::Lru {
                stamps: vec![0; total_lines],
                clock: 0,
            },
            ReplacementKind::Srrip => PolicyState::Srrip {
                rrpv: vec![RRPV_MAX; total_lines],
            },
            ReplacementKind::Ship => PolicyState::Ship {
                rrpv: vec![RRPV_MAX; total_lines],
                sig: vec![0; total_lines],
                reused: vec![false; total_lines],
                shct: vec![SatCounter::new_zero(3); 1 << SHCT_BITS],
            },
        }
    }

    /// Called when `idx` (a global line index) hits.
    pub(crate) fn on_hit(&mut self, idx: usize) {
        match self {
            PolicyState::Lru { stamps, clock } => {
                *clock += 1;
                stamps[idx] = *clock;
            }
            PolicyState::Srrip { rrpv } => rrpv[idx] = 0,
            PolicyState::Ship {
                rrpv,
                sig,
                reused,
                shct,
            } => {
                rrpv[idx] = 0;
                if !reused[idx] {
                    reused[idx] = true;
                    shct[sig[idx] as usize].increment();
                }
            }
        }
    }

    /// Called when a new line fills `idx` with PC signature `signature`.
    pub(crate) fn on_fill(&mut self, idx: usize, signature: u16) {
        match self {
            PolicyState::Lru { stamps, clock } => {
                *clock += 1;
                stamps[idx] = *clock;
            }
            PolicyState::Srrip { rrpv } => rrpv[idx] = RRPV_MAX - 1,
            PolicyState::Ship {
                rrpv,
                sig,
                reused,
                shct,
            } => {
                sig[idx] = signature & ((1 << SHCT_BITS) - 1) as u16;
                reused[idx] = false;
                // Zero counter => this signature never shows reuse: insert
                // at distant RRPV so the line is evicted first.
                rrpv[idx] = if shct[sig[idx] as usize].get() == 0 {
                    RRPV_MAX
                } else {
                    RRPV_MAX - 1
                };
            }
        }
    }

    /// Called when `idx` is evicted (to train SHCT on dead lines).
    pub(crate) fn on_evict(&mut self, idx: usize) {
        if let PolicyState::Ship {
            sig, reused, shct, ..
        } = self
        {
            if !reused[idx] {
                shct[sig[idx] as usize].decrement();
            }
        }
    }

    /// Chooses a victim way among `base..base+ways` (all valid).
    pub(crate) fn victim(&mut self, base: usize, ways: usize) -> usize {
        match self {
            PolicyState::Lru { stamps, .. } => {
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for w in 0..ways {
                    if stamps[base + w] < best_stamp {
                        best_stamp = stamps[base + w];
                        best = w;
                    }
                }
                best
            }
            PolicyState::Srrip { rrpv } | PolicyState::Ship { rrpv, .. } => loop {
                for w in 0..ways {
                    if rrpv[base + w] == RRPV_MAX {
                        return w;
                    }
                }
                for w in 0..ways {
                    rrpv[base + w] += 1;
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = PolicyState::new(ReplacementKind::Lru, 4);
        for i in 0..4 {
            p.on_fill(i, 0);
        }
        p.on_hit(0); // 0 becomes MRU; 1 is now LRU
        assert_eq!(p.victim(0, 4), 1);
    }

    #[test]
    fn srrip_victim_is_distant() {
        let mut p = PolicyState::new(ReplacementKind::Srrip, 4);
        for i in 0..4 {
            p.on_fill(i, 0);
        }
        p.on_hit(2); // rrpv[2]=0, others 2
        let v = p.victim(0, 4);
        assert_ne!(v, 2, "recently-hit line chosen as victim");
    }

    #[test]
    fn srrip_ages_until_victim_found() {
        let mut p = PolicyState::new(ReplacementKind::Srrip, 2);
        p.on_fill(0, 0);
        p.on_fill(1, 0);
        p.on_hit(0);
        p.on_hit(1);
        // Both at rrpv 0: policy must age and still terminate.
        let v = p.victim(0, 2);
        assert!(v < 2);
    }

    #[test]
    fn ship_dead_signature_inserted_distant() {
        let mut p = PolicyState::new(ReplacementKind::Ship, 8);
        let sig = 0x123u16;
        // Fill + evict without reuse several times: SHCT stays at zero.
        for _ in 0..3 {
            p.on_fill(0, sig);
            p.on_evict(0);
        }
        p.on_fill(0, sig);
        if let PolicyState::Ship { rrpv, .. } = &p {
            assert_eq!(rrpv[0], RRPV_MAX, "dead signature should insert distant");
        } else {
            unreachable!();
        }
    }

    #[test]
    fn ship_reused_signature_inserted_near() {
        let mut p = PolicyState::new(ReplacementKind::Ship, 8);
        let sig = 0x456u16;
        // Fill then hit: signature learns reuse.
        p.on_fill(1, sig);
        p.on_hit(1);
        p.on_fill(2, sig);
        if let PolicyState::Ship { rrpv, .. } = &p {
            assert_eq!(rrpv[2], RRPV_MAX - 1);
        } else {
            unreachable!();
        }
    }
}
