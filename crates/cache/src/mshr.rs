//! Miss-status holding registers.
//!
//! An MSHR tracks one outstanding miss per cache line and merges subsequent
//! requests to the same line (no duplicate traffic to the next level). The
//! waiter payload is generic: the hierarchy engine stores whatever it needs
//! to resume each merged requester when the fill arrives.

use hermes_types::LineAddr;

/// Error returned when the table is full (structural stall).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrFull;

impl std::fmt::Display for MshrFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all MSHRs in use")
    }
}

impl std::error::Error for MshrFull {}

#[derive(Debug, Clone)]
struct Entry<T> {
    line: LineAddr,
    waiters: Vec<T>,
    /// True while only prefetch requests wait on this line (a demand merge
    /// upgrades it; used for prefetch accounting and fill attribution).
    prefetch_only: bool,
}

/// A fixed-capacity MSHR table with per-line merge.
///
/// # Example
///
/// ```
/// use hermes_cache::MshrTable;
/// use hermes_types::LineAddr;
///
/// let mut t: MshrTable<u32> = MshrTable::new(2);
/// let line = LineAddr::new(7);
/// assert!(t.allocate(line, 1, false).unwrap()); // new entry
/// assert!(!t.allocate(line, 2, false).unwrap()); // merged
/// assert_eq!(t.complete(line).unwrap().0, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrTable<T> {
    entries: Vec<Entry<T>>,
    capacity: usize,
}

impl<T> MshrTable<T> {
    /// A table with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR table needs at least one register");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Registers a miss for `line` carrying `waiter`.
    ///
    /// Returns `Ok(true)` if a new entry was allocated (the caller must
    /// forward the miss to the next level), `Ok(false)` if merged into an
    /// existing entry.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when a new entry is needed but no register is
    /// free — the requester must retry later.
    pub fn allocate(
        &mut self,
        line: LineAddr,
        waiter: T,
        is_prefetch: bool,
    ) -> Result<bool, MshrFull> {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.waiters.push(waiter);
            e.prefetch_only &= is_prefetch;
            return Ok(false);
        }
        if self.entries.len() == self.capacity {
            return Err(MshrFull);
        }
        self.entries.push(Entry {
            line,
            waiters: vec![waiter],
            prefetch_only: is_prefetch,
        });
        Ok(true)
    }

    /// Whether a miss to `line` is already outstanding.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Whether the outstanding entry for `line` (if any) is still
    /// prefetch-only.
    pub fn is_prefetch_only(&self, line: LineAddr) -> Option<bool> {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.prefetch_only)
    }

    /// Upgrades an outstanding prefetch-only entry to demand status without
    /// adding a waiter. Returns whether the entry existed.
    pub fn mark_demand(&mut self, line: LineAddr) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.prefetch_only = false;
            true
        } else {
            false
        }
    }

    /// Completes the miss for `line`, releasing the register.
    ///
    /// Returns the merged waiters and whether the entry remained
    /// prefetch-only, or `None` if no entry matches.
    pub fn complete(&mut self, line: LineAddr) -> Option<(Vec<T>, bool)> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        let e = self.entries.swap_remove(pos);
        Some((e.waiters, e.prefetch_only))
    }

    /// Number of registers currently in use.
    pub fn in_use(&self) -> usize {
        self.entries.len()
    }

    /// Whether every register is occupied.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_same_line() {
        let mut t: MshrTable<u8> = MshrTable::new(4);
        let l = LineAddr::new(1);
        assert_eq!(t.allocate(l, 1, false), Ok(true));
        assert_eq!(t.allocate(l, 2, false), Ok(false));
        assert_eq!(t.in_use(), 1);
        let (w, pf) = t.complete(l).unwrap();
        assert_eq!(w, vec![1, 2]);
        assert!(!pf);
        assert_eq!(t.in_use(), 0);
    }

    #[test]
    fn full_table_rejects_new_lines_only() {
        let mut t: MshrTable<u8> = MshrTable::new(2);
        t.allocate(LineAddr::new(1), 0, false).unwrap();
        t.allocate(LineAddr::new(2), 0, false).unwrap();
        assert!(t.is_full());
        assert_eq!(t.allocate(LineAddr::new(3), 0, false), Err(MshrFull));
        // Merge into an existing line still succeeds.
        assert_eq!(t.allocate(LineAddr::new(1), 9, false), Ok(false));
    }

    #[test]
    fn demand_merge_clears_prefetch_only() {
        let mut t: MshrTable<u8> = MshrTable::new(2);
        let l = LineAddr::new(5);
        t.allocate(l, 0, true).unwrap();
        t.allocate(l, 1, false).unwrap();
        let (_, pf) = t.complete(l).unwrap();
        assert!(!pf);
    }

    #[test]
    fn prefetch_only_preserved() {
        let mut t: MshrTable<u8> = MshrTable::new(2);
        let l = LineAddr::new(6);
        t.allocate(l, 0, true).unwrap();
        let (_, pf) = t.complete(l).unwrap();
        assert!(pf);
    }

    #[test]
    fn mark_demand_upgrades() {
        let mut t: MshrTable<u8> = MshrTable::new(2);
        let l = LineAddr::new(7);
        t.allocate(l, 0, true).unwrap();
        assert!(t.mark_demand(l));
        let (_, pf) = t.complete(l).unwrap();
        assert!(!pf);
        assert!(!t.mark_demand(l));
    }

    #[test]
    fn complete_missing_line_is_none() {
        let mut t: MshrTable<u8> = MshrTable::new(1);
        assert!(t.complete(LineAddr::new(42)).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _: MshrTable<u8> = MshrTable::new(0);
    }
}
