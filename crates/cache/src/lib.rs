//! Cache building blocks: set-associative tag arrays, replacement policies,
//! miss-status holding registers (MSHRs), and composable hierarchy levels.
//!
//! The paper's baseline (Table 4) models an Alder Lake-style hierarchy:
//! 48 KB/12-way L1D and 1.25 MB/20-way L2 with LRU, and a 3 MB/core 12-way
//! LLC running SHiP. This crate provides those structures as passive,
//! timing-free data types; the request orchestration (queues, latencies,
//! fills, the Hermes merge path) lives in `hermes-sim`'s hierarchy engine,
//! which drives a configurable stack of [`CacheLevel`]s — each a bundle of
//! per-core or shared [`CacheArray`]s plus [`MshrTable`]s described by a
//! [`LevelConfig`] (see [`level`]).
//!
//! # Example
//!
//! ```
//! use hermes_cache::{CacheArray, CacheConfig, ReplacementKind};
//! use hermes_types::LineAddr;
//!
//! let cfg = CacheConfig::new("L1D", 48 * 1024, 12, ReplacementKind::Lru, 16);
//! let mut cache = CacheArray::new(&cfg);
//! let line = LineAddr::new(0x1000);
//! assert!(!cache.access(line, 0).hit);
//! cache.fill(line, false, false, 0);
//! assert!(cache.access(line, 0).hit);
//! ```

pub mod array;
pub mod coherence;
pub mod level;
pub mod mshr;
pub mod replacement;

pub use array::{AccessResult, CacheArray, CacheConfig, Evicted};
pub use coherence::{CoherenceConfig, Mesi};
pub use level::{CacheLevel, LevelConfig, LevelScope, LevelStats};
pub use mshr::{MshrFull, MshrTable};
pub use replacement::ReplacementKind;
