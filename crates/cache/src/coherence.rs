//! Directory-style MESI coherence: configuration and line-state types.
//!
//! The protocol itself is orchestrated by the hierarchy engine
//! (`hermes-sim`); this module holds the pieces that belong with the
//! cache structures:
//!
//! * [`CoherenceConfig`] — the timing/shape knobs, carried by
//!   `SystemConfig::coherence` (`None` keeps the historical
//!   coherence-free hierarchy, bit-identical);
//! * [`Mesi`] — the per-line stable state, *derived* from the line
//!   metadata the arrays already track (dirty bit + sharer directory)
//!   instead of being stored redundantly: **M** = dirty private copy,
//!   **E** = clean private copy whose directory entry lists a single
//!   sharer, **S** = clean private copy with other sharers, **I** =
//!   absent.
//!
//! The sharer directory is *inclusive* and piggybacked on the shared
//! last level's tags: every line holds a [`sharers`](crate::CacheArray::sharers)
//! bitmap (one bit per core, which bounds coherent systems to 64 cores),
//! maintained by the hierarchy engine as fills travel toward cores and
//! invalidations travel away from them. Bits may over-approximate (a
//! silent clean eviction from a private cache leaves its bit set — the
//! classic stale-directory behaviour, resolved by a spurious
//! invalidation later), but they never under-approximate: the directory
//! is always a superset of the true private holders.

/// Stable MESI state of a cache line in one core's private hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mesi {
    /// Modified: the only copy, dirty with respect to the outer levels.
    Modified,
    /// Exclusive: the only copy, clean.
    Exclusive,
    /// Shared: clean, other cores may hold copies.
    Shared,
    /// Invalid: not present.
    Invalid,
}

impl Mesi {
    /// Whether this state grants write permission without a directory
    /// round trip (M or E — the silent-upgrade states).
    pub fn writable(self) -> bool {
        matches!(self, Mesi::Modified | Mesi::Exclusive)
    }

    /// Whether the line is present at all.
    pub fn present(self) -> bool {
        self != Mesi::Invalid
    }
}

/// Configuration of the optional directory-MESI coherence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceConfig {
    /// Cycles a write-permission upgrade (store hit on a Shared line)
    /// spends on the directory round trip that invalidates remote
    /// copies. Store-miss RFOs overlap their invalidations with the
    /// data fetch and pay nothing extra, and a read that hits remotely
    /// Modified data pays the same latency as a dirty intervention.
    pub inv_latency: u32,
}

impl CoherenceConfig {
    /// The default timing: a 24-cycle directory round trip, roughly an
    /// LLC-latency-class hop (between the paper's 15-cycle L2 and
    /// 55-cycle LLC load-to-use points).
    pub fn baseline() -> Self {
        Self { inv_latency: 24 }
    }

    /// Replaces the invalidation/intervention latency.
    pub fn with_inv_latency(mut self, cycles: u32) -> Self {
        self.inv_latency = cycles;
        self
    }

    /// Validates the configuration for a `cores`-core system.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the 64-bit sharer-bitmap capacity.
    pub fn validate(&self, cores: usize) {
        assert!(
            cores <= 64,
            "sharer directory bitmaps hold at most 64 cores (got {cores})"
        );
    }
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(Mesi::Modified.writable() && Mesi::Exclusive.writable());
        assert!(!Mesi::Shared.writable() && !Mesi::Invalid.writable());
        assert!(Mesi::Shared.present() && !Mesi::Invalid.present());
    }

    #[test]
    fn config_builders_and_validation() {
        let c = CoherenceConfig::baseline().with_inv_latency(8);
        assert_eq!(c.inv_latency, 8);
        c.validate(64);
    }

    #[test]
    #[should_panic(expected = "at most 64 cores")]
    fn too_many_cores_rejected() {
        CoherenceConfig::baseline().validate(65);
    }
}
