//! The set-associative tag array.

use hermes_types::{LineAddr, LINE_SIZE};

use crate::replacement::{PolicyState, ReplacementKind};

/// Static configuration of one cache level.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Display name ("L1D", "L2", "LLC").
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Number of MSHRs (used by the hierarchy engine, carried here so one
    /// struct describes a level).
    pub mshrs: usize,
    /// Lookup latency contribution in cycles (also consumed by the
    /// hierarchy engine).
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a config; latency defaults to 0 and can be set with
    /// [`CacheConfig::with_latency`].
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `ways * 64` and the
    /// resulting set count is a power of two (hardware-indexable).
    pub fn new(
        name: impl Into<String>,
        size_bytes: u64,
        ways: usize,
        replacement: ReplacementKind,
        mshrs: usize,
    ) -> Self {
        let cfg = Self {
            name: name.into(),
            size_bytes,
            ways,
            replacement,
            mshrs,
            latency: 0,
        };
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "{}: {} sets not a power of two",
            cfg.name,
            sets
        );
        assert!(sets >= 1 && ways >= 1);
        cfg
    }

    /// Sets the lookup latency (cycles) and returns the config.
    pub fn with_latency(mut self, latency: u32) -> Self {
        self.latency = latency;
        self
    }

    /// Number of sets implied by size and associativity.
    pub fn sets(&self) -> usize {
        (self.size_bytes as usize) / (self.ways * LINE_SIZE)
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }
}

/// Result of a demand/prefetch access to the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether the hit line had been brought in by a prefetch and this is
    /// its first demand touch (used for prefetch-usefulness accounting).
    pub first_demand_on_prefetch: bool,
}

/// An evicted line returned by [`CacheArray::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The line that was evicted.
    pub line: LineAddr,
    /// Whether it must be written back.
    pub dirty: bool,
    /// Whether it was a never-demanded prefetch (a useless prefetch).
    pub was_unused_prefetch: bool,
    /// Sharer-directory bitmap the line carried (always zero outside a
    /// coherent shared level); the hierarchy engine back-invalidates
    /// these cores to keep the directory inclusive.
    pub sharers: u64,
}

/// Per-line attribute bits, packed into one byte so a whole set's
/// metadata spans `ways` contiguous bytes (one cache line for any
/// realistic associativity) instead of four separate `bool` vectors.
mod flag {
    pub const VALID: u8 = 1 << 0;
    pub const DIRTY: u8 = 1 << 1;
    pub const PREFETCHED: u8 = 1 << 2;
    pub const DEMANDED: u8 = 1 << 3;
}

/// A set-associative cache tag array with pluggable replacement.
///
/// Purely structural: no queues, no latencies. See crate docs for the
/// division of labour with the hierarchy engine.
///
/// Layout is structure-of-arrays: tags in one contiguous `u64` vector,
/// all boolean attributes packed into one byte per line, and a per-set
/// valid-way bitmask so the hot lookup walks only occupied ways (in
/// ascending way order, matching the legacy linear scan bit-for-bit).
#[derive(Debug, Clone)]
pub struct CacheArray {
    name: String,
    sets: usize,
    ways: usize,
    set_mask: u64,
    tags: Vec<u64>,
    /// Packed [`flag`] bits per line.
    flags: Vec<u8>,
    /// Per-set bitmask of valid ways; bit `w` set ⇔ way `w` holds a
    /// valid line. Lets [`CacheArray::find`] skip invalid ways with
    /// `trailing_zeros` and [`CacheArray::fill`] locate the first free
    /// way without touching the flag bytes.
    present: Vec<u64>,
    /// Per-line sharer-directory bitmap (one bit per core). Only a
    /// coherent shared level ever sets bits; everywhere else the vector
    /// stays all-zero and costs nothing but memory.
    sharers: Vec<u64>,
    policy: PolicyState,
}

impl CacheArray {
    /// Builds an empty array per `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.ways > 64` (the per-set valid mask is a `u64`).
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        let lines = cfg.lines();
        assert!(cfg.ways <= 64, "{}: >64 ways unsupported", cfg.name);
        Self {
            name: cfg.name.clone(),
            sets,
            ways: cfg.ways,
            set_mask: sets as u64 - 1,
            tags: vec![0; lines],
            flags: vec![0; lines],
            present: vec![0; sets],
            sharers: vec![0; lines],
            policy: PolicyState::new(cfg.replacement, lines),
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.raw() & self.set_mask) as usize
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let base = set * self.ways;
        let raw = line.raw();
        // Walk valid ways in ascending order (same order as the legacy
        // linear scan) via the presence mask.
        let mut mask = self.present[set];
        while mask != 0 {
            let i = base + mask.trailing_zeros() as usize;
            if self.tags[i] == raw {
                return Some(i);
            }
            mask &= mask - 1;
        }
        None
    }

    /// Checks presence without perturbing replacement state.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Demand access: updates replacement state on a hit and consumes the
    /// line's "unused prefetch" status.
    pub fn access(&mut self, line: LineAddr, pc_signature: u16) -> AccessResult {
        let _ = pc_signature; // signature only matters on fill for SHiP
        match self.find(line) {
            Some(idx) => {
                self.policy.on_hit(idx);
                let f = self.flags[idx];
                let first = f & (flag::PREFETCHED | flag::DEMANDED) == flag::PREFETCHED;
                self.flags[idx] = f | flag::DEMANDED;
                AccessResult {
                    hit: true,
                    first_demand_on_prefetch: first,
                }
            }
            None => AccessResult {
                hit: false,
                first_demand_on_prefetch: false,
            },
        }
    }

    /// Marks a resident line dirty (store hit). Returns whether it was
    /// present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        if let Some(idx) = self.find(line) {
            self.flags[idx] |= flag::DIRTY;
            true
        } else {
            false
        }
    }

    /// Fills `line`, evicting a victim if the set is full.
    ///
    /// `prefetched` tags the line as prefetcher-inserted (for usefulness
    /// accounting); `pc_signature` feeds SHiP.
    pub fn fill(
        &mut self,
        line: LineAddr,
        dirty: bool,
        prefetched: bool,
        pc_signature: u16,
    ) -> Option<Evicted> {
        if let Some(idx) = self.find(line) {
            // Line raced in already (e.g. prefetch then demand fill):
            // merge attributes instead of duplicating the tag.
            self.flags[idx] |= if dirty { flag::DIRTY } else { 0 };
            return None;
        }
        let set = self.set_of(line);
        let base = set * self.ways;
        let ways_mask = if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        };
        // Prefer the lowest-numbered invalid way, as the legacy linear
        // scan did.
        let free = !self.present[set] & ways_mask;
        let (idx, evicted) = if free != 0 {
            (base + free.trailing_zeros() as usize, None)
        } else {
            let w = self.policy.victim(base, self.ways);
            let i = base + w;
            self.policy.on_evict(i);
            let f = self.flags[i];
            let ev = Evicted {
                line: LineAddr::new(self.tags[i]),
                dirty: f & flag::DIRTY != 0,
                was_unused_prefetch: f & (flag::PREFETCHED | flag::DEMANDED) == flag::PREFETCHED,
                sharers: self.sharers[i],
            };
            (i, Some(ev))
        };
        self.tags[idx] = line.raw();
        self.flags[idx] = flag::VALID
            | if dirty { flag::DIRTY } else { 0 }
            | if prefetched { flag::PREFETCHED } else { 0 };
        self.present[set] |= 1 << (idx - base);
        self.sharers[idx] = 0;
        self.policy.on_fill(idx, pc_signature);
        evicted
    }

    /// Invalidates a line; returns whether it was present (and dirty).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let idx = self.find(line)?;
        let set = self.set_of(line);
        self.present[set] &= !(1 << (idx - set * self.ways));
        self.sharers[idx] = 0;
        let dirty = self.flags[idx] & flag::DIRTY != 0;
        self.flags[idx] = 0;
        Some(dirty)
    }

    /// Whether the line is resident *and* dirty (no replacement-state
    /// perturbation — a directory probe, not an access).
    pub fn probe_dirty(&self, line: LineAddr) -> bool {
        self.find(line)
            .is_some_and(|idx| self.flags[idx] & flag::DIRTY != 0)
    }

    /// Clears a resident line's dirty bit (M → S downgrade on a dirty
    /// intervention: the modified data moved to the outer level).
    /// Returns whether the line was present.
    pub fn clean(&mut self, line: LineAddr) -> bool {
        if let Some(idx) = self.find(line) {
            self.flags[idx] &= !flag::DIRTY;
            true
        } else {
            false
        }
    }

    /// Sharer-directory bitmap of a resident line (zero when absent or
    /// never tracked).
    pub fn sharers(&self, line: LineAddr) -> u64 {
        self.find(line).map_or(0, |idx| self.sharers[idx])
    }

    /// Adds `core` to a resident line's sharer bitmap; returns whether
    /// the line was present (a directory entry exists to update).
    pub fn add_sharer(&mut self, line: LineAddr, core: usize) -> bool {
        debug_assert!(core < 64, "sharer bitmap holds at most 64 cores");
        if let Some(idx) = self.find(line) {
            self.sharers[idx] |= 1 << core;
            true
        } else {
            false
        }
    }

    /// Replaces a resident line's sharer bitmap wholesale (the
    /// post-invalidation "sole owner" write).
    pub fn set_sharers(&mut self, line: LineAddr, sharers: u64) {
        if let Some(idx) = self.find(line) {
            self.sharers[idx] = sharers;
        }
    }

    /// Number of valid lines currently resident (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.present.iter().map(|m| m.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets x 2 ways.
        CacheArray::new(&CacheConfig::new("t", 8 * 64, 2, ReplacementKind::Lru, 4))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let l = LineAddr::new(0x40);
        assert!(!c.access(l, 0).hit);
        assert!(c.fill(l, false, false, 0).is_none());
        assert!(c.access(l, 0).hit);
        assert!(c.probe(l));
    }

    #[test]
    fn eviction_on_full_set() {
        let mut c = small();
        // Lines mapping to set 0 (4 sets -> line % 4 == 0).
        let l = |i: u64| LineAddr::new(i * 4);
        c.fill(l(1), false, false, 0);
        c.fill(l(2), false, false, 0);
        let ev = c.fill(l(3), false, false, 0).expect("set full, must evict");
        assert_eq!(ev.line, l(1)); // LRU
        assert!(!c.probe(l(1)));
        assert!(c.probe(l(2)) && c.probe(l(3)));
    }

    #[test]
    fn dirty_eviction_flag() {
        let mut c = small();
        let l = |i: u64| LineAddr::new(i * 4);
        c.fill(l(1), true, false, 0);
        c.fill(l(2), false, false, 0);
        let ev = c.fill(l(3), false, false, 0).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn mark_dirty_only_if_present() {
        let mut c = small();
        let l = LineAddr::new(0x80);
        assert!(!c.mark_dirty(l));
        c.fill(l, false, false, 0);
        assert!(c.mark_dirty(l));
        assert_eq!(c.invalidate(l), Some(true));
        assert_eq!(c.invalidate(l), None);
    }

    #[test]
    fn unused_prefetch_tracked() {
        let mut c = small();
        let l = |i: u64| LineAddr::new(i * 4);
        c.fill(l(1), false, true, 0); // prefetch, never demanded
        c.fill(l(2), false, false, 0);
        let ev = c.fill(l(3), false, false, 0).unwrap();
        assert!(ev.was_unused_prefetch);
    }

    #[test]
    fn first_demand_on_prefetch_reported_once() {
        let mut c = small();
        let l = LineAddr::new(0x100);
        c.fill(l, false, true, 0);
        let a1 = c.access(l, 0);
        assert!(a1.hit && a1.first_demand_on_prefetch);
        let a2 = c.access(l, 0);
        assert!(a2.hit && !a2.first_demand_on_prefetch);
    }

    #[test]
    fn duplicate_fill_merges() {
        let mut c = small();
        let l = LineAddr::new(0x140);
        c.fill(l, false, false, 0);
        assert!(c.fill(l, true, false, 0).is_none());
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.invalidate(l), Some(true)); // dirty merged in
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = small();
        for i in 0..100u64 {
            c.fill(LineAddr::new(i), false, false, 0);
        }
        assert!(c.occupancy() <= 8);
    }

    #[test]
    fn sharer_bitmap_tracks_fills_invalidations_and_evictions() {
        let mut c = small();
        let l = |i: u64| LineAddr::new(i * 4);
        c.fill(l(1), false, false, 0);
        assert_eq!(c.sharers(l(1)), 0, "fresh fill starts with no sharers");
        assert!(c.add_sharer(l(1), 0));
        assert!(c.add_sharer(l(1), 3));
        assert_eq!(c.sharers(l(1)), 0b1001);
        c.set_sharers(l(1), 0b1000);
        assert_eq!(c.sharers(l(1)), 0b1000);
        assert!(!c.add_sharer(l(9), 1), "absent line has no directory entry");
        assert_eq!(c.sharers(l(9)), 0);
        // Eviction reports the bitmap so the engine can back-invalidate.
        c.fill(l(2), false, false, 0);
        c.access(l(2), 0); // make l(1) the LRU victim
        let ev = c.fill(l(3), false, false, 0).unwrap();
        assert_eq!((ev.line, ev.sharers), (l(1), 0b1000));
        // Invalidation clears the bitmap with the line.
        c.set_sharers(l(2), 0b11);
        c.invalidate(l(2));
        c.fill(l(2), false, false, 0);
        assert_eq!(c.sharers(l(2)), 0, "re-fill must not resurrect sharers");
    }

    #[test]
    fn probe_dirty_and_clean() {
        let mut c = small();
        let l = LineAddr::new(0x80);
        assert!(!c.probe_dirty(l));
        assert!(!c.clean(l), "clean of absent line reports absence");
        c.fill(l, true, false, 0);
        assert!(c.probe_dirty(l));
        assert!(c.clean(l));
        assert!(!c.probe_dirty(l), "clean drops the dirty bit");
        assert!(c.probe(l), "clean keeps the line resident");
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new("bad", 3 * 64, 1, ReplacementKind::Lru, 1);
    }

    #[test]
    fn table4_llc_geometry() {
        // 3 MB, 12-way => 4096 sets.
        let cfg = CacheConfig::new("LLC", 3 << 20, 12, ReplacementKind::Ship, 64);
        assert_eq!(cfg.sets(), 4096);
        assert_eq!(cfg.lines(), 49152);
    }
}
