//! Reporting helpers for the experiment harness: per-category geometric
//! means, speedup normalisation (Eq. 2), and markdown/ASCII table output
//! in the shape the paper's figures report.

use hermes_trace::Category;
use hermes_types::geomean;

/// Speedup of a configuration over the no-prefetching baseline (Eq. 2).
pub fn speedup(ipc: f64, ipc_nopref: f64) -> f64 {
    if ipc_nopref <= 0.0 {
        0.0
    } else {
        ipc / ipc_nopref
    }
}

/// Groups (category, value) pairs and returns per-category geomeans plus
/// the overall geomean, in the paper's presentation order with "GEOMEAN"
/// last — the x-axis of most figures.
pub fn category_geomeans(samples: &[(Category, f64)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for cat in Category::ALL {
        let vals: Vec<f64> = samples
            .iter()
            .filter(|(c, _)| *c == cat)
            .map(|&(_, v)| v)
            .collect();
        if !vals.is_empty() {
            out.push((cat.label().to_string(), geomean(&vals)));
        }
    }
    let all: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
    out.push(("GEOMEAN".to_string(), geomean(&all)));
    out
}

/// Per-category arithmetic means plus overall mean ("AVG"), for metrics
/// the paper averages rather than geomeans (accuracy, coverage, MPKI).
pub fn category_means(samples: &[(Category, f64)]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for cat in Category::ALL {
        let vals: Vec<f64> = samples
            .iter()
            .filter(|(c, _)| *c == cat)
            .map(|&(_, v)| v)
            .collect();
        if !vals.is_empty() {
            out.push((cat.label().to_string(), hermes_types::mean(&vals)));
        }
    }
    let all: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
    out.push(("AVG".to_string(), hermes_types::mean(&all)));
    out
}

/// A simple column-aligned table that renders as GitHub markdown.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut s = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{:<width$}", c, width = w))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        s.push_str(&fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        s.push_str(&fmt_row(&dashes, &widths));
        for r in &self.rows {
            s.push_str(&fmt_row(r, &widths));
        }
        s
    }
}

/// Formats a float with 3 decimal places (the precision the paper's
/// figures are readable to).
pub fn f3(x: f64) -> String {
    format!("{:.3}", x)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_normalisation() {
        assert_eq!(speedup(2.0, 1.0), 2.0);
        assert_eq!(speedup(1.0, 0.0), 0.0);
    }

    #[test]
    fn category_geomeans_cover_all_present() {
        let samples = vec![
            (Category::Spec06, 1.1),
            (Category::Spec06, 1.3),
            (Category::Ligra, 1.2),
        ];
        let out = category_geomeans(&samples);
        assert_eq!(out.len(), 3); // SPEC06, Ligra, GEOMEAN
        assert_eq!(out.last().unwrap().0, "GEOMEAN");
        let spec06 = out.iter().find(|(n, _)| n == "SPEC06").unwrap().1;
        assert!((spec06 - (1.1f64 * 1.3).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn means_use_avg_label() {
        let samples = vec![(Category::Cvp, 0.5), (Category::Cvp, 0.7)];
        let out = category_means(&samples);
        assert_eq!(out.last().unwrap().0, "AVG");
        assert!((out[0].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["config", "ipc"]);
        t.row(&["baseline".into(), "1.000".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| config"));
        assert!(md.lines().count() == 3);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.7711), "77.1%");
    }
}
