//! Full-system simulator: cores + cache hierarchy + Hermes + prefetchers +
//! DRAM, wired per the paper's Table 4.
//!
//! The central types are [`SystemConfig`] (a complete system description
//! with builder-style sweeps for every sensitivity study in §8.4) and
//! [`System`] (the cycle-driven runner producing [`RunStats`]).
//!
//! # Example
//!
//! ```no_run
//! use hermes_sim::{System, SystemConfig};
//! use hermes_trace::suite;
//!
//! let cfg = SystemConfig::baseline_1c(); // Table 4, Pythia, no Hermes
//! let spec = &suite::smoke_suite()[0];
//! let stats = System::new(cfg, std::slice::from_ref(spec)).run(10_000, 50_000);
//! println!("IPC = {:.3}", stats.ipc(0));
//! ```

pub mod config;
pub mod hierarchy;
pub mod power;
pub mod report;
pub mod sched;
pub mod stats;
pub mod system;
pub mod translate;

pub use config::SystemConfig;
pub use sched::SchedulerModel;
pub use stats::RunStats;
pub use system::System;
