//! System configuration: the paper's Table 4 with builder-style sweeps
//! for every sensitivity study in §8.4 and Appendix B, plus arbitrary
//! N-level cache topologies via [`LevelConfig`].

use hermes::{HermesConfig, PopetConfig};
use hermes_cache::{CacheConfig, CoherenceConfig, LevelConfig, LevelScope, ReplacementKind};
use hermes_cpu::CoreConfig;
use hermes_dram::DramConfig;
use hermes_prefetch::PrefetcherKind;
use hermes_probe::ProbeConfig;
use hermes_vm::VmConfig;

use crate::sched::SchedulerModel;

/// Complete description of a simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (1 or 8 in the paper).
    pub cores: usize,
    /// Core pipeline configuration.
    pub core: CoreConfig,
    /// L1D configuration; `latency` is the load-to-use latency of an L1
    /// hit (5 cycles).
    pub l1: CacheConfig,
    /// L2 configuration; `latency` is the *additional* cycles past L1
    /// (10, for a 15-cycle L2 load-to-use).
    pub l2: CacheConfig,
    /// Shared LLC configuration *per core* (3 MB/core); `latency` is the
    /// additional cycles past L2 (40, for a 55-cycle LLC load-to-use).
    pub llc_per_core: CacheConfig,
    /// Explicit cache topology, innermost level first. `None` (the
    /// default everywhere) derives the paper's classic three-level stack
    /// from `l1`/`l2`/`llc_per_core`; `Some` replaces it wholesale and
    /// the classic fields (and their sweep builders) are ignored. See
    /// [`SystemConfig::level_configs`] for the shape rules.
    pub levels: Option<Vec<LevelConfig>>,
    /// Main memory.
    pub dram: DramConfig,
    /// Address-translation subsystem (TLBs + hardware page-table walker).
    /// `None` — the default everywhere — keeps the historical free
    /// stateless translation, bit-identical to the pre-vm simulator;
    /// `Some` makes translation latency real: a dTLB hit stays parallel
    /// with the L1 (§3.1 of the paper), a miss walks the page table
    /// through this very cache hierarchy, and Hermes's speculative DRAM
    /// read cannot issue before the physical address is known.
    pub vm: Option<VmConfig>,
    /// Directory-style MESI coherence at the shared last level. `None` —
    /// the default everywhere — keeps the historical coherence-free
    /// hierarchy, bit-identical to the pre-coherence simulator (safe as
    /// long as cores touch disjoint physical footprints, which every
    /// non-sharing workload guarantees by construction). `Some` makes
    /// stores acquire write permission: an inclusive sharer directory
    /// piggybacks on the shared level's tags, store hits on Shared lines
    /// pay a directory round trip that invalidates remote copies, reads
    /// of remotely-Modified lines pay a dirty intervention, and shared-
    /// level evictions back-invalidate private copies to keep the
    /// directory inclusive. Requires every level but the last to be
    /// core-private. On a single core the protocol is vacuous (every
    /// line is trivially exclusive) and the simulation stays
    /// cycle-exact with `None`.
    pub coherence: Option<CoherenceConfig>,
    /// Data prefetcher at the last cache level (one instance per core).
    pub prefetcher: PrefetcherKind,
    /// Hermes configuration.
    pub hermes: HermesConfig,
    /// POPET configuration (feature set, table sizes, thresholds) used
    /// when `hermes.predictor` is POPET.
    pub popet: PopetConfig,
    /// Observability probe (per-load lifecycle traces, interval metrics
    /// timeline, latency histograms). `None` — the default everywhere —
    /// compiles every hook down to a skipped `if let`, keeps the
    /// simulation byte-identical to a probe-free build, and adds no
    /// allocation; `Some` samples loads deterministically (no RNG, so
    /// runs stay reproducible) and never feeds anything back into
    /// timing: a probed run and an unprobed run of the same workload
    /// produce identical statistics.
    pub probe: Option<ProbeConfig>,
    /// Cycles a retry waits when an MSHR is full.
    pub mshr_retry: u32,
    /// Idle-cycle fast-forward in [`crate::System::run`]: when every core
    /// is blocked on the memory system and no hierarchy event is due,
    /// jump simulated time straight to the next event instead of ticking
    /// through dead cycles. Statistics are provably identical either way
    /// (stall cycles are attributed in bulk); this is purely a wall-clock
    /// optimisation for memory-bound workloads.
    pub fast_forward: bool,
    /// Main-loop engine: the event-driven calendar queue (the default)
    /// or the legacy per-cycle tick loop. The two are cycle-exact on
    /// every config — see [`crate::sched`] — so this knob only affects
    /// wall-clock time (and exists so equivalence stays testable).
    pub scheduler: SchedulerModel,
    /// Extends the PR 6 DRAM bandwidth guard to the prefetcher zoo: when
    /// on, a prefetch issue at the last level is dropped if its DRAM
    /// channel's read queue is more than a quarter occupied — the same
    /// [`hermes_dram::MemoryController::read_queue_pressure`] gate Hermes
    /// speculative reads consult. Off by default: the historical
    /// prefetcher behaviour (and every golden digest) is unchanged
    /// unless a config opts in.
    pub pf_bandwidth_guard: bool,
}

impl SystemConfig {
    /// The single-core baseline of Table 4 — Pythia at the LLC, Hermes
    /// disabled.
    pub fn baseline_1c() -> Self {
        Self {
            cores: 1,
            core: CoreConfig::baseline(),
            l1: CacheConfig::new("L1D", 48 * 1024, 12, ReplacementKind::Lru, 16).with_latency(5),
            l2: CacheConfig::new("L2", 1280 * 1024, 20, ReplacementKind::Lru, 48).with_latency(10),
            llc_per_core: CacheConfig::new("LLC", 3 << 20, 12, ReplacementKind::Ship, 64)
                .with_latency(40),
            levels: None,
            dram: DramConfig::single_core(),
            vm: None,
            coherence: None,
            prefetcher: PrefetcherKind::Pythia,
            hermes: HermesConfig::disabled(),
            popet: PopetConfig::paper(),
            probe: None,
            mshr_retry: 4,
            fast_forward: true,
            scheduler: SchedulerModel::default(),
            pf_bandwidth_guard: false,
        }
    }

    /// The eight-core configuration: shared 24 MB LLC, 4 DRAM channels.
    pub fn baseline_8c() -> Self {
        Self {
            cores: 8,
            dram: DramConfig::eight_core(),
            ..Self::baseline_1c()
        }
    }

    /// Replaces the prefetcher (Fig. 17b sweep).
    pub fn with_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetcher = kind;
        self
    }

    /// Replaces the Hermes configuration.
    pub fn with_hermes(mut self, hermes: HermesConfig) -> Self {
        self.hermes = hermes;
        self
    }

    /// Replaces the POPET configuration (feature ablations of Fig. 10/11,
    /// the τ_act sweep of Fig. 17).
    pub fn with_popet(mut self, popet: PopetConfig) -> Self {
        self.popet = popet;
        self
    }

    /// Replaces the ROB size (Fig. 19 sweep).
    pub fn with_rob(mut self, rob: usize) -> Self {
        self.core = self.core.with_rob(rob);
        self
    }

    /// Replaces the load-queue size (LSQ-pressure sweep).
    pub fn with_lq(mut self, lq: usize) -> Self {
        self.core = self.core.with_lq(lq);
        self
    }

    /// Replaces the store-queue size (LSQ-pressure sweep).
    pub fn with_sq(mut self, sq: usize) -> Self {
        self.core = self.core.with_sq(sq);
        self
    }

    /// Replaces the pipeline model (`CoreModel::Legacy`, the default, or
    /// `CoreModel::OoO` for the cycle-driven ROB/RAT/RS/LSQ core).
    pub fn with_core_model(mut self, model: hermes_cpu::CoreModel) -> Self {
        self.core = self.core.with_model(model);
        self
    }

    /// Replaces the per-core LLC size (Fig. 20 sweep).
    ///
    /// # Panics
    ///
    /// Panics if the size does not yield a power-of-two set count, or if
    /// an explicit topology is set (the classic-field sweep would be a
    /// silent no-op; sweep the `levels` entries directly instead).
    pub fn with_llc_size(mut self, bytes_per_core: u64) -> Self {
        assert!(
            self.levels.is_none(),
            "with_llc_size sweeps the classic l1/l2/llc topology; \
             with an explicit `levels` topology, edit its LevelConfigs directly"
        );
        self.llc_per_core = CacheConfig::new(
            "LLC",
            bytes_per_core,
            self.llc_per_core.ways,
            self.llc_per_core.replacement,
            self.llc_per_core.mshrs,
        )
        .with_latency(self.llc_per_core.latency);
        self
    }

    /// Replaces the post-L2 LLC latency (Fig. 17d sweep: the paper varies
    /// the LLC access latency with L1/L2 unchanged).
    ///
    /// # Panics
    ///
    /// Panics if an explicit topology is set (see
    /// [`SystemConfig::with_llc_size`]).
    pub fn with_llc_latency(mut self, additional_cycles: u32) -> Self {
        assert!(
            self.levels.is_none(),
            "with_llc_latency sweeps the classic l1/l2/llc topology; \
             with an explicit `levels` topology, edit its LevelConfigs directly"
        );
        self.llc_per_core.latency = additional_cycles;
        self
    }

    /// Replaces the DRAM transfer rate (Fig. 17a sweep).
    pub fn with_mtps(mut self, mtps: u64) -> Self {
        self.dram = self.dram.clone().with_mtps(mtps);
        self
    }

    /// Enables the address-translation subsystem (TLB-pressure sweeps).
    pub fn with_vm(mut self, vm: VmConfig) -> Self {
        self.vm = Some(vm);
        self
    }

    /// Enables directory-MESI coherence at the shared last level
    /// (required for any workload with inter-core shared data).
    pub fn with_coherence(mut self, coherence: CoherenceConfig) -> Self {
        self.coherence = Some(coherence);
        self
    }

    /// Replaces the whole cache topology (innermost level first). The
    /// classic `l1`/`l2`/`llc_per_core` fields and their sweep builders
    /// are ignored once an explicit topology is set.
    pub fn with_levels(mut self, levels: Vec<LevelConfig>) -> Self {
        self.levels = Some(levels);
        self
    }

    /// Enables or disables idle-cycle fast-forward (on by default; never
    /// changes results, only wall-clock time).
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Selects the main-loop engine (calendar queue by default; never
    /// changes results, only wall-clock time — see [`crate::sched`]).
    pub fn with_scheduler(mut self, scheduler: SchedulerModel) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Gates prefetcher issues on DRAM read-queue pressure, the same way
    /// Hermes speculative reads are gated (off by default).
    pub fn with_pf_bandwidth_guard(mut self, on: bool) -> Self {
        self.pf_bandwidth_guard = on;
        self
    }

    /// Attaches the observability probe (off by default; never changes
    /// results, only records them — see [`SystemConfig::probe`]).
    pub fn with_probe(mut self, probe: ProbeConfig) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The cache topology actually simulated, innermost level first:
    /// the explicit [`SystemConfig::levels`] if set, otherwise the
    /// classic private-L1 / private-L2 / shared-LLC stack.
    ///
    /// Shape rules (enforced by [`SystemConfig::validate`]): at least two
    /// levels; the first level must be [`LevelScope::Private`] (it is the
    /// per-core L1D the pipeline talks to); the last level must be
    /// [`LevelScope::Shared`] (a miss there is the off-chip boundary and
    /// its MSHRs front the shared memory controller); and scopes must be
    /// monotone — once a level is shared, every outer level is too. A
    /// private level outboard of a shared one would receive the shared
    /// level's victims (which may belong to any core) into a single
    /// core's instance, misplacing other cores' data.
    pub fn level_configs(&self) -> Vec<LevelConfig> {
        match &self.levels {
            Some(v) => v.clone(),
            None => vec![
                LevelConfig::private(self.l1.clone()),
                LevelConfig::private(self.l2.clone()),
                LevelConfig::shared(self.llc_per_core.clone()),
            ],
        }
    }

    /// Total one-way latency from issue to the memory controller — the
    /// sum of per-level lookup latencies (55 in the baseline): the cycles
    /// Hermes can shave off an off-chip load.
    pub fn hierarchy_latency(&self) -> u32 {
        self.level_configs().iter().map(|l| l.cache.latency).sum()
    }

    /// The geometry of the last (shared) cache level as instantiated for
    /// this core count — Table 4's "3 MB/core" scaling. Follows the
    /// explicit topology when one is set, so it always describes the
    /// cache the simulator actually builds.
    pub fn shared_llc(&self) -> CacheConfig {
        self.level_configs()
            .last()
            .expect("validate() enforces >= 2 levels")
            .instantiated(self.cores)
    }

    /// Validates the composite configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters or a topology violating the
    /// shape rules of [`SystemConfig::level_configs`].
    pub fn validate(&self) {
        assert!(self.cores >= 1);
        self.core.validate();
        self.dram.validate();
        if let Some(vm) = &self.vm {
            vm.validate(self.cores);
        }
        let levels = self.level_configs();
        assert!(
            levels.len() >= 2,
            "hierarchy needs at least two levels (got {})",
            levels.len()
        );
        assert_eq!(
            levels[0].scope,
            LevelScope::Private,
            "the first cache level must be core-private"
        );
        assert_eq!(
            levels.last().expect("nonempty").scope,
            LevelScope::Shared,
            "the last cache level must be shared (it fronts the memory controller)"
        );
        assert!(
            levels
                .windows(2)
                .all(|w| !(w[0].scope == LevelScope::Shared && w[1].scope == LevelScope::Private)),
            "cache level scopes must be monotone: no private level outside a shared one"
        );
        for l in &levels {
            // Geometry checks (set counts, scaling) panic on bad shapes.
            let _ = l.instantiated(self.cores);
        }
        if let Some(coh) = &self.coherence {
            coh.validate(self.cores);
            assert!(
                levels[..levels.len() - 1]
                    .iter()
                    .all(|l| l.scope == LevelScope::Private),
                "coherence requires every level but the last to be core-private \
                 (the sharer directory tracks private copies only)"
            );
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline_1c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes::PredictorKind;

    #[test]
    fn baseline_matches_table4() {
        let c = SystemConfig::baseline_1c();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc_per_core.sets(), 4096);
        assert_eq!(c.hierarchy_latency(), 55);
        assert_eq!(c.prefetcher, PrefetcherKind::Pythia);
        assert!(!c.hermes.enabled());
        c.validate();
    }

    #[test]
    fn eight_core_scales_llc() {
        let c = SystemConfig::baseline_8c();
        assert_eq!(c.shared_llc().size_bytes, 24 << 20);
        assert_eq!(c.dram.channels, 4);
        c.validate();
    }

    #[test]
    fn default_topology_matches_classic_fields() {
        let c = SystemConfig::baseline_1c();
        assert!(c.levels.is_none());
        assert!(c.fast_forward);
        let levels = c.level_configs();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].scope, LevelScope::Private);
        assert_eq!(levels[1].scope, LevelScope::Private);
        assert_eq!(levels[2].scope, LevelScope::Shared);
        assert_eq!(
            levels.iter().map(|l| l.cache.latency).collect::<Vec<_>>(),
            vec![5, 10, 40]
        );
        // The shared last level instantiates exactly like shared_llc().
        let inst = levels[2].instantiated(8);
        let llc = SystemConfig::baseline_8c().shared_llc();
        assert_eq!(inst.size_bytes, llc.size_bytes);
        assert_eq!(inst.mshrs, llc.mshrs);
    }

    #[test]
    fn explicit_topology_drives_latency_and_validation() {
        let base = SystemConfig::baseline_1c();
        let c = base.clone().with_levels(vec![
            LevelConfig::private(base.l1.clone()),
            LevelConfig::private(base.l2.clone()),
            LevelConfig::private(
                CacheConfig::new("L3", 2 << 20, 16, ReplacementKind::Lru, 48).with_latency(15),
            ),
            LevelConfig::shared(base.llc_per_core.clone()),
        ]);
        assert_eq!(c.level_configs().len(), 4);
        assert_eq!(c.hierarchy_latency(), 70);
        c.validate();
        let two = base.clone().with_levels(vec![
            LevelConfig::private(base.l1.clone()),
            LevelConfig::shared(base.llc_per_core.clone()),
        ]);
        assert_eq!(two.hierarchy_latency(), 45);
        two.validate();
    }

    #[test]
    #[should_panic(expected = "last cache level must be shared")]
    fn topology_without_shared_last_rejected() {
        let base = SystemConfig::baseline_1c();
        base.clone()
            .with_levels(vec![
                LevelConfig::private(base.l1.clone()),
                LevelConfig::private(base.l2.clone()),
            ])
            .validate();
    }

    #[test]
    #[should_panic(expected = "first cache level must be core-private")]
    fn topology_with_shared_first_rejected() {
        let base = SystemConfig::baseline_1c();
        base.clone()
            .with_levels(vec![
                LevelConfig::shared(base.l1.clone()),
                LevelConfig::shared(base.llc_per_core.clone()),
            ])
            .validate();
    }

    #[test]
    #[should_panic(expected = "scopes must be monotone")]
    fn private_level_outside_shared_rejected() {
        let base = SystemConfig::baseline_1c();
        base.clone()
            .with_levels(vec![
                LevelConfig::private(base.l1.clone()),
                LevelConfig::shared(base.l2.clone()),
                LevelConfig::private(base.l2.clone()),
                LevelConfig::shared(base.llc_per_core.clone()),
            ])
            .validate();
    }

    #[test]
    #[should_panic(expected = "edit its LevelConfigs directly")]
    fn classic_sweep_builders_rejected_on_explicit_topology() {
        let base = SystemConfig::baseline_1c();
        let _ = base
            .clone()
            .with_levels(vec![
                LevelConfig::private(base.l1.clone()),
                LevelConfig::shared(base.llc_per_core.clone()),
            ])
            .with_llc_latency(50);
    }

    #[test]
    fn shared_llc_follows_explicit_topology() {
        let base = SystemConfig::baseline_1c();
        let c = base.clone().with_levels(vec![
            LevelConfig::private(base.l1.clone()),
            LevelConfig::shared(
                CacheConfig::new("LLC", 1 << 20, 16, ReplacementKind::Lru, 32).with_latency(30),
            ),
        ]);
        let llc = c.shared_llc();
        assert_eq!(llc.size_bytes, 1 << 20);
        assert_eq!(llc.latency, 30);
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn single_level_topology_rejected() {
        let base = SystemConfig::baseline_1c();
        base.clone()
            .with_levels(vec![LevelConfig::shared(base.llc_per_core.clone())])
            .validate();
    }

    #[test]
    fn coherence_config_attaches_and_validates() {
        let c = SystemConfig::baseline_8c().with_coherence(CoherenceConfig::baseline());
        assert!(c.coherence.is_some());
        c.validate();
        assert!(
            SystemConfig::baseline_1c().coherence.is_none(),
            "coherence off by default"
        );
    }

    #[test]
    #[should_panic(expected = "core-private")]
    fn coherence_with_shared_mid_level_rejected() {
        let base = SystemConfig::baseline_1c();
        base.clone()
            .with_levels(vec![
                LevelConfig::private(base.l1.clone()),
                LevelConfig::shared(base.l2.clone()),
                LevelConfig::shared(base.llc_per_core.clone()),
            ])
            .with_coherence(CoherenceConfig::baseline())
            .validate();
    }

    #[test]
    fn probe_config_attaches_and_defaults_off() {
        assert!(
            SystemConfig::baseline_1c().probe.is_none(),
            "probe off by default"
        );
        let c = SystemConfig::baseline_1c().with_probe(ProbeConfig::baseline());
        assert_eq!(c.probe.as_ref().map(|p| p.sample_period), Some(64));
        c.validate();
    }

    #[test]
    fn vm_config_attaches_and_validates() {
        let c = SystemConfig::baseline_1c().with_vm(VmConfig::baseline());
        assert!(c.vm.is_some());
        c.validate();
        assert!(
            SystemConfig::baseline_1c().vm.is_none(),
            "vm off by default"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_vm_geometry_rejected() {
        use hermes_vm::TlbConfig;
        SystemConfig::baseline_1c()
            .with_vm(VmConfig::baseline().with_dtlb(TlbConfig::new(48, 4, 0)))
            .validate();
    }

    #[test]
    fn sweep_builders() {
        let c = SystemConfig::baseline_1c()
            .with_prefetcher(PrefetcherKind::Bingo)
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
            .with_rob(256)
            .with_llc_size(6 << 20)
            .with_llc_latency(50)
            .with_mtps(1600);
        assert_eq!(c.prefetcher, PrefetcherKind::Bingo);
        assert!(c.hermes.enabled());
        assert_eq!(c.core.rob_size, 256);
        assert_eq!(c.llc_per_core.size_bytes, 6 << 20);
        assert_eq!(c.hierarchy_latency(), 65);
        assert_eq!(c.dram.mtps, 1600);
        c.validate();
    }
}
