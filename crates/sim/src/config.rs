//! System configuration: the paper's Table 4 with builder-style sweeps
//! for every sensitivity study in §8.4 and Appendix B.

use hermes::{HermesConfig, PopetConfig};
use hermes_cache::{CacheConfig, ReplacementKind};
use hermes_cpu::CoreConfig;
use hermes_dram::DramConfig;
use hermes_prefetch::PrefetcherKind;

/// Complete description of a simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (1 or 8 in the paper).
    pub cores: usize,
    /// Core pipeline configuration.
    pub core: CoreConfig,
    /// L1D configuration; `latency` is the load-to-use latency of an L1
    /// hit (5 cycles).
    pub l1: CacheConfig,
    /// L2 configuration; `latency` is the *additional* cycles past L1
    /// (10, for a 15-cycle L2 load-to-use).
    pub l2: CacheConfig,
    /// Shared LLC configuration *per core* (3 MB/core); `latency` is the
    /// additional cycles past L2 (40, for a 55-cycle LLC load-to-use).
    pub llc_per_core: CacheConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Data prefetcher at the LLC (one instance per core).
    pub prefetcher: PrefetcherKind,
    /// Hermes configuration.
    pub hermes: HermesConfig,
    /// POPET configuration (feature set, table sizes, thresholds) used
    /// when `hermes.predictor` is POPET.
    pub popet: PopetConfig,
    /// Cycles a retry waits when an MSHR is full.
    pub mshr_retry: u32,
}

impl SystemConfig {
    /// The single-core baseline of Table 4 — Pythia at the LLC, Hermes
    /// disabled.
    pub fn baseline_1c() -> Self {
        Self {
            cores: 1,
            core: CoreConfig::baseline(),
            l1: CacheConfig::new("L1D", 48 * 1024, 12, ReplacementKind::Lru, 16).with_latency(5),
            l2: CacheConfig::new("L2", 1280 * 1024, 20, ReplacementKind::Lru, 48).with_latency(10),
            llc_per_core: CacheConfig::new("LLC", 3 << 20, 12, ReplacementKind::Ship, 64)
                .with_latency(40),
            dram: DramConfig::single_core(),
            prefetcher: PrefetcherKind::Pythia,
            hermes: HermesConfig::disabled(),
            popet: PopetConfig::paper(),
            mshr_retry: 4,
        }
    }

    /// The eight-core configuration: shared 24 MB LLC, 4 DRAM channels.
    pub fn baseline_8c() -> Self {
        Self {
            cores: 8,
            dram: DramConfig::eight_core(),
            ..Self::baseline_1c()
        }
    }

    /// Replaces the prefetcher (Fig. 17b sweep).
    pub fn with_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetcher = kind;
        self
    }

    /// Replaces the Hermes configuration.
    pub fn with_hermes(mut self, hermes: HermesConfig) -> Self {
        self.hermes = hermes;
        self
    }

    /// Replaces the POPET configuration (feature ablations of Fig. 10/11,
    /// the τ_act sweep of Fig. 17).
    pub fn with_popet(mut self, popet: PopetConfig) -> Self {
        self.popet = popet;
        self
    }

    /// Replaces the ROB size (Fig. 19 sweep).
    pub fn with_rob(mut self, rob: usize) -> Self {
        self.core = self.core.with_rob(rob);
        self
    }

    /// Replaces the per-core LLC size (Fig. 20 sweep).
    ///
    /// # Panics
    ///
    /// Panics if the size does not yield a power-of-two set count.
    pub fn with_llc_size(mut self, bytes_per_core: u64) -> Self {
        self.llc_per_core = CacheConfig::new(
            "LLC",
            bytes_per_core,
            self.llc_per_core.ways,
            self.llc_per_core.replacement,
            self.llc_per_core.mshrs,
        )
        .with_latency(self.llc_per_core.latency);
        self
    }

    /// Replaces the post-L2 LLC latency (Fig. 17d sweep: the paper varies
    /// the LLC access latency with L1/L2 unchanged).
    pub fn with_llc_latency(mut self, additional_cycles: u32) -> Self {
        self.llc_per_core.latency = additional_cycles;
        self
    }

    /// Replaces the DRAM transfer rate (Fig. 17a sweep).
    pub fn with_mtps(mut self, mtps: u64) -> Self {
        self.dram = self.dram.clone().with_mtps(mtps);
        self
    }

    /// Total one-way latency from issue to the memory controller: the
    /// cycles Hermes can shave off an off-chip load (55 in the baseline).
    pub fn hierarchy_latency(&self) -> u32 {
        self.l1.latency + self.l2.latency + self.llc_per_core.latency
    }

    /// The LLC shared by all cores (size scaled by core count, Table 4's
    /// "3 MB/core").
    pub fn shared_llc(&self) -> CacheConfig {
        CacheConfig::new(
            "LLC",
            self.llc_per_core.size_bytes * self.cores as u64,
            self.llc_per_core.ways,
            self.llc_per_core.replacement,
            self.llc_per_core.mshrs * self.cores,
        )
        .with_latency(self.llc_per_core.latency)
    }

    /// Validates the composite configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.cores >= 1);
        self.core.validate();
        self.dram.validate();
        let _ = self.shared_llc();
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline_1c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes::PredictorKind;

    #[test]
    fn baseline_matches_table4() {
        let c = SystemConfig::baseline_1c();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc_per_core.sets(), 4096);
        assert_eq!(c.hierarchy_latency(), 55);
        assert_eq!(c.prefetcher, PrefetcherKind::Pythia);
        assert!(!c.hermes.enabled());
        c.validate();
    }

    #[test]
    fn eight_core_scales_llc() {
        let c = SystemConfig::baseline_8c();
        assert_eq!(c.shared_llc().size_bytes, 24 << 20);
        assert_eq!(c.dram.channels, 4);
        c.validate();
    }

    #[test]
    fn sweep_builders() {
        let c = SystemConfig::baseline_1c()
            .with_prefetcher(PrefetcherKind::Bingo)
            .with_hermes(HermesConfig::hermes_o(PredictorKind::Popet))
            .with_rob(256)
            .with_llc_size(6 << 20)
            .with_llc_latency(50)
            .with_mtps(1600);
        assert_eq!(c.prefetcher, PrefetcherKind::Bingo);
        assert!(c.hermes.enabled());
        assert_eq!(c.core.rob_size, 256);
        assert_eq!(c.llc_per_core.size_bytes, 6 << 20);
        assert_eq!(c.hierarchy_latency(), 65);
        assert_eq!(c.dram.mtps, 1600);
        c.validate();
    }
}
