//! Run statistics: the measured quantities every figure in §8 is built
//! from.

use hermes::PredictorStats;
use hermes_cpu::CoreStats;
use hermes_dram::controller::DramStats;
use hermes_probe::ProbeReport;
use hermes_trace::Category;

use crate::hierarchy::CoreHierStats;
use crate::power::PowerBreakdown;

/// Measurement snapshot for one core over its simulation window.
#[derive(Debug, Clone)]
pub struct CoreRunStats {
    /// Workload name the core ran.
    pub workload: String,
    /// Workload category (for the paper's per-category aggregation).
    pub category: Category,
    /// Instructions measured (the configured `sim_instr`).
    pub instructions: u64,
    /// Cycles the core took to retire them.
    pub cycles: u64,
    /// Pipeline counters.
    pub core: CoreStats,
    /// Hierarchy counters.
    pub hier: CoreHierStats,
    /// Off-chip predictor confusion matrix.
    pub pred: PredictorStats,
}

impl CoreRunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per kilo-instruction (the paper's MPKI).
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hier.llc_demand_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of demand loads that went off-chip (Fig. 5's left axis).
    pub fn offchip_rate(&self) -> f64 {
        if self.core.loads == 0 {
            0.0
        } else {
            self.core.served_dram as f64 / self.core.loads as f64
        }
    }

    /// Average total latency of an off-chip load.
    pub fn avg_offchip_latency(&self) -> f64 {
        if self.hier.offchip_loads == 0 {
            0.0
        } else {
            self.hier.offchip_latency_sum as f64 / self.hier.offchip_loads as f64
        }
    }

    /// Average on-chip (hierarchy traversal) portion of an off-chip
    /// load's latency — the removable part Fig. 3 highlights.
    pub fn avg_onchip_portion(&self) -> f64 {
        if self.hier.offchip_loads == 0 {
            0.0
        } else {
            self.hier.offchip_onchip_portion_sum as f64 / self.hier.offchip_loads as f64
        }
    }

    /// dTLB misses per kilo-instruction (zero with `vm: None`).
    pub fn dtlb_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hier.dtlb_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// STLB misses per kilo-instruction — translation requests that had
    /// to start or join a hardware page walk.
    pub fn stlb_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hier.stlb_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Average latency of a completed page walk in cycles (STLB-miss
    /// detection to PFN available).
    pub fn avg_walk_cycles(&self) -> f64 {
        if self.hier.walks_completed == 0 {
            0.0
        } else {
            self.hier.walk_cycles_sum as f64 / self.hier.walks_completed as f64
        }
    }

    /// Coherence invalidations (remote copies killed by this core's
    /// stores) per kilo-instruction; zero with `coherence: None`.
    pub fn coh_inv_pki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hier.coh_invalidations as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Write-permission upgrades per kilo-instruction.
    pub fn coh_upgrade_pki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.hier.coh_upgrades as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Complete results of one simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-core measurements.
    pub cores: Vec<CoreRunStats>,
    /// Cycles until the slowest core finished its window.
    pub total_cycles: u64,
    /// DRAM statistics over the measurement window.
    pub dram: DramStats,
    /// Power-model breakdown.
    pub power: PowerBreakdown,
    /// Observability report (traces, interval timeline, latency
    /// histograms); `None` unless [`crate::SystemConfig::probe`] was
    /// set.
    pub probe: Option<ProbeReport>,
}

impl RunStats {
    /// IPC of one core.
    pub fn ipc(&self, core: usize) -> f64 {
        self.cores[core].ipc()
    }

    /// Total main-memory requests (reads of all kinds plus writes), the
    /// Fig. 15b / Fig. 22 overhead metric.
    pub fn main_memory_requests(&self) -> u64 {
        self.dram.total_reads() + self.dram.writes
    }

    /// Mean per-core IPC (single-number summary for multi-core runs).
    pub fn mean_ipc(&self) -> f64 {
        hermes_types::mean(&self.cores.iter().map(|c| c.ipc()).collect::<Vec<_>>())
    }

    /// Aggregate predictor stats across cores.
    pub fn pred_total(&self) -> PredictorStats {
        let mut t = PredictorStats::default();
        for c in &self.cores {
            t.tp += c.pred.tp;
            t.fp += c.pred.fp;
            t.fn_ += c.pred.fn_;
            t.tn += c.pred.tn;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_core() -> CoreRunStats {
        CoreRunStats {
            workload: "w".into(),
            category: Category::Spec06,
            instructions: 1000,
            cycles: 2000,
            core: CoreStats {
                loads: 100,
                served_dram: 10,
                ..Default::default()
            },
            hier: CoreHierStats {
                llc_demand_misses: 8,
                offchip_loads: 10,
                offchip_latency_sum: 2000,
                offchip_onchip_portion_sum: 550,
                dtlb_misses: 4,
                stlb_misses: 2,
                walks_completed: 2,
                walk_cycles_sum: 90,
                coh_upgrades: 3,
                coh_invalidations: 5,
                ..Default::default()
            },
            pred: PredictorStats::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let c = sample_core();
        assert_eq!(c.ipc(), 0.5);
        assert_eq!(c.llc_mpki(), 8.0);
        assert_eq!(c.offchip_rate(), 0.1);
        assert_eq!(c.avg_offchip_latency(), 200.0);
        assert_eq!(c.avg_onchip_portion(), 55.0);
        assert_eq!(c.dtlb_mpki(), 4.0);
        assert_eq!(c.stlb_mpki(), 2.0);
        assert_eq!(c.avg_walk_cycles(), 45.0);
        assert_eq!(c.coh_upgrade_pki(), 3.0);
        assert_eq!(c.coh_inv_pki(), 5.0);
    }

    #[test]
    fn zero_guards() {
        let c = CoreRunStats {
            instructions: 0,
            cycles: 0,
            ..sample_core()
        };
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.llc_mpki(), 0.0);
    }
}
