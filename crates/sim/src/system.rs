//! The top-level simulation runner.

use hermes_cpu::ServedBy;
use hermes_ooo::AnyCore;
use hermes_probe::IntervalInput;
use hermes_trace::WorkloadSpec;
use hermes_types::Cycle;

use crate::config::SystemConfig;
use crate::hierarchy::Hierarchy;
use crate::power::{PowerBreakdown, PowerModel};
use crate::sched::{CalendarQueue, SchedulerModel};
use crate::stats::{CoreRunStats, RunStats};

/// A full simulated system: cores plus the shared memory hierarchy.
///
/// See the crate docs for an end-to-end example. The run methodology
/// follows §7 of the paper: warm up, reset statistics, measure until every
/// core has retired the measurement quota (cores that finish early keep
/// executing so multi-core contention stays live, as the paper's replay
/// rule prescribes).
pub struct System {
    cores: Vec<AnyCore>,
    hierarchy: Hierarchy,
    specs: Vec<WorkloadSpec>,
    cycle: Cycle,
    fast_forward: bool,
    scheduler: SchedulerModel,
    finished_buf: Vec<(usize, u64, ServedBy)>,
}

impl System {
    /// Builds a system; workload `i % workloads.len()` runs on core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    pub fn new(cfg: SystemConfig, workloads: &[WorkloadSpec]) -> Self {
        assert!(!workloads.is_empty(), "need at least one workload");
        cfg.validate();
        let cores = (0..cfg.cores)
            .map(|i| {
                let spec = &workloads[i % workloads.len()];
                // Core-aware instantiation: sharing generators derive a
                // role/lane from the index; every historical generator
                // ignores it, keeping homogeneous mixes bit-identical.
                // `AnyCore` picks the pipeline model from `cfg.core.model`
                // (legacy dependency-scheduled by default).
                AnyCore::new(i, cfg.core.clone(), spec.build_for(i))
            })
            .collect();
        let specs: Vec<WorkloadSpec> = (0..cfg.cores)
            .map(|i| workloads[i % workloads.len()].clone())
            .collect();
        Self {
            cores,
            fast_forward: cfg.fast_forward,
            scheduler: cfg.scheduler,
            hierarchy: Hierarchy::new(cfg),
            specs,
            cycle: 0,
            finished_buf: Vec::new(),
        }
    }

    /// Idle-cycle fast-forward: if neither the hierarchy nor any core can
    /// do real work before some future cycle `t`, jump straight to `t`,
    /// attributing the skipped cycles to the cores' stall counters in
    /// bulk. Statistics are identical to ticking through the gap — every
    /// skipped tick would have been pure stall accounting — so this is
    /// purely a wall-clock optimisation (large on memory-bound phases
    /// where whole DRAM round trips idle the machine).
    fn fast_forward_jump(&mut self) {
        if !self.fast_forward {
            return;
        }
        let mut target = self.hierarchy.next_event_at();
        for core in &self.cores {
            target = target.min(core.next_work_at());
        }
        // `Cycle::MAX` means nothing will ever happen — fall through to
        // normal stepping so the forward-progress assertions fire.
        if target == Cycle::MAX || target <= self.cycle {
            return;
        }
        let skipped = target - self.cycle;
        for core in &mut self.cores {
            core.skip_stalled(skipped);
        }
        self.cycle = target;
    }

    fn step(&mut self) {
        let now = self.cycle;
        self.hierarchy.tick(now);
        self.hierarchy.drain_finished(&mut self.finished_buf);
        // Move completions out to appease the borrow checker cheaply.
        let completions = std::mem::take(&mut self.finished_buf);
        for &(core, token, served) in &completions {
            self.cores[core].finish_load(token, now, served);
        }
        self.finished_buf = completions;
        for core in &mut self.cores {
            core.tick(now, &mut self.hierarchy);
        }
        self.cycle += 1;
    }

    /// One iteration of the main loop under either scheduler model:
    /// advance simulated time to the next cycle with due work, then run
    /// that cycle.
    ///
    /// `cal` is `Some` exactly in calendar mode. The calendar iteration
    /// simulates the identical trajectory to `fast_forward_jump` +
    /// [`System::step`], but ticks only due components: ticking the
    /// hierarchy strictly before its `next_event_at` is a no-op, and
    /// ticking a core strictly before its `next_work_at` is equivalent
    /// to `skip_stalled(1)` (the same contract idle-cycle fast-forward
    /// is built on), so skipping them is stat-neutral. Due-ness of each
    /// core is evaluated *after* this cycle's load completions are
    /// delivered, since a delivery can wake a core at this very cycle.
    fn advance_and_step(&mut self, cal: Option<&mut CalendarQueue>) {
        let Some(cal) = cal else {
            self.fast_forward_jump();
            self.step();
            return;
        };
        // Jump the gap to the earliest published event (gated on the
        // same knob as the tick loop's fast-forward; with it off the
        // loop still steps every cycle, only skipping idle components).
        let target = cal.next_due(self.cycle);
        if self.fast_forward && target != Cycle::MAX && target > self.cycle {
            let skipped = target - self.cycle;
            for core in &mut self.cores {
                core.skip_stalled(skipped);
            }
            self.cycle = target;
        }
        let now = self.cycle;
        if self.hierarchy.next_event_at() <= now {
            self.hierarchy.tick(now);
        }
        self.hierarchy.drain_finished(&mut self.finished_buf);
        let completions = std::mem::take(&mut self.finished_buf);
        for &(core, token, served) in &completions {
            self.cores[core].finish_load(token, now, served);
        }
        self.finished_buf = completions;
        for core in &mut self.cores {
            if core.next_work_at() <= now {
                core.tick(now, &mut self.hierarchy);
            } else {
                core.skip_stalled(1);
            }
        }
        self.cycle += 1;
        cal.publish(0, self.hierarchy.next_event_at());
        for (i, core) in self.cores.iter().enumerate() {
            cal.publish(1 + i, core.next_work_at());
        }
    }

    /// Runs `warmup` instructions per core untimed (statistics discarded),
    /// then measures until every core has retired `sim` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails to make forward progress (a cycle
    /// budget of 400 CPI per instruction is exceeded), which indicates a
    /// protocol bug rather than a slow workload.
    pub fn run(&mut self, warmup: u64, sim: u64) -> RunStats {
        assert!(sim > 0, "measurement window must be nonzero");
        let n = self.cores.len();
        let budget = (warmup + sim) * 400 + 2_000_000;

        // Calendar mode owns a bucket queue with one source per
        // time-bearing component: source 0 is the hierarchy (event
        // heap, retry queue, page walks, DRAM channels), sources 1..=n
        // are the cores. It persists across the warmup/measure boundary
        // (resetting statistics never moves an event).
        let mut cal = match self.scheduler {
            SchedulerModel::Calendar => Some(CalendarQueue::new(1 + n)),
            SchedulerModel::Tick => None,
        };

        // Phase 1: warmup. The gap jump runs *before* each step, off the
        // state the previous step left behind, so the cycle recorded
        // after any step (measure boundaries, snapshots) is untouched by
        // skipping.
        while self.cores.iter().any(|c| c.retired() < warmup) {
            self.advance_and_step(cal.as_mut());
            assert!(self.cycle < budget, "no forward progress during warmup");
        }
        for c in &mut self.cores {
            c.reset_stats();
        }
        self.hierarchy.reset_stats();
        let measure_start = self.cycle;

        // Phase 2: measurement.
        let probe_interval = self
            .hierarchy
            .probe_config()
            .map(|p| p.interval)
            .filter(|&iv| iv > 0);
        let mut next_snap = probe_interval.unwrap_or(0);
        let mut last_snap: Option<Cycle> = None;
        let mut finish_cycle: Vec<Option<Cycle>> = vec![None; n];
        let mut snapshots: Vec<Option<CoreRunStats>> = vec![None; n];
        while snapshots.iter().any(|s| s.is_none()) {
            self.advance_and_step(cal.as_mut());
            assert!(
                self.cycle < measure_start + budget,
                "no forward progress during measurement"
            );
            if let Some(iv) = probe_interval {
                let elapsed = self.cycle - measure_start;
                if elapsed >= next_snap {
                    self.probe_snapshot(measure_start);
                    last_snap = Some(elapsed);
                    // One snapshot per crossing: a fast-forward jump
                    // spanning several boundaries collapses them into a
                    // single interval whose `dcycles` records the true
                    // span.
                    while next_snap <= elapsed {
                        next_snap += iv;
                    }
                }
            }
            for i in 0..n {
                if snapshots[i].is_none() && self.cores[i].retired() >= sim {
                    finish_cycle[i] = Some(self.cycle);
                    snapshots[i] = Some(CoreRunStats {
                        workload: self.specs[i].name.clone(),
                        category: self.specs[i].category,
                        instructions: sim,
                        cycles: self.cycle - measure_start,
                        core: *self.cores[i].stats(),
                        hier: self.hierarchy.core_stats()[i],
                        pred: self.hierarchy.predictor_stats()[i],
                    });
                }
            }
        }
        // A closing snapshot captures the tail interval (and guarantees
        // the timeline is nonempty on runs shorter than one interval).
        if probe_interval.is_some() && last_snap != Some(self.cycle - measure_start) {
            self.probe_snapshot(measure_start);
        }
        let cores: Vec<CoreRunStats> = snapshots
            .into_iter()
            .map(|s| s.expect("loop exits when all set"))
            .collect();

        let dram = *self.hierarchy.dram_stats();
        let instructions: u64 = cores.iter().map(|c| c.instructions).sum();
        let predictions: u64 = cores.iter().map(|c| c.pred.total()).sum();
        let pf_accesses: u64 = cores.iter().map(|c| c.hier.llc_demand_accesses).sum();
        let power = PowerBreakdown::compute(
            &PowerModel::default(),
            &cores.iter().map(|c| c.hier).collect::<Vec<_>>(),
            &dram,
            instructions,
            predictions,
            pf_accesses,
        );
        RunStats {
            total_cycles: self.cycle - measure_start,
            cores,
            dram,
            power,
            probe: self.hierarchy.probe_report(),
        }
    }

    /// Feeds the probe one interval snapshot built from the live
    /// measurement counters (no-op with the probe off).
    fn probe_snapshot(&mut self, measure_start: Cycle) {
        let (rq_busy, rq_cap, wq_busy, wq_cap) = self.hierarchy.dram_occupancy(self.cycle);
        let input = IntervalInput {
            cycle: self.cycle - measure_start,
            retired: self.cores.iter().map(|c| c.retired()).collect(),
            pred: self
                .hierarchy
                .predictor_stats()
                .iter()
                .map(|p| [p.tp, p.fp, p.fn_, p.tn])
                .collect(),
            spec: self
                .hierarchy
                .core_stats()
                .iter()
                .map(|s| [s.spec_reads_useful, s.spec_reads_wasted])
                .collect(),
            level_misses: self
                .hierarchy
                .level_stats()
                .into_iter()
                .map(|(name, s)| (name, s.misses))
                .collect(),
            rob_occ: self.cores.iter().map(|c| c.rob_occupancy()).collect(),
            lsq_occ: self.cores.iter().map(|c| c.lsq_occupancy()).collect(),
            dram_rq: (rq_busy, rq_cap),
            dram_wq: (wq_busy, wq_cap),
            walks_in_flight: self.hierarchy.walks_in_flight(),
        };
        self.hierarchy.probe_snapshot(input);
    }

    /// The hierarchy (for oracle-style inspection in tests).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }
}

/// Convenience: build-and-run a single-workload system.
pub fn run_one(cfg: SystemConfig, spec: &WorkloadSpec, warmup: u64, sim: u64) -> RunStats {
    System::new(cfg, std::slice::from_ref(spec)).run(warmup, sim)
}

/// Owned-argument variant of [`run_one`], usable as a job entry point on
/// worker threads (no borrowed data crosses the thread boundary). The
/// trace generator is instantiated inside the call, so every invocation
/// is independent and deterministic given `(cfg, spec, warmup, sim)`.
pub fn run_job(cfg: SystemConfig, spec: WorkloadSpec, warmup: u64, sim: u64) -> RunStats {
    run_one(cfg, &spec, warmup, sim)
}

// `run_job` must stay usable from parallel executors: everything that
// crosses into a worker thread has to be `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SystemConfig>();
    assert_send::<WorkloadSpec>();
    assert_send::<RunStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use hermes::{HermesConfig, PredictorKind};
    use hermes_prefetch::PrefetcherKind;
    use hermes_trace::suite;

    fn small_cfg() -> SystemConfig {
        SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None)
    }

    #[test]
    fn baseline_run_produces_sane_stats() {
        let spec = &suite::smoke_suite()[0]; // pointer chase
        let stats = run_one(small_cfg(), spec, 2_000, 10_000);
        let c = &stats.cores[0];
        assert_eq!(c.instructions, 10_000);
        assert!(c.cycles > 0);
        assert!(c.ipc() > 0.01 && c.ipc() < 6.0, "IPC {}", c.ipc());
        assert!(c.core.loads > 0);
        assert!(c.hier.llc_demand_misses > 0, "chase must miss LLC");
        assert!(stats.dram.reads_demand > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = &suite::smoke_suite()[0];
        let a = run_one(small_cfg(), spec, 1_000, 5_000);
        let b = run_one(small_cfg(), spec, 1_000, 5_000);
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        assert_eq!(a.dram.reads_demand, b.dram.reads_demand);
    }

    #[test]
    fn stream_hits_after_warmup_with_prefetcher() {
        let spec = &suite::smoke_suite()[1]; // stream
        let nopf = run_one(small_cfg(), spec, 5_000, 20_000);
        let pf = run_one(
            small_cfg().with_prefetcher(PrefetcherKind::Streamer),
            spec,
            5_000,
            20_000,
        );
        assert!(
            pf.cores[0].ipc() > nopf.cores[0].ipc() * 1.05,
            "streamer must speed up a stream: {} vs {}",
            pf.cores[0].ipc(),
            nopf.cores[0].ipc()
        );
    }

    #[test]
    fn hermes_with_ideal_predictor_speeds_up_chase() {
        let spec = &suite::smoke_suite()[0]; // pointer chase: off-chip bound
        let base = run_one(small_cfg(), spec, 2_000, 10_000);
        let hermes = run_one(
            small_cfg().with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
            spec,
            2_000,
            10_000,
        );
        assert!(
            hermes.cores[0].ipc() > base.cores[0].ipc() * 1.05,
            "ideal Hermes must accelerate a chase: {} vs {}",
            hermes.cores[0].ipc(),
            base.cores[0].ipc()
        );
    }

    #[test]
    fn popet_accuracy_reasonable_on_chase() {
        let spec = &suite::smoke_suite()[0];
        let stats = run_one(
            small_cfg().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
            spec,
            10_000,
            30_000,
        );
        let p = stats.cores[0].pred;
        assert!(p.total() > 0);
        assert!(
            p.accuracy() > 0.5,
            "POPET accuracy {} on a chase",
            p.accuracy()
        );
        assert!(
            p.coverage() > 0.5,
            "POPET coverage {} on a chase",
            p.coverage()
        );
    }

    #[test]
    fn multicore_completes_all_cores() {
        let cfg = SystemConfig {
            cores: 2,
            ..SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None)
        };
        let specs = suite::smoke_suite();
        let stats = System::new(cfg, &specs[0..2]).run(1_000, 5_000);
        assert_eq!(stats.cores.len(), 2);
        for c in &stats.cores {
            assert_eq!(c.instructions, 5_000);
            assert!(c.cycles > 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_sim_window_rejected() {
        let spec = suite::smoke_suite().remove(0);
        let _ = run_one(small_cfg(), &spec, 0, 0);
    }

    #[test]
    fn probe_records_without_perturbing_results() {
        use hermes_probe::{LatClass, ProbeConfig};
        let spec = &suite::smoke_suite()[0];
        let cfg = small_cfg().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet));
        let base = run_one(cfg.clone(), spec, 2_000, 10_000);
        let probed = run_one(
            cfg.with_probe(
                ProbeConfig::baseline()
                    .with_interval(2_000)
                    .with_sample_period(8),
            ),
            spec,
            2_000,
            10_000,
        );
        // The probe only observes: cycle-exact results either way.
        assert_eq!(base.cores[0].cycles, probed.cores[0].cycles);
        assert_eq!(base.dram.reads_demand, probed.dram.reads_demand);
        assert_eq!(base.cores[0].pred, probed.cores[0].pred);
        assert!(base.probe.is_none(), "probe off by default");
        let r = probed.probe.expect("probe report present");
        assert!(r.intervals.len() >= 2, "10k instr / 2k-cycle intervals");
        assert!(!r.traces.is_empty(), "1-in-8 sampling must catch loads");
        assert!(r.lat_hist(LatClass::Offchip).count() > 0);
        assert!(
            r.traces
                .iter()
                .any(|t| t.events.iter().any(|e| e.kind == "predict")),
            "sampled loads carry POPET predictions"
        );
    }

    #[test]
    fn vm_subsystem_runs_and_counts_translation() {
        use hermes_vm::{TlbConfig, VmConfig};
        let spec = &suite::smoke_suite()[0]; // chase: big random footprint
        let vm = VmConfig::baseline().with_dtlb(TlbConfig::new(16, 4, 0));
        let base = run_one(small_cfg(), spec, 2_000, 10_000);
        let v = run_one(small_cfg().with_vm(vm), spec, 2_000, 10_000);
        let h = &v.cores[0].hier;
        assert!(h.dtlb_accesses >= v.cores[0].core.loads);
        assert!(h.dtlb_misses > 0, "16-entry dTLB must miss on a chase");
        assert!(h.stlb_misses > 0 && h.walks_completed > 0);
        assert!(
            h.walk_mem_accesses >= h.walks_completed,
            "every walk reads at least the leaf PTE"
        );
        assert!(h.walk_cycles_sum > 0);
        // Translation latency is real: the run cannot get faster.
        assert!(
            v.cores[0].cycles >= base.cores[0].cycles,
            "vm on: {} cycles vs {} off",
            v.cores[0].cycles,
            base.cores[0].cycles
        );
        // The vm-off hierarchy reports no translation activity at all.
        assert_eq!(base.cores[0].hier.dtlb_accesses, 0);
        assert_eq!(base.cores[0].hier.walks_completed, 0);
    }

    #[test]
    fn huge_pages_relieve_tlb_pressure() {
        use hermes_vm::{TlbConfig, VmConfig};
        let spec = &suite::smoke_suite()[0];
        let tiny_tlb = VmConfig::baseline()
            .with_dtlb(TlbConfig::new(16, 4, 0))
            .with_stlb(TlbConfig::new(128, 8, 8));
        let small = run_one(small_cfg().with_vm(tiny_tlb.clone()), spec, 2_000, 10_000);
        let huge = run_one(
            small_cfg().with_vm(tiny_tlb.with_huge_page_pm(1000)),
            spec,
            2_000,
            10_000,
        );
        // A 2 MB page covers 512x the reach: misses must drop sharply.
        assert!(
            huge.cores[0].hier.stlb_misses * 4 < small.cores[0].hier.stlb_misses,
            "huge pages should slash STLB misses: {} vs {}",
            huge.cores[0].hier.stlb_misses,
            small.cores[0].hier.stlb_misses
        );
    }

    #[test]
    fn hermes_still_wins_under_translation_pressure() {
        use hermes_vm::VmConfig;
        let spec = &suite::smoke_suite()[0];
        let cfg = small_cfg().with_vm(VmConfig::baseline());
        let base = run_one(cfg.clone(), spec, 2_000, 10_000);
        let hermes = run_one(
            cfg.with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
            spec,
            2_000,
            10_000,
        );
        assert!(
            hermes.cores[0].ipc() > base.cores[0].ipc() * 1.02,
            "ideal Hermes must still accelerate a chase with vm on: {} vs {}",
            hermes.cores[0].ipc(),
            base.cores[0].ipc()
        );
    }
}
