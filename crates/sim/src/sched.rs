//! Scheduler models for [`crate::System::run`]: the legacy per-cycle
//! tick loop and the event-driven calendar-queue loop.
//!
//! Both models simulate the *identical* cycle trajectory — the calendar
//! loop is an execution engine, not a semantics change. Every
//! time-bearing component publishes the earliest cycle at which it can
//! do real work (`Hierarchy::next_event_at` covers the event heap, the
//! retry queue, pending page walks, and DRAM channel completions;
//! `Core::next_work_at` covers both pipeline models), and the runner
//! advances straight to the earliest published time, attributing the
//! skipped cycles to the cores' stall counters in bulk — exactly like
//! the tick loop's idle-cycle fast-forward, but additionally skipping
//! the per-cycle work of components that are idle at a cycle where
//! *some other* component is busy. That skip is stat-neutral by the
//! same contract fast-forward relies on: ticking a core strictly
//! before its `next_work_at` is equivalent to `skip_stalled(1)`, and
//! ticking the hierarchy strictly before its `next_event_at` is a
//! no-op. Cycle-exactness of the two models is pinned by the golden
//! digests and by `tests/sched_equivalence.rs`.

use hermes_types::Cycle;

/// Which main-loop engine [`crate::System::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerModel {
    /// The legacy loop: tick every component every cycle, with
    /// idle-cycle fast-forward jumping gaps where *nothing* is due.
    Tick,
    /// The event-driven loop (the default): components publish their
    /// next event time into a [`CalendarQueue`] and the runner advances
    /// event-to-event, ticking only due components. Cycle-exact with
    /// [`SchedulerModel::Tick`] on every config.
    #[default]
    Calendar,
}

/// Width of the calendar wheel in single-cycle buckets. Sized to cover
/// a full DRAM round trip (a few hundred cycles) so steady-state event
/// horizons stay inside the wheel and the overflow list stays empty.
const WHEEL: usize = 512;

/// A calendar (bucket) queue of per-source wake-up times.
///
/// Each source (the hierarchy, each core) owns exactly one *published*
/// time — the earliest cycle at which it can do real work, or
/// [`Cycle::MAX`] when it is fully blocked. [`CalendarQueue::publish`]
/// files the time into a ring of single-cycle buckets (or an overflow
/// list beyond the wheel horizon); superseded entries are deleted
/// lazily, by checking each visited entry against the source's current
/// published time. [`CalendarQueue::next_due`] returns the earliest
/// cycle at or after `from` at which any source is due.
///
/// Correctness never depends on the buckets being complete: when the
/// wheel has no live entry the queue falls back to a scan of the
/// published times themselves, so the buckets are purely an
/// accelerator for the common dense-event case.
#[derive(Debug)]
pub struct CalendarQueue {
    /// Current published wake time per source (`Cycle::MAX` = idle).
    published: Vec<Cycle>,
    /// `buckets[c % WHEEL]` holds `(source, published_at)` entries for
    /// cycle `c` in the current window `[base, base + WHEEL)`.
    buckets: Vec<Vec<(u32, Cycle)>>,
    /// Entries published beyond the wheel horizon; migrated into the
    /// wheel as the window advances over them.
    overflow: Vec<(u32, Cycle)>,
    /// First cycle covered by the wheel.
    base: Cycle,
}

impl CalendarQueue {
    /// An empty queue for `sources` sources, windowed at cycle 0.
    pub fn new(sources: usize) -> Self {
        Self {
            published: vec![Cycle::MAX; sources],
            buckets: (0..WHEEL).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            base: 0,
        }
    }

    /// Publishes `src`'s next event time, superseding any previous one
    /// (the stale entry is deleted lazily). `Cycle::MAX` parks the
    /// source as idle.
    pub fn publish(&mut self, src: usize, at: Cycle) {
        if self.published[src] == at {
            return;
        }
        self.published[src] = at;
        if at == Cycle::MAX {
            return;
        }
        // Times already in the past are filed at the window base: they
        // are due at whatever cycle the runner asks about next.
        let slot = at.max(self.base);
        if slot < self.base + WHEEL as Cycle {
            self.buckets[(slot % WHEEL as Cycle) as usize].push((src as u32, at));
        } else {
            self.overflow.push((src as u32, at));
        }
    }

    /// The earliest cycle `>= from` at which any source is due
    /// (`Cycle::MAX` when every source is idle). Advances the window to
    /// `from`.
    pub fn next_due(&mut self, from: Cycle) -> Cycle {
        self.advance(from);
        // Scan the wheel from `from`. An entry in bucket `c` always has
        // `published_at <= c`, so the first bucket holding a live entry
        // is the answer.
        for c in from..from + WHEEL as Cycle {
            let idx = (c % WHEEL as Cycle) as usize;
            if self.buckets[idx].is_empty() {
                continue;
            }
            let published = &self.published;
            self.buckets[idx].retain(|&(s, at)| published[s as usize] == at);
            if !self.buckets[idx].is_empty() {
                return c;
            }
        }
        // Nothing inside the wheel: the exact answer comes from the
        // published times themselves (far-future events, or none).
        let min = self.published.iter().copied().min().unwrap_or(Cycle::MAX);
        if min == Cycle::MAX {
            Cycle::MAX
        } else {
            min.max(from)
        }
    }

    /// Moves the window start to `from`, re-filing still-live entries
    /// from passed buckets (they are due immediately) and migrating
    /// overflow entries that entered the window.
    fn advance(&mut self, from: Cycle) {
        if from <= self.base {
            return;
        }
        if from - self.base >= WHEEL as Cycle {
            // The whole wheel was passed: rebuild from the published
            // times (cheaper and simpler than rotating bucket by
            // bucket, and exact by construction).
            for b in &mut self.buckets {
                b.clear();
            }
            self.overflow.clear();
            self.base = from;
            for src in 0..self.published.len() {
                let at = self.published[src];
                if at != Cycle::MAX {
                    let slot = at.max(from);
                    if slot < from + WHEEL as Cycle {
                        self.buckets[(slot % WHEEL as Cycle) as usize].push((src as u32, at));
                    } else {
                        self.overflow.push((src as u32, at));
                    }
                }
            }
            return;
        }
        while self.base < from {
            let idx = (self.base % WHEEL as Cycle) as usize;
            if !self.buckets[idx].is_empty() {
                // Live entries at a passed cycle are due now: re-file
                // them at the new window base. Stale ones drop here.
                let mut moved = std::mem::take(&mut self.buckets[idx]);
                moved.retain(|&(s, at)| self.published[s as usize] == at);
                let dst = (from % WHEEL as Cycle) as usize;
                self.buckets[dst].append(&mut moved);
            }
            self.base += 1;
        }
        if !self.overflow.is_empty() {
            // Migrate overflow entries that fell inside the new window.
            let horizon = self.base + WHEEL as Cycle;
            let mut i = 0;
            while i < self.overflow.len() {
                let (s, at) = self.overflow[i];
                if self.published[s as usize] != at {
                    self.overflow.swap_remove(i);
                } else if at < horizon {
                    self.overflow.swap_remove(i);
                    let slot = at.max(self.base);
                    self.buckets[(slot % WHEEL as Cycle) as usize].push((s, at));
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_is_idle() {
        let mut q = CalendarQueue::new(3);
        assert_eq!(q.next_due(0), Cycle::MAX);
        assert_eq!(q.next_due(1_000_000), Cycle::MAX);
    }

    #[test]
    fn single_source_round_trip() {
        let mut q = CalendarQueue::new(1);
        q.publish(0, 17);
        assert_eq!(q.next_due(0), 17);
        assert_eq!(q.next_due(17), 17);
        // Past-due publishes surface at the asked-about cycle.
        assert_eq!(q.next_due(30), 30);
    }

    #[test]
    fn earliest_of_many_sources_wins() {
        let mut q = CalendarQueue::new(4);
        q.publish(0, 100);
        q.publish(1, 40);
        q.publish(2, Cycle::MAX);
        q.publish(3, 70);
        assert_eq!(q.next_due(0), 40);
        q.publish(1, 200); // supersede: stale 40 must be ignored
        assert_eq!(q.next_due(0), 70);
        q.publish(3, Cycle::MAX);
        assert_eq!(q.next_due(0), 100);
    }

    #[test]
    fn republish_same_time_is_stable() {
        let mut q = CalendarQueue::new(2);
        for _ in 0..10 {
            q.publish(0, 25);
        }
        assert_eq!(q.next_due(0), 25);
    }

    #[test]
    fn far_future_event_beyond_wheel() {
        let mut q = CalendarQueue::new(2);
        q.publish(0, WHEEL as Cycle * 10);
        assert_eq!(q.next_due(0), WHEEL as Cycle * 10);
        // Window jumps straight there; the event is found again.
        assert_eq!(q.next_due(WHEEL as Cycle * 10), WHEEL as Cycle * 10);
    }

    #[test]
    fn overflow_migrates_into_window() {
        let mut q = CalendarQueue::new(2);
        q.publish(0, WHEEL as Cycle + 50); // beyond the initial horizon
        q.publish(1, 10);
        assert_eq!(q.next_due(0), 10);
        q.publish(1, Cycle::MAX);
        // Advance in small steps so the overflow path (not the rebuild
        // path) migrates the entry.
        for c in (0..=90).map(|i| i * 6) {
            assert_eq!(q.next_due(c), WHEEL as Cycle + 50);
        }
        // Once the asked-about cycle passes the event it clamps up.
        assert_eq!(q.next_due(WHEEL as Cycle + 60), WHEEL as Cycle + 60);
    }

    #[test]
    fn interleaved_publish_and_advance() {
        // Simulates the runner's pattern: each "cycle" republish a
        // moving horizon and query; compare against a naive min.
        let mut q = CalendarQueue::new(3);
        let mut truth = [Cycle::MAX; 3];
        let mut cycle = 0;
        for step in 0..2_000u64 {
            let src = (step % 3) as usize;
            let at = cycle + (step * 7 % 90);
            q.publish(src, at);
            truth[src] = at;
            let want = truth.iter().copied().min().unwrap().max(cycle);
            assert_eq!(q.next_due(cycle), want, "step {step} cycle {cycle}");
            cycle += step % 5;
        }
    }

    #[test]
    fn large_jump_rebuild_keeps_live_entries() {
        let mut q = CalendarQueue::new(3);
        q.publish(0, 5);
        q.publish(1, WHEEL as Cycle * 3 + 7);
        // Jump far past the whole wheel; source 0's entry (now long
        // past due) must surface at the new window base, not vanish.
        let far = WHEEL as Cycle * 2;
        assert_eq!(q.next_due(far), far);
        q.publish(0, Cycle::MAX);
        assert_eq!(q.next_due(far), WHEEL as Cycle * 3 + 7);
    }
}
