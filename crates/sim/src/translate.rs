//! Virtual-to-physical address translation.
//!
//! The simulator uses a stateless deterministic page mapping: each
//! (core, virtual page) pair hashes to a physical frame. This gives every
//! core a private physical footprint (so homogeneous 8-core mixes contend
//! realistically in the shared LLC instead of aliasing onto the same
//! lines), randomises DRAM bank/row placement the way a real first-touch
//! allocator does, and costs no memory. Translation latency is folded
//! into the L1 latency, mirroring the paper's observation that the TLB is
//! accessed in parallel with the L1 (§3.1).
//!
//! Addresses in the shared virtual region
//! ([`hermes_types::SHARED_BASE`] and above) drop the per-core salt, so
//! every core maps them to the *same* physical frame — the convention the
//! sharing-aware workload generators use to build genuinely shared data
//! structures (with coherence handled by the hierarchy when enabled). No
//! historical workload touches that region, so results below it are
//! unchanged.

use hermes_types::{mix64, CoreId, PhysAddr, VirtAddr};

/// Bits of physical frame number space (2^36 frames = 256 TB: collisions
/// across a run are negligible).
const FRAME_BITS: u32 = 36;

/// Translates a virtual address for `core` to its physical address.
///
/// Deterministic: the same (core, address) always yields the same frame.
///
/// # Example
///
/// ```
/// use hermes_sim::translate::translate;
/// use hermes_types::VirtAddr;
///
/// let p1 = translate(0, VirtAddr::new(0x1234_5678));
/// let p2 = translate(0, VirtAddr::new(0x1234_5678));
/// assert_eq!(p1, p2);
/// assert_ne!(p1, translate(1, VirtAddr::new(0x1234_5678)).into());
/// # let _: hermes_types::PhysAddr = p2;
/// ```
#[inline]
pub fn translate(core: CoreId, vaddr: VirtAddr) -> PhysAddr {
    let vpn = vaddr.page_number();
    // Shared-region pages drop the per-core salt (no core uses salt 0),
    // giving every core the identical frame.
    let salt = if vaddr.is_shared() {
        0
    } else {
        (core as u64 + 1) << 57
    };
    let pfn = mix64(vpn ^ salt) & ((1 << FRAME_BITS) - 1);
    PhysAddr::from_frame(pfn, vaddr.offset_in_page())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_offset_preserved() {
        let v = VirtAddr::new(0xABCD_E123);
        let p = translate(0, v);
        assert_eq!(p.offset_in_page(), v.offset_in_page());
        assert_eq!(p.byte_offset_in_line(), v.byte_offset_in_line());
    }

    #[test]
    fn same_page_same_frame() {
        let a = translate(2, VirtAddr::new(0x5000_0000));
        let b = translate(2, VirtAddr::new(0x5000_0FFF));
        assert_eq!(a.page_number(), b.page_number());
    }

    #[test]
    fn different_pages_differ() {
        let a = translate(0, VirtAddr::new(0x5000_0000));
        let b = translate(0, VirtAddr::new(0x5000_1000));
        assert_ne!(a.page_number(), b.page_number());
    }

    #[test]
    fn cores_have_disjoint_mappings() {
        let v = VirtAddr::new(0x7000_0000);
        let frames: std::collections::HashSet<u64> =
            (0..8).map(|c| translate(c, v).page_number()).collect();
        assert_eq!(frames.len(), 8);
    }

    #[test]
    fn shared_region_maps_identically_for_all_cores() {
        let v = VirtAddr::new(hermes_types::SHARED_BASE + 0x1234_5678);
        let frames: std::collections::HashSet<u64> =
            (0..8).map(|c| translate(c, v).page_number()).collect();
        assert_eq!(frames.len(), 1, "shared pages must alias across cores");
        assert_eq!(translate(0, v).offset_in_page(), v.offset_in_page());
    }
}
